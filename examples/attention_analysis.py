"""Inspect what ADPA's two attention levels learned on one dataset.

Usage::

    python examples/attention_analysis.py [dataset-name]

After training ADPA the script reports

* the average hop-attention distribution (how deep the model looks), overall
  and per class;
* the average DP-attention distribution (which directed patterns matter);
* the mean effective receptive depth.

On heterophilous directional datasets the DP attention should concentrate on
the homophily-recovering composites ``AAᵀ`` / ``AᵀA`` rather than the raw
1-hop operators — the mechanism behind the paper's Table VI/VII discussion.
"""

from __future__ import annotations

import sys

from repro import Trainer, load_dataset
from repro.adpa import ADPA
from repro.analysis import summarize_attention


def main(dataset_name: str = "chameleon") -> None:
    graph = load_dataset(dataset_name, seed=0)
    model = ADPA.from_graph(graph, hidden=64, num_steps=3, seed=0)
    trainer = Trainer(epochs=150, patience=30)
    result = trainer.fit(model, graph)
    print(f"Trained ADPA on {graph.name}: test accuracy {result.test_accuracy:.3f}\n")

    cache = model.preprocess(graph)
    summary = summarize_attention(model, graph, cache)

    print("Hop attention (average weight per propagation step):")
    for step, weight in enumerate(summary["hop_distribution"], start=1):
        print(f"  step {step}: {weight:.3f}")
    print(f"Mean effective receptive depth: {summary['mean_receptive_depth']:.2f}\n")

    print("Hop attention per class:")
    for cls, row in enumerate(summary["hop_distribution_per_class"]):
        formatted = ", ".join(f"{weight:.3f}" for weight in row)
        print(f"  class {cls}: [{formatted}]")

    print("\nDP attention (average weight per directed pattern):")
    for name, weight in sorted(summary["dp_distribution"].items(), key=lambda kv: -kv[1]):
        print(f"  {name:<8s} {weight:.3f}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "chameleon")
