"""Heterophilous digraph case study: compare modeling choices on one dataset.

Usage::

    python examples/heterophily_pipeline.py [dataset-name]

For a heterophilous, strongly directional dataset (default: ``squirrel``)
the script contrasts four strategies the paper discusses:

1. coarse undirected transformation + a classic undirected GNN (GCN);
2. coarse undirected transformation + a heterophily-aware undirected GNN
   (GPR-GNN);
3. the natural digraph + a directed GNN (DirGNN);
4. the natural digraph + ADPA (the paper's proposal).

The expected shape (who wins) follows Table IV: directed modeling beats the
undirected transformations, and ADPA is the strongest.
"""

from __future__ import annotations

import sys

from repro import load_dataset
from repro.amud import amud_decide
from repro.api import Session, TrainConfig


def main(dataset_name: str = "squirrel") -> None:
    graph = load_dataset(dataset_name, seed=0)
    decision = amud_decide(graph)
    print(f"{graph.name}: AMUD score {decision.score:.3f} -> model as {decision.modeling}\n")

    session = Session(train=TrainConfig(epochs=150, patience=30))
    natural = session.from_graph(graph)
    undirected = natural.undirected()
    strategies = [
        ("U- GCN      (coarse undirected + homophilous GNN)", "GCN", undirected, {}),
        ("U- GPR-GNN  (coarse undirected + heterophily GNN)", "GPRGNN", undirected, {}),
        ("D- DirGNN   (natural digraph + directed GNN)", "DirGNN", natural, {}),
        ("D- ADPA     (natural digraph + proposed model)", "ADPA", natural,
         {"hidden": 64, "num_steps": 3}),
    ]
    results = []
    for label, model_name, handle, kwargs in strategies:
        model = handle.fit(model_name, **kwargs)
        results.append((label, model.test_accuracy))
        print(f"{label:<55s} test accuracy {model.test_accuracy:.3f}")

    best = max(results, key=lambda item: item[1])
    print(f"\nBest strategy: {best[0]} ({best[1]:.3f})")
    print("Directed modeling should clearly beat the undirected transformations here, "
          "matching the paper's Table IV / Fig. 2 observations.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "squirrel")
