"""Public-API quickstart: the whole Fig. 1 workflow through one facade.

Usage::

    python examples/api_quickstart.py [dataset-name ...]

Everything goes through :class:`repro.api.Session` — no direct engine or
artifact wiring.  The script

1. loads one or more datasets and runs AMUD guidance on each;
2. trains the guidance-selected model per dataset (frozen
   :class:`TrainConfig`);
3. exports each trained model as a versioned serving artifact and restores
   it bit-exactly;
4. stands up the :class:`repro.serving.ShardRouter` front door over all
   artifacts and serves concurrent sync *and* asyncio traffic against it.
"""

from __future__ import annotations

import asyncio
import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.api import ServeConfig, Session, TrainConfig


def main(dataset_names: list) -> None:
    session = Session(
        seed=0,
        train=TrainConfig(epochs=100, patience=20),
        serve=ServeConfig(max_wait_ms=2.0, router_max_pending=128),
    )

    handles = []
    for name in dataset_names:
        guided = session.load(name).amud()
        print(f"{name}: AMUD score {guided.decision.score:.3f} "
              f"-> model as {guided.decision.modeling}")
        model = guided.fit()
        print(f"  trained {model.model_name}  test accuracy {model.test_accuracy:.4f}")
        handles.append(model)

    with tempfile.TemporaryDirectory() as root:
        directories = []
        for model in handles:
            directory = Path(root) / model.graph.name
            model.save(directory)
            restored = session.restore(directory)
            exact = bool(np.array_equal(model.predict(), restored.predict()))
            print(f"{model.graph.name}: artifact restores bit-exactly: {exact}")
            directories.append(directory)

        router = session.serve(*directories)
        expected = {model.graph.name: model.predict() for model in handles}
        with router:
            # Synchronous path: route by graph fingerprint.
            for model in handles:
                ids = np.arange(min(8, model.graph.num_nodes))
                predictions = router.predict(node_ids=ids, graph=model.graph)
                assert np.array_equal(predictions, expected[model.graph.name][ids])

            # Async path: many concurrent requests through the same door.
            async def drive() -> int:
                tasks = [
                    router.asubmit(node_ids=[i % model.graph.num_nodes], graph=model.graph)
                    for model in handles
                    for i in range(16)
                ]
                results = await asyncio.gather(*tasks)
                return len(results)

            completed = asyncio.run(drive())
            stats = router.stats()

        print(f"\nfront door served {stats.submitted} requests "
              f"({completed} of them via asyncio) across {len(directories)} shards")
        for shard_name, shard_stats in stats.as_dict()["shards"].items():
            print(f"  {shard_name}: {shard_stats['requests']} requests, "
                  f"mean latency {shard_stats['mean_latency_ms']} ms")


if __name__ == "__main__":
    names = sys.argv[1:] or ["texas", "cornell", "chameleon"]
    main(names)
