"""Quickstart: run the full AMUD → ADPA workflow on one dataset.

Usage::

    python examples/quickstart.py [dataset-name]

The script loads a calibrated synthetic stand-in for one of the paper's
benchmarks (default: ``chameleon``), runs AMUD to decide whether to keep the
directed edges, trains the model the guidance selects, and reports the test
accuracy alongside the homophily profile of the data.
"""

from __future__ import annotations

import sys

from repro import AmudPipeline, Trainer, load_dataset
from repro.amud import amud_decide
from repro.metrics import homophily_report


def main(dataset_name: str = "chameleon") -> None:
    graph = load_dataset(dataset_name, seed=0)
    print(f"Loaded {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} directed edges, "
          f"{graph.num_features} features, {graph.num_classes} classes")

    report = homophily_report(graph)
    print("Homophily profile:")
    for metric, value in report.items():
        print(f"  {metric:<22s} {value:+.3f}")

    decision = amud_decide(graph)
    print(f"\nAMUD guidance score S = {decision.score:.3f} (threshold {decision.threshold})")
    print(f"AMUD says: model this graph as *{decision.modeling}*")
    print("Per-pattern R²:", {name: round(value, 4) for name, value in decision.r_squared.items()})

    pipeline = AmudPipeline(
        undirected_model="GPRGNN",
        directed_model="ADPA",
        trainer=Trainer(epochs=150, patience=30),
        model_kwargs={"directed": {"hidden": 64, "num_steps": 3}},
    )
    result = pipeline.fit(graph)
    print(f"\nTrained {result.model_name} on the {result.decision.modeling} view")
    print(f"Validation accuracy: {result.train_result.val_accuracy:.3f}")
    print(f"Test accuracy:       {result.train_result.test_accuracy:.3f}")
    print(f"Best epoch:          {result.train_result.best_epoch}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "chameleon")
