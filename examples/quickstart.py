"""Quickstart: run the full AMUD → ADPA workflow on one dataset.

Usage::

    python examples/quickstart.py [dataset-name]

The script loads a calibrated synthetic stand-in for one of the paper's
benchmarks (default: ``chameleon``), runs AMUD to decide whether to keep the
directed edges, trains the model the guidance selects through the
:class:`repro.api.Session` facade, and reports the test accuracy alongside
the homophily profile of the data.
"""

from __future__ import annotations

import sys

from repro.api import AmudConfig, Session, TrainConfig


def main(dataset_name: str = "chameleon") -> None:
    session = Session(
        seed=0,
        train=TrainConfig(epochs=150, patience=30),
        amud=AmudConfig(undirected_model="GPRGNN", directed_model="ADPA"),
    )

    handle = session.load(dataset_name)
    graph = handle.graph
    print(f"Loaded {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} directed edges, "
          f"{graph.num_features} features, {graph.num_classes} classes")

    print("Homophily profile:")
    for metric, value in handle.homophily().items():
        print(f"  {metric:<22s} {value:+.3f}")

    guided = handle.amud()
    decision = guided.decision
    print(f"\nAMUD guidance score S = {decision.score:.3f} (threshold {decision.threshold})")
    print(f"AMUD says: model this graph as *{decision.modeling}*")
    print("Per-pattern R²:", {name: round(value, 4) for name, value in decision.r_squared.items()})

    kwargs = {"hidden": 64, "num_steps": 3} if decision.keep_directed else {}
    model = guided.fit(**kwargs)
    result = model.train_result
    print(f"\nTrained {model.model_name} on the {decision.modeling} view")
    print(f"Validation accuracy: {result.val_accuracy:.3f}")
    print(f"Test accuracy:       {result.test_accuracy:.3f}")
    print(f"Best epoch:          {result.best_epoch}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "chameleon")
