"""AMUD guidance survey: score every benchmark stand-in and compare metrics.

Usage::

    python examples/amud_guidance.py

Reproduces the data-engineering story of the paper (Table I / Table II): for
every dataset the classic homophily measures are computed on both the
directed and the coarsely-undirected view, showing how little they change,
while the AMUD score cleanly separates the datasets that should stay
directed from the ones that should be undirected.
"""

from __future__ import annotations

from repro.amud import amud_decide
from repro.datasets import dataset_config, list_datasets, load_dataset
from repro.graph import to_undirected
from repro.metrics import adjusted_homophily, edge_homophily, label_informativeness


def main() -> None:
    header = (
        f"{'dataset':<18s} {'E.Homo(D/U)':>14s} {'Adj.Homo(D/U)':>14s} "
        f"{'LI(D/U)':>14s} {'AMUD':>6s} {'modeling':>11s} {'paper regime':>13s}"
    )
    print(header)
    print("-" * len(header))
    for name in list_datasets():
        graph = load_dataset(name, seed=0)
        undirected = to_undirected(graph)
        decision = amud_decide(graph)
        expected = dataset_config(name).amud_regime
        marker = "" if decision.modeling == expected else "  <-- disagrees"
        print(
            f"{name:<18s} "
            f"{edge_homophily(graph):>6.3f}/{edge_homophily(undirected):<6.3f} "
            f"{adjusted_homophily(graph):>6.3f}/{adjusted_homophily(undirected):<6.3f} "
            f"{label_informativeness(graph):>6.3f}/{label_informativeness(undirected):<6.3f} "
            f"{decision.score:>6.3f} {decision.modeling:>11s} {expected:>13s}{marker}"
        )

    print(
        "\nClassic homophily metrics barely move between the directed and undirected "
        "views, while the AMUD score separates the two modeling regimes — the paper's "
        "Table I observation."
    )


if __name__ == "__main__":
    main()
