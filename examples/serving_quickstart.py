"""Serving quickstart: train, export, reload and serve under load.

Usage::

    python examples/serving_quickstart.py [dataset-name]

The script walks the full serving lifecycle through the public API
(:class:`repro.api.Session`):

1. fit the AMUD-guided model and export it as a versioned artifact
   (weights ``.npz`` + config/decision JSON + the modeled graph);
2. restore the artifact as a fresh process would and verify the predictions
   are bit-identical;
3. serve the artifact behind the micro-batching engine and fire concurrent
   node-subset requests at it, printing latency, batch and cache statistics.

For multiple artifacts behind one front door (shard routing, asyncio), see
``examples/api_quickstart.py``.
"""

from __future__ import annotations

import sys
import tempfile
import threading
import time

import numpy as np

from repro.api import ServeConfig, Session, TrainConfig


def main(dataset_name: str = "chameleon") -> None:
    session = Session(
        seed=0,
        train=TrainConfig(epochs=100, patience=20),
        serve=ServeConfig(max_wait_ms=2.0),
    )
    handle = session.load(dataset_name)
    graph = handle.graph
    print(f"Loaded {graph.name}: {graph.num_nodes} nodes, {graph.num_edges} edges")
    print(f"graph fingerprint: {graph.fingerprint()}")

    model = handle.amud().fit()
    print(f"\nAMUD -> {model.decision.modeling}; trained {model.model_name} "
          f"(test accuracy {model.test_accuracy:.4f})")

    with tempfile.TemporaryDirectory() as directory:
        model.save(directory)
        print(f"exported artifact to {directory}")

        restored = session.restore(directory)
        expected = restored.predict()
        exact = bool(np.array_equal(model.predict(), expected))
        print(f"fresh-process reload reproduces predictions exactly: {exact}")

        server = restored.serve()

        def client(seed: int, rounds: int = 25) -> None:
            rng = np.random.default_rng(seed)
            n = server.graph.num_nodes
            for _ in range(rounds):
                ids = rng.choice(n, size=min(16, n), replace=False)
                predictions = server.predict(node_ids=ids, timeout=60)
                assert np.array_equal(predictions, expected[ids])

        print(f"\nserving {restored.model_name} with 4 concurrent clients ...")
        with server:
            start = time.perf_counter()
            threads = [threading.Thread(target=client, args=(seed,)) for seed in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - start
            stats = server.stats()

        print(f"served {stats.requests} requests in {elapsed:.3f}s "
              f"({stats.requests / elapsed:.0f} req/s)")
        print(f"micro-batching: {stats.batches} batches, {stats.forwards} forwards, "
              f"mean batch size {stats.mean_batch_size:.1f}")
        print(f"latency: mean {stats.mean_latency_ms:.2f} ms, max {stats.max_latency_ms:.2f} ms")
        print(f"operator cache: {stats.cache.as_dict()}")
        print(f"logit cache:    {stats.logit_cache.as_dict()}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "chameleon")
