"""Sparsity robustness study (paper Fig. 7) on one dataset.

Usage::

    python examples/sparse_robustness.py [dataset-name]

Retrains a small model suite under increasing feature, edge and label
sparsity and prints one table per sparsity kind.  The expected shape is the
paper's: ADPA and DirGNN degrade gracefully because propagation lets nodes
recover information from their (directed) neighbourhood, while feature-heavy
models (LINKX / A2DUG) collapse under feature sparsity and spectral models
suffer most from missing features.
"""

from __future__ import annotations

import sys

from repro import Trainer, load_dataset
from repro.training import format_sparsity_table, sparsity_sweep

MODELS = ["ADPA", "DirGNN", "A2DUG", "JacobiConv"]
MODEL_KWARGS = {"ADPA": {"hidden": 32, "num_steps": 2}}


def main(dataset_name: str = "squirrel") -> None:
    graph = load_dataset(dataset_name, seed=0)
    trainer = Trainer(epochs=80, patience=20)
    print(f"Sparsity robustness on {graph.name} ({graph.num_nodes} nodes)\n")

    sweeps = [
        ("feature", [0.0, 0.3, 0.6, 0.9]),
        ("edge", [0.0, 0.3, 0.6, 0.9]),
        ("label", [20, 10, 5, 2]),
    ]
    for kind, levels in sweeps:
        points = sparsity_sweep(
            MODELS,
            graph,
            kind=kind,
            levels=levels,
            seeds=(0,),
            trainer=trainer,
            model_kwargs=MODEL_KWARGS,
        )
        print(format_sparsity_table(points))
        print()


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "squirrel")
