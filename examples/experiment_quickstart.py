"""Declarative experiments in five steps: spec -> sweep -> report -> disk -> back.

The paper reports every number as mean ± std over repeated seeded trials.
``repro.api`` makes that protocol declarative: describe a models × datasets
grid as a frozen :class:`SweepSpec`, hand it to :meth:`Session.experiment`,
and get back a typed :class:`SweepReport` that renders as a table and
round-trips through JSON.

Run with:  PYTHONPATH=src python examples/experiment_quickstart.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.api import ExperimentConfig, Session, SweepReport, SweepSpec, TrainConfig


def main() -> None:
    # 1. Describe the experiment: two models × two datasets, three seeds.
    #    (Drop `seeds=` to get the paper's full ten-trial protocol.)
    spec = SweepSpec(
        models=("MLP", "GPRGNN"),
        datasets=("texas", "cornell"),
        view="undirected",  # both models are undirected GNNs: feed them U-
        config=ExperimentConfig(
            seeds=(0, 1, 2),
            train=TrainConfig(epochs=60, patience=15),
        ),
    )

    # 2. Execute.  Runs are parallel across seeds and cells on a bounded
    #    worker pool; aggregation is bit-identical to serial execution.
    report = Session().experiment(spec)

    # 3. Render: a paper-style table with a Rank column ...
    print(report.as_table())

    # ... and typed access to any cell, with per-seed detail.
    cell = report.cell("GPRGNN", "texas")
    print(
        f"\nGPRGNN on texas: {100 * cell.test_mean:.1f}±{100 * cell.test_std:.1f} "
        f"(val {100 * cell.val_mean:.1f}) over seeds {list(cell.seeds)}"
    )

    # 4. Persist the report; the spec rides along for provenance.
    out = Path(tempfile.mkdtemp(prefix="repro-experiment-")) / "report.json"
    report.save(out)
    print(f"\nsaved: {out}")

    # 5. Reload in another process and keep working with typed cells.
    reloaded = SweepReport.load(out)
    assert reloaded.cell("MLP", "cornell").test_mean == report.cell("MLP", "cornell").test_mean
    print(f"reloaded {len(reloaded.cells)} cells; spec models = {reloaded.spec['models']}")

    # The same spec can live in a file and run from the command line:
    #   repro experiment examples/experiment_spec.json --quick --out report.json


if __name__ == "__main__":
    main()
