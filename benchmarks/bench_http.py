"""HTTP front-door benchmark: tail latency and load shedding under Zipf.

Production graph serving is skewed: a few hot graphs take most of the
traffic.  This benchmark builds a multi-shard router over the smallest
synthetic datasets, exposes it through :class:`repro.serving.HttpServer`,
and drives it with many concurrent keep-alive connections whose shard
choice follows a Zipf distribution (``p(rank r) ∝ 1/(r+1)^alpha``).

Beyond throughput, the run validates the observability layer end to end:

* client-side and server-side p50/p95/p99 from the log-bucketed
  histograms (``/stats``);
* ``/metrics`` parses as strict Prometheus text exposition 0.0.4;
* ``/traces`` span timings (queue / cache / forward / deliver) sum to each
  request's end-to-end latency;
* 429 responses are counted when back-pressure slots run out — shedding,
  not queue collapse.

Results land in ``BENCH_http.json`` (quick mode included, flagged), the
machine-readable trail CI archives.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import time

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.datasets.synthetic import DATASET_CONFIGS
from repro.models.registry import create_model
from repro.obs import parse_prometheus
from repro.serving import HttpServer, ShardRouter
from repro.training import Trainer

from helpers import print_banner, write_bench_json

#: Zipf exponent of the shard-popularity skew.
ZIPF_ALPHA = 1.1

CONNECTIONS = 1024
REQUESTS = 8192
QUICK_CONNECTIONS = 32
QUICK_REQUESTS = 256

#: deliberately small so the full run actually sheds load (429s).
MAX_PENDING = 64

#: tolerance (ms) between a trace's span sum and its reported total.
SPAN_SUM_TOLERANCE_MS = 1e-3


def smallest_datasets(count: int) -> list:
    """The ``count`` smallest registered synthetic datasets, by node count."""
    ordered = sorted(DATASET_CONFIGS, key=lambda name: DATASET_CONFIGS[name].num_nodes)
    return ordered[:count]


def zipf_weights(count: int, alpha: float = ZIPF_ALPHA) -> np.ndarray:
    weights = 1.0 / np.power(np.arange(1, count + 1), alpha)
    return weights / weights.sum()


async def _read_response(reader: asyncio.StreamReader) -> tuple:
    """Minimal HTTP/1.1 response reader (status, body) for keep-alive use."""
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value.strip())
    body = await reader.readexactly(length) if length else b""
    return status, body


async def _drive(host: str, port: int, jobs: list, connections: int) -> dict:
    """Spread ``jobs`` over ``connections`` keep-alive clients; gather counts."""
    latencies: list = []
    counts: dict = {}

    async def worker(assigned: list) -> None:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            for shard, node_ids in assigned:
                body = json.dumps({"node_ids": node_ids, "shard": shard}).encode()
                head = (
                    "POST /predict HTTP/1.1\r\n"
                    f"Host: {host}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "\r\n"
                ).encode("latin-1")
                start = time.perf_counter()
                writer.write(head + body)
                await writer.drain()
                status, _ = await _read_response(reader)
                elapsed = time.perf_counter() - start
                counts[status] = counts.get(status, 0) + 1
                if status == 200:
                    latencies.append(elapsed)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    buckets = [jobs[index::connections] for index in range(connections)]
    started = time.perf_counter()
    await asyncio.gather(*(worker(bucket) for bucket in buckets if bucket))
    elapsed = time.perf_counter() - started
    return {"latencies": latencies, "counts": counts, "elapsed_s": elapsed}


async def _get(host: str, port: int, path: str) -> tuple:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n".encode()
        )
        await writer.drain()
        return await _read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass


def build_http_profile(quick: bool = False) -> dict:
    """Serve Zipf-skewed /predict load and read back the observability stack."""
    connections = QUICK_CONNECTIONS if quick else CONNECTIONS
    total_requests = QUICK_REQUESTS if quick else REQUESTS
    datasets = smallest_datasets(2 if quick else 3)

    router = ShardRouter(max_pending=MAX_PENDING, max_wait_ms=1.0)
    graphs = {}
    for dataset in datasets:
        graph = load_dataset(dataset, seed=0)
        model = create_model("MLP", graph, seed=0, hidden=16)
        Trainer(epochs=2, patience=5).fit(model, graph)
        router.add_shard(model, graph, name=dataset)
        graphs[dataset] = graph

    # Zipf-skewed shard choice and random node subsets, fixed ahead of the
    # clock so request generation costs nothing during the timed run.
    rng = np.random.default_rng(0)
    weights = zipf_weights(len(datasets))
    picks = rng.choice(len(datasets), size=total_requests, p=weights)
    jobs = []
    for pick in picks:
        dataset = datasets[pick]
        size = min(16, graphs[dataset].num_nodes)
        ids = rng.choice(graphs[dataset].num_nodes, size=size, replace=False)
        jobs.append((dataset, ids.tolist()))

    with router, HttpServer(router, port=0) as server:
        outcome = asyncio.run(_drive(server.host, server.port, jobs, connections))
        stats_status, stats_body = asyncio.run(_get(server.host, server.port, "/stats"))
        metrics_status, metrics_body = asyncio.run(
            _get(server.host, server.port, "/metrics")
        )
        traces_status, traces_body = asyncio.run(
            _get(server.host, server.port, "/traces?limit=50")
        )

    latencies_ms = 1e3 * np.asarray(outcome["latencies"] or [0.0])
    counts = outcome["counts"]
    ok = counts.get(200, 0)
    shed = counts.get(429, 0)
    errors = sum(count for status, count in counts.items() if status not in (200, 429))

    snapshot = json.loads(stats_body)
    server_latency = snapshot["latency"]

    metrics_valid = False
    metrics_families = 0
    if metrics_status == 200:
        families = parse_prometheus(metrics_body.decode("utf-8"))
        metrics_families = len(families)
        metrics_valid = (
            "repro_router_submitted_total" in families
            and "repro_http_requests_total" in families
            and any(name.startswith("repro_router_shard_latency_ms") for name in families)
        )

    traces = json.loads(traces_body)["traces"] if traces_status == 200 else []
    spans_checked = 0
    spans_ok = bool(traces)
    for trace in traces:
        gap = abs(sum(trace["spans"].values()) - trace["total_ms"])
        spans_checked += 1
        if gap > SPAN_SUM_TOLERANCE_MS:
            spans_ok = False

    per_shard = {
        name: shard["requests"] for name, shard in snapshot["shards"].items()
    }
    return {
        "quick": quick,
        "datasets": datasets,
        "zipf_alpha": ZIPF_ALPHA,
        "connections": connections,
        "requests": total_requests,
        "max_pending": MAX_PENDING,
        "ok": ok,
        "shed": shed,
        "errors": errors,
        "elapsed_s": outcome["elapsed_s"],
        "throughput_rps": ok / outcome["elapsed_s"] if outcome["elapsed_s"] else 0.0,
        "client_p50_ms": float(np.percentile(latencies_ms, 50)),
        "client_p95_ms": float(np.percentile(latencies_ms, 95)),
        "client_p99_ms": float(np.percentile(latencies_ms, 99)),
        "server_p50_ms": server_latency["p50_ms"],
        "server_p95_ms": server_latency["p95_ms"],
        "server_p99_ms": server_latency["p99_ms"],
        "server_mean_ms": server_latency["mean_ms"],
        "per_shard_requests": per_shard,
        "http": snapshot["http"],
        "metrics_valid": metrics_valid,
        "metrics_families": metrics_families,
        "traces_checked": spans_checked,
        "spans_ok": spans_ok,
    }


def check_http_profile(profile: dict) -> None:
    # The server answered real traffic, and nothing failed outright: every
    # non-200 must be deliberate shedding, not an error class.
    assert profile["ok"] > 0, profile
    assert profile["errors"] == 0, profile
    assert profile["ok"] + profile["shed"] == profile["requests"], profile
    # Non-degenerate, ordered tail quantiles from the server histogram.
    assert profile["server_p50_ms"] > 0, profile
    assert profile["server_p50_ms"] <= profile["server_p95_ms"] <= profile["server_p99_ms"], profile
    # /metrics is strict Prometheus exposition with the expected families.
    assert profile["metrics_valid"], profile
    # Zipf skew reached the shards: the hottest strictly beats the coldest.
    shard_counts = sorted(profile["per_shard_requests"].values())
    if profile["ok"] > 100:
        assert shard_counts[-1] > shard_counts[0], profile
    # Trace spans account exactly for each request's end-to-end latency.
    assert profile["traces_checked"] > 0, profile
    assert profile["spans_ok"], profile


def format_http_table(profile: dict) -> str:
    lines = [
        f"{profile['connections']} connections, {profile['requests']} requests over "
        f"{len(profile['datasets'])} shards (Zipf alpha={profile['zipf_alpha']})",
        f"{'outcome':<26s}{'count':>10s}",
        f"{'200 ok':<26s}{profile['ok']:>10d}",
        f"{'429 shed':<26s}{profile['shed']:>10d}",
        f"{'errors':<26s}{profile['errors']:>10d}",
        f"throughput: {profile['throughput_rps']:.1f} req/s over {profile['elapsed_s']:.3f}s",
        f"{'quantile':<12s}{'client ms':>12s}{'server ms':>12s}",
    ]
    for quantile in ("p50", "p95", "p99"):
        lines.append(
            f"{quantile:<12s}{profile[f'client_{quantile}_ms']:>12.3f}"
            f"{profile[f'server_{quantile}_ms']:>12.3f}"
        )
    shards = ", ".join(
        f"{name}={count}" for name, count in sorted(
            profile["per_shard_requests"].items(), key=lambda item: -item[1]
        )
    )
    lines.append(f"per-shard requests: {shards}")
    lines.append(
        f"/metrics: {'valid' if profile['metrics_valid'] else 'INVALID'} "
        f"({profile['metrics_families']} families)  "
        f"/traces: {profile['traces_checked']} span sums "
        f"{'exact' if profile['spans_ok'] else 'BROKEN'}"
    )
    return "\n".join(lines)


@pytest.mark.benchmark(group="http")
def test_http_front_door(benchmark):
    profile = benchmark.pedantic(build_http_profile, rounds=1, iterations=1)
    print_banner(
        f"HTTP front door — Zipf load over {len(profile['datasets'])} shards"
    )
    print(format_http_table(profile))
    path = write_bench_json("http", profile)
    print(f"wrote {path}")
    check_http_profile(profile)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="HTTP front-door benchmark")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: fewer connections/requests, two shards",
    )
    cli_args = parser.parse_args()
    result = build_http_profile(quick=cli_args.quick)
    print(format_http_table(result))
    # Written in quick mode too (flagged via the payload's "quick" field):
    # the CI artifact is the point of the smoke run.
    path = write_bench_json("http", result)
    print(f"wrote {path}")
    check_http_profile(result)
