"""Table VI — ADPA accuracy under different k-order DP operator sets.

The paper finds 2-order DPs optimal on most datasets: 1-order operators are
too weak (only in/out 1-hop neighbours) and orders ≥ 3 add redundant,
overfitting-prone structure.  The shape check asserts that 2-order beats
1-order everywhere and that going to 3-order never helps by a large margin.
"""

from __future__ import annotations

import pytest

from repro.api import Session, SweepSpec

from conftest import FULL_PROTOCOL, bench_experiment_config
from helpers import print_banner, write_bench_json

DATASETS = ("coraml", "chameleon", "squirrel") if not FULL_PROTOCOL else (
    "coraml", "citeseer", "tolokers", "texas", "cornell", "wisconsin",
    "chameleon", "squirrel", "roman-empire",
)
ORDERS = (1, 2, 3)


def build_table6():
    # The k-order ablation is a one-model sweep with a variant per order.
    spec = SweepSpec(
        models=("ADPA",),
        datasets=DATASETS,
        view="natural",
        config=bench_experiment_config(),
        variants={
            f"{order}-order": {"hidden": 64, "num_steps": 2, "order": order}
            for order in ORDERS
        },
    )
    report = Session().experiment(spec)
    rows = {
        dataset_name: {
            order: report.cell("ADPA", dataset_name, f"{order}-order").test_mean
            for order in ORDERS
        }
        for dataset_name in DATASETS
    }
    return rows, report


def print_table6(rows):
    print_banner("Table VI — ADPA accuracy vs k-order DP operators")
    print(f"{'dataset':<16s}" + "".join(f"{f'{order}-order':>12s}" for order in ORDERS))
    for dataset_name, per_order in rows.items():
        print(
            f"{dataset_name:<16s}"
            + "".join(f"{100 * per_order[order]:>12.1f}" for order in ORDERS)
        )


def check_table6_shape(rows):
    for dataset_name, per_order in rows.items():
        # 2-order must beat 1-order (the paper's main ablation finding).
        assert per_order[2] >= per_order[1] - 0.02, dataset_name
        # Higher order shouldn't dominate 2-order by a wide margin.
        assert per_order[3] <= per_order[2] + 0.08, dataset_name


@pytest.mark.benchmark(group="table6")
def test_table6_korder_ablation(benchmark):
    rows, report = benchmark.pedantic(build_table6, rounds=1, iterations=1)
    print_table6(rows)
    write_bench_json("table6", report.as_dict())
    check_table6_shape(rows)
