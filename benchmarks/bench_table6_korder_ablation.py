"""Table VI — ADPA accuracy under different k-order DP operator sets.

The paper finds 2-order DPs optimal on most datasets: 1-order operators are
too weak (only in/out 1-hop neighbours) and orders ≥ 3 add redundant,
overfitting-prone structure.  The shape check asserts that 2-order beats
1-order everywhere and that going to 3-order never helps by a large margin.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.training import run_repeated

from conftest import FULL_PROTOCOL, bench_seeds, bench_trainer
from helpers import print_banner

DATASETS = ("coraml", "chameleon", "squirrel") if not FULL_PROTOCOL else (
    "coraml", "citeseer", "tolokers", "texas", "cornell", "wisconsin",
    "chameleon", "squirrel", "roman-empire",
)
ORDERS = (1, 2, 3)


def build_table6():
    seeds, trainer = bench_seeds(), bench_trainer()
    rows = {}
    for dataset_name in DATASETS:
        graph = load_dataset(dataset_name, seed=0)
        per_order = {}
        for order in ORDERS:
            result = run_repeated(
                "ADPA",
                graph,
                seeds=seeds,
                trainer=trainer,
                model_kwargs={"hidden": 64, "num_steps": 2, "order": order},
            )
            per_order[order] = result.test_mean
        rows[dataset_name] = per_order
    return rows


def print_table6(rows):
    print_banner("Table VI — ADPA accuracy vs k-order DP operators")
    print(f"{'dataset':<16s}" + "".join(f"{f'{order}-order':>12s}" for order in ORDERS))
    for dataset_name, per_order in rows.items():
        print(
            f"{dataset_name:<16s}"
            + "".join(f"{100 * per_order[order]:>12.1f}" for order in ORDERS)
        )


def check_table6_shape(rows):
    for dataset_name, per_order in rows.items():
        # 2-order must beat 1-order (the paper's main ablation finding).
        assert per_order[2] >= per_order[1] - 0.02, dataset_name
        # Higher order shouldn't dominate 2-order by a wide margin.
        assert per_order[3] <= per_order[2] + 0.08, dataset_name


@pytest.mark.benchmark(group="table6")
def test_table6_korder_ablation(benchmark):
    rows = benchmark.pedantic(build_table6, rounds=1, iterations=1)
    print_table6(rows)
    check_table6_shape(rows)
