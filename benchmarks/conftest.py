"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  To keep the
whole suite runnable on a laptop CPU in minutes, the benchmarks default to a
reduced protocol (one seed, shortened training, a representative model
subset); the environment variable ``REPRO_BENCH_FULL=1`` switches to the
full protocol (three seeds, longer training, the complete model zoo).

The actual table rows are printed to stdout so that
``pytest benchmarks/ --benchmark-only -s`` doubles as the experiment report
generator; pytest-benchmark additionally records the wall-clock cost of each
regeneration.
"""

from __future__ import annotations

import os

import pytest

#: switch between the quick (CI-sized) and full experimental protocol
FULL_PROTOCOL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_seeds():
    return (0, 1, 2) if FULL_PROTOCOL else (0,)


def bench_trainer():
    from repro.training import Trainer

    if FULL_PROTOCOL:
        return Trainer(epochs=200, patience=30)
    return Trainer(epochs=80, patience=20)


def bench_model_subset(directed: bool):
    """Representative model columns for the accuracy tables."""
    if FULL_PROTOCOL:
        undirected = [
            "MLP", "GCN", "SGC", "GCNII", "GRAND", "LINKX", "GloGNN", "AeroGNN",
            "GPRGNN", "BernNet", "JacobiConv",
        ]
        directed_names = ["DGCN", "DiGCN", "MagNet", "NSTE", "DIMPA", "DirGNN", "A2DUG"]
    else:
        undirected = ["MLP", "GCN", "SGC", "GPRGNN", "LINKX", "JacobiConv"]
        directed_names = ["DiGCN", "MagNet", "DirGNN", "A2DUG"]
    return undirected + directed_names + ["ADPA"]


@pytest.fixture(scope="session")
def protocol():
    """Expose the protocol settings to benchmark functions."""
    return {
        "full": FULL_PROTOCOL,
        "seeds": bench_seeds(),
        "trainer": bench_trainer(),
    }
