"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  To keep the
whole suite runnable on a laptop CPU in minutes, the benchmarks default to a
quick protocol (one seed, shortened training, a representative model
subset); the environment variable ``REPRO_BENCH_FULL=1`` switches to the
paper's full protocol (ten seeded trials — :data:`repro.api.DEFAULT_SEEDS`
— longer training, the complete model zoo).

The table benchmarks drive :meth:`repro.api.Session.experiment`, so the
rows printed by ``pytest benchmarks/ --benchmark-only -s`` and the
``BENCH_*.json`` files they emit come from the same typed reports the
``repro experiment`` CLI produces.
"""

from __future__ import annotations

import os

import pytest

#: switch between the quick (CI-sized) and full experimental protocol
FULL_PROTOCOL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def bench_seeds():
    """Seed protocol: the paper's ten trials, or one under ``--quick``."""
    from repro.api import DEFAULT_SEEDS

    return DEFAULT_SEEDS if FULL_PROTOCOL else (0,)


def bench_trainer():
    from repro.training import Trainer

    if FULL_PROTOCOL:
        return Trainer(epochs=200, patience=30)
    return Trainer(epochs=80, patience=20)


def bench_experiment_config():
    """The protocol as a frozen :class:`repro.api.ExperimentConfig`."""
    from repro.api import ExperimentConfig, TrainConfig

    return ExperimentConfig(
        seeds=bench_seeds(), train=TrainConfig.from_trainer(bench_trainer())
    )


def bench_model_subset(directed: bool):
    """Representative model columns for the accuracy tables."""
    if FULL_PROTOCOL:
        undirected = [
            "MLP", "GCN", "SGC", "GCNII", "GRAND", "LINKX", "GloGNN", "AeroGNN",
            "GPRGNN", "BernNet", "JacobiConv",
        ]
        directed_names = ["DGCN", "DiGCN", "MagNet", "NSTE", "DIMPA", "DirGNN", "A2DUG"]
    else:
        undirected = ["MLP", "GCN", "SGC", "GPRGNN", "LINKX", "JacobiConv"]
        directed_names = ["DiGCN", "MagNet", "DirGNN", "A2DUG"]
    return undirected + directed_names + ["ADPA"]


@pytest.fixture(scope="session")
def protocol():
    """Expose the protocol settings to benchmark functions."""
    return {
        "full": FULL_PROTOCOL,
        "seeds": bench_seeds(),
        "trainer": bench_trainer(),
    }
