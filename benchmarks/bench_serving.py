"""Serving-layer benchmark: cold-load vs warm-cache inference latency.

The decoupled complexity argument (paper Sec. IV-D) becomes a serving
argument once :mod:`repro.serving` caches the preprocess output and the
frozen-weight logits: a cold request pays artifact load + sparse
precomputation + forward, while a warm request is a cache hit plus a
fan-out slice.  This benchmark exports a trained ADPA on the largest
synthetic dataset, then measures

* **cold**: restore the artifact in-process and run preprocess + forward;
* **warm**: a single request against the running server (logit cache hot);
* **micro-batch**: per-request amortised latency when concurrent clients
  are coalesced into shared batches.

Acceptance: warm-cache inference is at least 5x faster than the cold path,
and the served predictions match the cold logits exactly.
"""

from __future__ import annotations

import argparse
import tempfile
import time

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.datasets.synthetic import DATASET_CONFIGS
from repro.models.registry import create_model
from repro.serving import InferenceServer, restore_model, save_model
from repro.training import Trainer

from helpers import print_banner, write_bench_json

MODEL = "ADPA"
MODEL_KWARGS = {"hidden": 64, "num_steps": 3}
WARM_ROUNDS = 20
BATCH_CLIENT_REQUESTS = 64


def largest_dataset() -> str:
    """Name of the biggest registered synthetic dataset (by node count)."""
    return max(DATASET_CONFIGS, key=lambda name: DATASET_CONFIGS[name].num_nodes)


def smallest_dataset() -> str:
    """Name of the smallest registered synthetic dataset (CI smoke runs)."""
    return min(DATASET_CONFIGS, key=lambda name: DATASET_CONFIGS[name].num_nodes)


def build_serving_profile(quick: bool = False) -> dict:
    """Measure the serving profile; ``quick`` shrinks it to a CI smoke test."""
    dataset = smallest_dataset() if quick else largest_dataset()
    warm_rounds = 5 if quick else WARM_ROUNDS
    batch_requests = 16 if quick else BATCH_CLIENT_REQUESTS
    graph = load_dataset(dataset, seed=0)
    model = create_model(MODEL, graph, seed=0, **MODEL_KWARGS)
    Trainer(epochs=3 if quick else 10, patience=10).fit(model, graph)

    with tempfile.TemporaryDirectory() as directory:
        save_model(model, directory, graph=graph)

        # Cold path: fresh process equivalent — artifact load, preprocess,
        # one forward.
        start = time.perf_counter()
        cold_model, cache, _, _ = restore_model(directory)
        cold_logits = cold_model.predict_logits(graph, cache)
        cold_seconds = time.perf_counter() - start

        server, _ = InferenceServer.from_artifact(directory, max_wait_ms=0.5)
        with server:
            # Populate the logit cache, then time single warm requests.
            served = server.predict(node_ids=None)
            start = time.perf_counter()
            for _ in range(warm_rounds):
                server.predict(node_ids=np.arange(min(64, graph.num_nodes)))
            warm_seconds = (time.perf_counter() - start) / warm_rounds

            # Amortised per-request latency under micro-batched load.
            rng = np.random.default_rng(0)
            subsets = [
                rng.choice(graph.num_nodes, size=min(32, graph.num_nodes), replace=False)
                for _ in range(batch_requests)
            ]
            start = time.perf_counter()
            tickets = [server.submit(node_ids=ids) for ids in subsets]
            for ticket in tickets:
                ticket.result(timeout=120)
            batched_seconds = (time.perf_counter() - start) / batch_requests
            stats = server.stats()

    return {
        "dataset": dataset,
        "nodes": graph.num_nodes,
        "model": MODEL,
        "quick": quick,
        "cold_ms": 1e3 * cold_seconds,
        "warm_ms": 1e3 * warm_seconds,
        "batched_ms": 1e3 * batched_seconds,
        "warm_speedup": cold_seconds / warm_seconds,
        "batched_speedup": cold_seconds / batched_seconds,
        "requests": stats.requests,
        "forwards": stats.forwards,
        "mean_batch_size": stats.mean_batch_size,
        "exact": bool(np.array_equal(served, cold_logits.argmax(axis=1))),
    }


def check_serving_profile(profile: dict) -> None:
    # Served predictions must reproduce the cold in-process logits exactly.
    assert profile["exact"]
    # The whole point of the cache: warm inference >= 5x faster than cold
    # preprocess + forward (the ISSUE acceptance threshold).  Quick (CI
    # smoke) runs use a tiny graph whose cold path is already sub-millisecond
    # — wall-clock ratios there are scheduler noise, so quick mode checks
    # correctness and coalescing only.
    if not profile.get("quick"):
        assert profile["warm_speedup"] >= 5.0, profile
        assert profile["batched_speedup"] >= 5.0, profile
    # Micro-batching actually coalesced: far fewer forwards than requests.
    assert profile["forwards"] < profile["requests"]


def format_serving_table(profile: dict) -> str:
    rows = [
        ("cold load + preprocess + forward", profile["cold_ms"]),
        ("warm single request", profile["warm_ms"]),
        ("micro-batched per request", profile["batched_ms"]),
    ]
    lines = [f"{'path':<34s}{'latency ms':>12s}{'speedup':>10s}"]
    for label, value in rows:
        speedup = profile["cold_ms"] / value if value else float("inf")
        lines.append(f"{label:<34s}{value:>12.3f}{speedup:>9.1f}x")
    lines.append(
        f"{profile['requests']} requests -> {profile['forwards']} forwards "
        f"(mean batch {profile['mean_batch_size']:.1f})"
    )
    return "\n".join(lines)


@pytest.mark.benchmark(group="serving")
def test_serving_cold_vs_warm(benchmark):
    profile = benchmark.pedantic(build_serving_profile, rounds=1, iterations=1)
    print_banner(
        f"Serving — cold vs warm-cache inference ({profile['dataset']} stand-in, "
        f"{profile['nodes']} nodes)"
    )
    print(format_serving_table(profile))
    path = write_bench_json("serving", profile)
    print(f"wrote {path}")
    check_serving_profile(profile)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="serving cold-vs-warm benchmark")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: smallest dataset, fewer rounds, no JSON emission",
    )
    cli_args = parser.parse_args()
    result = build_serving_profile(quick=cli_args.quick)
    print(format_serving_table(result))
    if not cli_args.quick:
        # Quick numbers are not representative; keep the committed JSON
        # trail reflecting the full benchmark only.
        write_bench_json("serving", result)
    check_serving_profile(result)
