"""Serving-layer benchmark: cold, cache-miss, compiled and memoised latency.

The decoupled complexity argument (paper Sec. IV-D) becomes a serving
argument once :mod:`repro.serving` caches the preprocess output, the
frozen-weight logits and — since the traced-kernel compiler — the whole
forward as a grad-free numpy program.  This benchmark exports a trained
ADPA on the largest synthetic dataset, then measures each serving path
separately instead of conflating them:

* **cold**: restore the artifact in-process and run preprocess + forward;
* **eager miss**: a single request with the logit cache off — every request
  pays a full autograd forward (the true cache-miss latency);
* **compiled miss**: the same cache-miss request answered by replaying the
  traced program (``compile="trace"``), no Tensor or tape constructed;
* **memoised**: a single request with the logit cache hot (the old "warm"
  number — a dictionary hit plus a fan-out slice, not a forward);
* **micro-batch**: per-request amortised latency when concurrent clients
  are coalesced into shared batches.

Acceptance: the compiled cache-miss forward is at least 5x faster than the
warm eager cache-miss forward, memoised inference is at least 5x faster
than cold, and every served path matches the cold logits bit-exactly.
"""

from __future__ import annotations

import argparse
import tempfile
import time

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.datasets.synthetic import DATASET_CONFIGS
from repro.models.registry import create_model
from repro.serving import InferenceServer, restore_model, save_model
from repro.training import Trainer

from helpers import print_banner, write_bench_json

MODEL = "ADPA"
MODEL_KWARGS = {"hidden": 64, "num_steps": 3}
MISS_ROUNDS = 10
WARM_ROUNDS = 20
BATCH_CLIENT_REQUESTS = 64


def largest_dataset() -> str:
    """Name of the biggest registered synthetic dataset (by node count)."""
    return max(DATASET_CONFIGS, key=lambda name: DATASET_CONFIGS[name].num_nodes)


def smallest_dataset() -> str:
    """Name of the smallest registered synthetic dataset (CI smoke runs)."""
    return min(DATASET_CONFIGS, key=lambda name: DATASET_CONFIGS[name].num_nodes)


def _time_single_requests(server: InferenceServer, node_ids, rounds: int) -> float:
    """Mean seconds per single request against a running server."""
    server.predict(node_ids=node_ids)  # untimed: settle caches / compile
    start = time.perf_counter()
    for _ in range(rounds):
        server.predict(node_ids=node_ids)
    return (time.perf_counter() - start) / rounds


def build_serving_profile(
    quick: bool = False,
    compiled: bool = True,
    trace_dir: str | None = None,
) -> dict:
    """Measure the serving profile; ``quick`` shrinks it to a CI smoke test.

    ``compiled=False`` skips the traced-program measurement (the
    ``--no-compile`` escape hatch); ``trace_dir`` spills the compiled
    programs to disk afterwards so CI can archive them.
    """
    dataset = smallest_dataset() if quick else largest_dataset()
    miss_rounds = 3 if quick else MISS_ROUNDS
    warm_rounds = 5 if quick else WARM_ROUNDS
    batch_requests = 16 if quick else BATCH_CLIENT_REQUESTS
    graph = load_dataset(dataset, seed=0)
    model = create_model(MODEL, graph, seed=0, **MODEL_KWARGS)
    Trainer(epochs=3 if quick else 10, patience=10).fit(model, graph)
    ids = np.arange(min(64, graph.num_nodes))

    with tempfile.TemporaryDirectory() as directory:
        save_model(model, directory, graph=graph)

        # Cold path: fresh process equivalent — artifact load, preprocess,
        # one forward.
        start = time.perf_counter()
        cold_model, cache, _, _ = restore_model(directory)
        cold_logits = cold_model.predict_logits(graph, cache)
        cold_seconds = time.perf_counter() - start

        # Cache-miss single requests: logit cache off, no coalescing window,
        # so every request pays one full forward.  The eager and compiled
        # servers differ only in the compile mode.
        miss_kwargs = dict(max_wait_ms=0.0, cache_logits=False)
        eager_server, _ = InferenceServer.from_artifact(
            directory, compile="eager", **miss_kwargs
        )
        with eager_server:
            eager_miss_seconds = _time_single_requests(eager_server, ids, miss_rounds)

        compiled_miss_seconds = None
        trace_snapshot = None
        if compiled:
            compiled_server, _ = InferenceServer.from_artifact(
                directory, compile="trace", **miss_kwargs
            )
            with compiled_server:
                compiled_miss_seconds = _time_single_requests(
                    compiled_server, ids, miss_rounds
                )
                compiled_full = compiled_server.submit()
                compiled_full.result(timeout=120)
                compiled_logits = compiled_full.logits
            trace_snapshot = compiled_server.trace_cache.snapshot()
            if trace_dir is not None:
                compiled_server.trace_cache.spill(trace_dir)
        else:
            compiled_logits = cold_logits

        # Memoised path + micro-batching on a default (logit-caching) server.
        server, _ = InferenceServer.from_artifact(directory, max_wait_ms=0.5)
        with server:
            served = server.predict(node_ids=None)
            start = time.perf_counter()
            for _ in range(warm_rounds):
                server.predict(node_ids=ids)
            memoised_seconds = (time.perf_counter() - start) / warm_rounds

            # Amortised per-request latency under micro-batched load.
            rng = np.random.default_rng(0)
            subsets = [
                rng.choice(graph.num_nodes, size=min(32, graph.num_nodes), replace=False)
                for _ in range(batch_requests)
            ]
            start = time.perf_counter()
            tickets = [server.submit(node_ids=ids) for ids in subsets]
            for ticket in tickets:
                ticket.result(timeout=120)
            batched_seconds = (time.perf_counter() - start) / batch_requests
            stats = server.stats()

    return {
        "dataset": dataset,
        "nodes": graph.num_nodes,
        "model": MODEL,
        "quick": quick,
        "compiled": compiled,
        "cold_ms": 1e3 * cold_seconds,
        "eager_miss_ms": 1e3 * eager_miss_seconds,
        "compiled_miss_ms": (
            None if compiled_miss_seconds is None else 1e3 * compiled_miss_seconds
        ),
        "memoised_ms": 1e3 * memoised_seconds,
        "batched_ms": 1e3 * batched_seconds,
        "compile_speedup": (
            None
            if compiled_miss_seconds is None
            else eager_miss_seconds / compiled_miss_seconds
        ),
        "memoised_speedup": cold_seconds / memoised_seconds,
        "batched_speedup": cold_seconds / batched_seconds,
        "trace": trace_snapshot,
        "requests": stats.requests,
        "forwards": stats.forwards,
        "mean_batch_size": stats.mean_batch_size,
        "exact": bool(np.array_equal(served, cold_logits.argmax(axis=1))),
        "compiled_exact": bool(np.array_equal(compiled_logits, cold_logits)),
    }


def check_serving_profile(profile: dict) -> None:
    # Served predictions must reproduce the cold in-process logits exactly —
    # and the compiled replay must be bit-identical, not merely close.
    assert profile["exact"]
    assert profile["compiled_exact"]
    # Wall-clock ratios on the quick (CI smoke) graph are scheduler noise —
    # its eager forward is already sub-millisecond — so quick mode checks
    # correctness and coalescing only.
    if not profile.get("quick"):
        # The tentpole acceptance: compiled cache-miss forward >= 5x faster
        # than the warm eager path.
        if profile["compiled"]:
            assert profile["compile_speedup"] >= 5.0, profile
        # The logit cache's original claim: memoised >= 5x faster than cold.
        assert profile["memoised_speedup"] >= 5.0, profile
        assert profile["batched_speedup"] >= 5.0, profile
    # Micro-batching actually coalesced: far fewer forwards than requests.
    assert profile["forwards"] < profile["requests"]


def format_serving_table(profile: dict) -> str:
    rows = [
        ("cold load + preprocess + forward", profile["cold_ms"], profile["cold_ms"]),
        # Cache-miss requests compare against the eager miss, not cold: the
        # interesting ratio is forward vs replayed forward.
        ("eager cache-miss request", profile["eager_miss_ms"], profile["eager_miss_ms"]),
        ("compiled cache-miss request", profile["compiled_miss_ms"], profile["eager_miss_ms"]),
        ("memoised single request", profile["memoised_ms"], profile["cold_ms"]),
        ("micro-batched per request", profile["batched_ms"], profile["cold_ms"]),
    ]
    lines = [f"{'path':<34s}{'latency ms':>12s}{'speedup':>10s}"]
    for label, value, baseline in rows:
        if value is None:
            lines.append(f"{label:<34s}{'skipped':>12s}{'-':>10s}")
            continue
        speedup = baseline / value if value else float("inf")
        lines.append(f"{label:<34s}{value:>12.3f}{speedup:>9.1f}x")
    lines.append(
        f"{profile['requests']} requests -> {profile['forwards']} forwards "
        f"(mean batch {profile['mean_batch_size']:.1f})"
    )
    if profile.get("trace"):
        trace = profile["trace"]
        lines.append(
            f"trace cache: {trace['compiles']} compile(s), {trace['hits']} hits, "
            f"{trace['fallbacks']} fallbacks"
        )
    return "\n".join(lines)


@pytest.mark.benchmark(group="serving")
def test_serving_cold_vs_warm(benchmark):
    profile = benchmark.pedantic(build_serving_profile, rounds=1, iterations=1)
    print_banner(
        f"Serving — cold vs cache-miss vs memoised inference ({profile['dataset']} "
        f"stand-in, {profile['nodes']} nodes)"
    )
    print(format_serving_table(profile))
    path = write_bench_json("serving", profile)
    print(f"wrote {path}")
    check_serving_profile(profile)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="serving latency benchmark")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: smallest dataset, fewer rounds, no JSON emission",
    )
    parser.add_argument(
        "--compile", action=argparse.BooleanOptionalAction, default=True,
        help="measure the traced-program cache-miss path (--no-compile skips it)",
    )
    parser.add_argument(
        "--trace-dir", default=None,
        help="spill the compiled trace cache to this directory after the run",
    )
    cli_args = parser.parse_args()
    result = build_serving_profile(
        quick=cli_args.quick, compiled=cli_args.compile, trace_dir=cli_args.trace_dir
    )
    print(format_serving_table(result))
    if not cli_args.quick:
        # Quick numbers are not representative; keep the committed JSON
        # trail reflecting the full benchmark only.
        write_bench_json("serving", result)
    check_serving_profile(result)
