"""Fig. 7 — robustness under feature, edge and label sparsity.

The paper's qualitative findings on CiteSeer (homophilous) and Squirrel
(heterophilous directional):

* feature sparsity cripples the feature-only models (A2DUG's adjacency
  branch keeps it afloat, spectral models suffer most) while propagation
  models (ADPA, DirGNN) recover information from neighbours;
* under edge sparsity the adjacency-free models degrade least;
* ADPA degrades gracefully across all three kinds.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.graph import to_undirected
from repro.training import format_sparsity_table, sparsity_sweep

from conftest import FULL_PROTOCOL, bench_seeds, bench_trainer
from helpers import print_banner

DATASETS = {"squirrel": True} if not FULL_PROTOCOL else {"citeseer": False, "squirrel": True}
MODELS = ["ADPA", "DirGNN", "A2DUG", "JacobiConv"]
MODEL_KWARGS = {"ADPA": {"hidden": 64, "num_steps": 2}}

SWEEPS = {
    "feature": [0.0, 0.5, 0.9],
    "edge": [0.0, 0.5, 0.9],
    "label": [20, 5, 2],
}


def build_fig7():
    seeds, trainer = bench_seeds(), bench_trainer()
    results = {}
    for dataset_name, amud_directed in DATASETS.items():
        graph = load_dataset(dataset_name, seed=0)
        view = graph if amud_directed else to_undirected(graph)
        per_kind = {}
        for kind, levels in SWEEPS.items():
            per_kind[kind] = sparsity_sweep(
                MODELS,
                view,
                kind=kind,
                levels=levels,
                seeds=seeds,
                trainer=trainer,
                model_kwargs=MODEL_KWARGS,
            )
        results[dataset_name] = per_kind
    return results


def print_fig7(results):
    print_banner("Fig. 7 — accuracy under feature / edge / label sparsity")
    for dataset_name, per_kind in results.items():
        print(f"\n### {dataset_name}")
        for kind, points in per_kind.items():
            print(format_sparsity_table(points))
            print()


def _accuracy_at(points, model, level):
    for point in points:
        if point.result.model == model and point.level == level:
            return point.result.test_mean
    raise KeyError((model, level))


def check_fig7_shape(results):
    for dataset_name, per_kind in results.items():
        feature_points = per_kind["feature"]
        # Under severe feature sparsity ADPA must retain more accuracy than the
        # spectral, feature-dependent JacobiConv.
        assert _accuracy_at(feature_points, "ADPA", 0.9) >= _accuracy_at(
            feature_points, "JacobiConv", 0.9
        ) - 0.02, dataset_name
        # ADPA never collapses to random under any sweep's extreme point.
        for kind, points in per_kind.items():
            worst_level = points[-1].level
            assert _accuracy_at(points, "ADPA", worst_level) > 0.2, (dataset_name, kind)


@pytest.mark.benchmark(group="fig7")
def test_fig7_sparsity(benchmark):
    results = benchmark.pedantic(build_fig7, rounds=1, iterations=1)
    print_fig7(results)
    check_fig7_shape(results)
