"""Sec. IV-D — empirical check of the complexity analysis.

ADPA is decoupled: every graph-dependent operation runs once in
preprocessing, so its per-epoch cost should be comparable to an MLP's and
much smaller than the coupled directed GNNs (DirGNN, NSTE), whose every
epoch touches the adjacency.  This benchmark profiles preprocessing time,
per-epoch time and parameter counts across the model families.
"""

from __future__ import annotations

import pytest

from repro.analysis import efficiency_report, format_efficiency_table
from repro.datasets import load_dataset

from helpers import print_banner, write_bench_json

MODELS = ["MLP", "SGC", "GCN", "GPRGNN", "DirGNN", "NSTE", "MagNet", "ADPA"]
MODEL_KWARGS = {"ADPA": {"hidden": 64, "num_steps": 3}}


def build_efficiency():
    graph = load_dataset("squirrel", seed=0)
    return efficiency_report(MODELS, graph, num_epochs=5, model_kwargs=MODEL_KWARGS)


def check_efficiency_shape(profiles):
    by_name = {profile.model: profile for profile in profiles}
    # ADPA front-loads the graph work: its preprocessing is the heaviest part
    # of its budget and costs more than the coupled models' preprocessing.
    assert by_name["ADPA"].preprocess_seconds > by_name["DirGNN"].preprocess_seconds
    assert by_name["ADPA"].preprocess_seconds > by_name["ADPA"].seconds_per_epoch
    # Its per-epoch cost stays within a bounded multiple of plain feature
    # models and of the coupled directed GNNs.  The factors are deliberately
    # loose: the check is about order of magnitude, not wall-clock jitter.
    assert by_name["ADPA"].seconds_per_epoch < 60 * by_name["MLP"].seconds_per_epoch
    assert by_name["ADPA"].seconds_per_epoch < 20 * by_name["NSTE"].seconds_per_epoch


def efficiency_payload(profiles) -> dict:
    """Machine-readable form of the efficiency table for trend tracking."""
    return {
        "dataset": profiles[0].dataset if profiles else None,
        "profiles": [profile.as_row() for profile in profiles],
    }


@pytest.mark.benchmark(group="efficiency")
def test_efficiency_breakdown(benchmark):
    profiles = benchmark.pedantic(build_efficiency, rounds=1, iterations=1)
    print_banner("Sec. IV-D — preprocessing vs per-epoch cost (squirrel stand-in)")
    print(format_efficiency_table(profiles))
    path = write_bench_json("efficiency", efficiency_payload(profiles))
    print(f"wrote {path}")
    check_efficiency_shape(profiles)


if __name__ == "__main__":
    rows = build_efficiency()
    print(format_efficiency_table(rows))
    write_bench_json("efficiency", efficiency_payload(rows))
    check_efficiency_shape(rows)
