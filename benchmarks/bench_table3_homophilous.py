"""Table III — accuracy on the homophilous (AMUndirected, Score < 0.5) datasets.

Expected shape (not absolute numbers): undirected GNNs rank above directed
GNNs on average, and ADPA is the best or among the best models.

The table is one declarative sweep through ``Session.experiment``; the
typed report is printed and persisted as ``BENCH_table3.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import TABLE3_DATASETS
from repro.models import get_spec
from repro.training import average_rank

from conftest import FULL_PROTOCOL, bench_model_subset
from helpers import print_banner, run_accuracy_table, write_bench_json

#: quick protocol uses a representative third of the datasets
DATASETS = TABLE3_DATASETS if FULL_PROTOCOL else ("coraml", "citeseer", "tolokers")


def build_table3():
    models = bench_model_subset(directed=False)
    return run_accuracy_table(models, DATASETS, amud_directed=False)


def check_table3_shape(table):
    ranks = average_rank(list(table.values()))
    undirected = [rank for name, rank in ranks.items()
                  if name != "ADPA" and not get_spec(name).is_directed]
    directed = [rank for name, rank in ranks.items()
                if name != "ADPA" and get_spec(name).is_directed]
    # Undirected GNNs should rank better (lower) than directed GNNs on average.
    assert np.mean(undirected) < np.mean(directed) + 1.0
    # ADPA should be competitive: within the top half of the ranking.
    assert ranks["ADPA"] <= (len(ranks) + 1) / 2.0


@pytest.mark.benchmark(group="table3")
def test_table3_homophilous_accuracy(benchmark):
    report = benchmark.pedantic(build_table3, rounds=1, iterations=1)
    print_banner("Table III — accuracy on homophilous (AMUndirected) datasets")
    print(report.as_table())
    write_bench_json("table3", report.as_dict())
    check_table3_shape(report.by_dataset())
