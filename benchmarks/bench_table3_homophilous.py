"""Table III — accuracy on the homophilous (AMUndirected, Score < 0.5) datasets.

Expected shape (not absolute numbers): undirected GNNs rank above directed
GNNs on average, and ADPA is the best or among the best models.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import TABLE3_DATASETS, load_group
from repro.models import get_spec
from repro.training import average_rank, format_results_table

from conftest import FULL_PROTOCOL, bench_model_subset, bench_seeds, bench_trainer
from helpers import print_banner, run_accuracy_table

#: quick protocol uses a representative third of the datasets
DATASETS = TABLE3_DATASETS if FULL_PROTOCOL else ("coraml", "citeseer", "tolokers")


def build_table3():
    datasets = load_group(DATASETS, seed=0)
    models = bench_model_subset(directed=False)
    return run_accuracy_table(
        models, datasets, amud_directed=False, seeds=bench_seeds(), trainer=bench_trainer()
    )


def check_table3_shape(table):
    ranks = average_rank(list(table.values()))
    undirected = [rank for name, rank in ranks.items()
                  if name != "ADPA" and not get_spec(name).is_directed]
    directed = [rank for name, rank in ranks.items()
                if name != "ADPA" and get_spec(name).is_directed]
    # Undirected GNNs should rank better (lower) than directed GNNs on average.
    assert np.mean(undirected) < np.mean(directed) + 1.0
    # ADPA should be competitive: within the top half of the ranking.
    assert ranks["ADPA"] <= (len(ranks) + 1) / 2.0


@pytest.mark.benchmark(group="table3")
def test_table3_homophilous_accuracy(benchmark):
    table = benchmark.pedantic(build_table3, rounds=1, iterations=1)
    print_banner("Table III — accuracy on homophilous (AMUndirected) datasets")
    print(format_results_table(table))
    check_table3_shape(table)
