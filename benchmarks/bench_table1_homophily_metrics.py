"""Table I — homophily metrics on directed vs undirected views + AMUD score.

Paper claim: the five classic homophily measures barely change between the
natural directed graph and its coarse undirected transformation, while the
AMUD score separates the homophilous (CoraML, CiteSeer → undirected regime)
from the heterophilous directional datasets (Chameleon, Squirrel → directed
regime).
"""

from __future__ import annotations

import pytest

from repro.amud import amud_decide
from repro.datasets import load_dataset
from repro.graph import to_undirected
from repro.metrics import homophily_report

from helpers import print_banner

DATASETS = ("coraml", "chameleon", "citeseer", "squirrel")


def build_table1():
    rows = {}
    for name in DATASETS:
        graph = load_dataset(name, seed=0)
        undirected = to_undirected(graph)
        rows[name] = {
            "directed": homophily_report(graph),
            "undirected": homophily_report(undirected),
            "amud": amud_decide(graph).score,
        }
    return rows


def check_table1_shape(rows):
    """The qualitative claims the reproduction must preserve."""
    # Classic metrics move very little when undirecting (paper's observation).
    for name, row in rows.items():
        for metric in ("node", "edge", "class", "adjusted"):
            assert abs(row["directed"][metric] - row["undirected"][metric]) < 0.12, (name, metric)
    # AMUD separates the two regimes around the 0.5 threshold.
    assert rows["coraml"]["amud"] < 0.5
    assert rows["citeseer"]["amud"] < 0.5
    assert rows["chameleon"]["amud"] > 0.5
    assert rows["squirrel"]["amud"] > 0.5


def print_table1(rows):
    print_banner("Table I — homophily metrics (directed -> undirected) and AMUD score")
    header = f"{'dataset':<12s}" + "".join(
        f"{metric:>16s}" for metric in ("Hnode", "Hedge", "Hclass", "Hadj", "LI")
    ) + f"{'AMUD':>8s}"
    print(header)
    for name, row in rows.items():
        cells = []
        for metric in ("node", "edge", "class", "adjusted", "label_informativeness"):
            cells.append(f"{row['directed'][metric]:>7.3f}-{row['undirected'][metric]:<7.3f}")
        print(f"{name:<12s}" + " ".join(cells) + f"{row['amud']:>8.3f}")


@pytest.mark.benchmark(group="table1")
def test_table1_homophily_metrics(benchmark):
    rows = benchmark.pedantic(build_table1, rounds=1, iterations=1)
    print_table1(rows)
    check_table1_shape(rows)
