"""Fig. 6 — accuracy as a function of the propagation depth K.

The paper's finding: most decoupled/propagation models peak at small K
(2-3) and then degrade from over-smoothing, while ADPA's node-wise hop
attention keeps its accuracy from collapsing as K grows.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.graph import to_undirected

from conftest import FULL_PROTOCOL, bench_seeds, bench_trainer
from helpers import print_banner, run_repeated_cell

DATASETS = {"citeseer": False, "chameleon": True} if not FULL_PROTOCOL else {
    "coraml": False, "citeseer": False, "actor": False,
    "cornell": True, "chameleon": True, "squirrel": True,
}
STEPS = (1, 2, 3, 4, 5)

#: (model, kwargs-key controlling the propagation depth)
MODELS = {
    "SGC": "num_steps",
    "GPRGNN": "num_steps",
    "DIMPA": "num_hops",
    "ADPA": "num_steps",
}


def build_fig6():
    seeds, trainer = bench_seeds(), bench_trainer()
    curves = {}
    for dataset_name, amud_directed in DATASETS.items():
        graph = load_dataset(dataset_name, seed=0)
        view = graph if amud_directed else to_undirected(graph)
        per_model = {}
        for model_name, depth_key in MODELS.items():
            series = []
            for depth in STEPS:
                kwargs = {depth_key: depth}
                if model_name == "ADPA":
                    kwargs["hidden"] = 64
                result = run_repeated_cell(
                    model_name, view, seeds, trainer, model_kwargs=kwargs
                )
                series.append(result.test_mean)
            per_model[model_name] = series
        curves[dataset_name] = per_model
    return curves


def print_fig6(curves):
    print_banner("Fig. 6 — test accuracy vs propagation steps K")
    for dataset_name, per_model in curves.items():
        print(f"\n{dataset_name}  (K = {', '.join(map(str, STEPS))})")
        for model_name, series in per_model.items():
            print(f"  {model_name:<8s} " + "  ".join(f"{100 * value:5.1f}" for value in series))


def check_fig6_shape(curves):
    for dataset_name, per_model in curves.items():
        adpa = per_model["ADPA"]
        # ADPA is robust to depth: accuracy at K=5 stays within 8 points of its peak.
        assert adpa[-1] >= max(adpa) - 0.08, dataset_name
        # ADPA is competitive with the strongest sweep baseline at its best K.
        # (On the linear-feature synthetic stand-ins SGC is a very strong
        # baseline for homophilous data, so a small tolerance is allowed.)
        assert max(adpa) >= max(per_model["SGC"]) - 0.06, dataset_name
        # ADPA at depth 1 already beats the coupled DIMPA at depth 1.
        assert adpa[0] >= per_model["DIMPA"][0] - 0.02, dataset_name


@pytest.mark.benchmark(group="fig6")
def test_fig6_propagation_steps(benchmark):
    curves = benchmark.pedantic(build_fig6, rounds=1, iterations=1)
    print_fig6(curves)
    check_fig6_shape(curves)
