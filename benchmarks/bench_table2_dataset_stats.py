"""Table II — dataset statistics and AMUD scores for all 16 stand-ins.

Regenerates the statistics table: node/edge/feature/class counts, split
sizes, edge and adjusted homophily, and the AMUD score with its U-/D-
decision.  The shape check asserts that every dataset lands in the AMUD
regime the paper reports for its real counterpart.
"""

from __future__ import annotations

import pytest

from repro.amud import amud_decide
from repro.datasets import dataset_config, list_datasets, load_dataset
from repro.graph.splits import split_counts
from repro.metrics import adjusted_homophily, edge_homophily

from helpers import print_banner


def build_table2():
    rows = []
    for name in list_datasets():
        graph = load_dataset(name, seed=0)
        decision = amud_decide(graph)
        train, val, test = split_counts(graph)
        rows.append(
            {
                "name": name,
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "features": graph.num_features,
                "classes": graph.num_classes,
                "split": f"{train}/{val}/{test}",
                "edge_homophily": edge_homophily(graph),
                "adjusted_homophily": adjusted_homophily(graph),
                "amud_score": decision.score,
                "amud_modeling": decision.modeling,
                "paper_regime": dataset_config(name).amud_regime,
                "description": graph.meta.get("description", ""),
            }
        )
    return rows


def print_table2(rows):
    print_banner("Table II — dataset statistics and AMUD scores (synthetic stand-ins)")
    header = (
        f"{'dataset':<18s}{'nodes':>7s}{'edges':>8s}{'feat':>6s}{'cls':>5s}"
        f"{'train/val/test':>17s}{'E.Homo':>8s}{'Adj.Homo':>9s}{'AMUD':>7s}{'view':>6s}"
    )
    print(header)
    for row in rows:
        view = "D-" if row["amud_modeling"] == "directed" else "U-"
        print(
            f"{row['name']:<18s}{row['nodes']:>7d}{row['edges']:>8d}{row['features']:>6d}"
            f"{row['classes']:>5d}{row['split']:>17s}{row['edge_homophily']:>8.3f}"
            f"{row['adjusted_homophily']:>9.3f}{row['amud_score']:>7.3f}{view:>6s}"
        )


def check_table2_shape(rows):
    assert len(rows) == 16
    for row in rows:
        assert row["amud_modeling"] == row["paper_regime"], row["name"]
    by_name = {row["name"]: row for row in rows}
    # Homophilous group really is homophilous, heterophilous group is not.
    assert by_name["coraml"]["edge_homophily"] > 0.7
    assert by_name["texas"]["edge_homophily"] < 0.2
    # The "abnormal" cases: Genius homophilous-but-directed, Actor the reverse.
    assert by_name["genius"]["edge_homophily"] > 0.5
    assert by_name["genius"]["amud_modeling"] == "directed"
    assert by_name["actor"]["edge_homophily"] < 0.45
    assert by_name["actor"]["amud_modeling"] == "undirected"


@pytest.mark.benchmark(group="table2")
def test_table2_dataset_stats(benchmark):
    rows = benchmark.pedantic(build_table2, rounds=1, iterations=1)
    print_table2(rows)
    check_table2_shape(rows)
