"""Fig. 5 — convergence curves of ADPA vs baselines.

Regenerates the per-epoch validation-accuracy series.  The shape checks are
the paper's qualitative statements: ADPA reaches close-to-optimal accuracy
early (within the first third of training) and its final accuracy is at
least on par with the baselines on the directional dataset.
"""

from __future__ import annotations

import pytest

from repro.datasets import load_dataset
from repro.graph import to_undirected
from repro.models import create_model, get_spec
from repro.training import Trainer

from conftest import FULL_PROTOCOL
from helpers import DEFAULT_MODEL_KWARGS, print_banner, resolve_input_view

DATASETS = {"tolokers": False, "chameleon": True} if not FULL_PROTOCOL else {
    "coraml": False, "tolokers": False, "wikics": False, "chameleon": True, "squirrel": True,
}
MODELS = ("GCN", "GPRGNN", "DirGNN", "ADPA")
EPOCHS = 100


def build_fig5():
    trainer = Trainer(epochs=EPOCHS, patience=EPOCHS)  # no early stop: full curves
    curves = {}
    for dataset_name, amud_directed in DATASETS.items():
        graph = load_dataset(dataset_name, seed=0)
        per_model = {}
        for model_name in MODELS:
            view = resolve_input_view(model_name, graph, amud_directed)
            kwargs = dict(DEFAULT_MODEL_KWARGS.get(model_name, {}))
            kwargs["seed"] = 0
            model = create_model(model_name, view, **kwargs)
            result = trainer.fit(model, view)
            per_model[model_name] = result.history["val_acc"]
        curves[dataset_name] = per_model
    return curves


def print_fig5(curves):
    print_banner("Fig. 5 — validation-accuracy convergence curves (sampled every 10 epochs)")
    checkpoints = list(range(9, EPOCHS, 10))
    for dataset_name, per_model in curves.items():
        print(f"\n{dataset_name}  (epochs {', '.join(str(epoch + 1) for epoch in checkpoints)})")
        for model_name, series in per_model.items():
            sampled = "  ".join(f"{100 * series[epoch]:5.1f}" for epoch in checkpoints)
            print(f"  {model_name:<8s} {sampled}")


def check_fig5_shape(curves):
    for dataset_name, per_model in curves.items():
        adpa = per_model["ADPA"]
        best_final = max(series[-1] for name, series in per_model.items() if name != "ADPA")
        # ADPA's final accuracy is on par with the best baseline (within 5 points).
        assert adpa[-1] >= best_final - 0.05, dataset_name
        # ADPA converges early: by one third of training it reaches 90% of its final level.
        third = len(adpa) // 3
        assert max(adpa[:third]) >= 0.9 * adpa[-1], dataset_name


@pytest.mark.benchmark(group="fig5")
def test_fig5_convergence(benchmark):
    curves = benchmark.pedantic(build_fig5, rounds=1, iterations=1)
    print_fig5(curves)
    check_fig5_shape(curves)
