"""Live-update benchmark: the delta path vs the full re-preprocess cliff.

Before live graphs, *any* array change produced a brand-new fingerprint
and a full re-preprocess: one inserted edge cost a complete rehash of
every row plus the model's whole K-step propagation.  The delta path
(:func:`repro.graph.apply_delta` + ``model.update_preprocess``) re-hashes
only the touched rows against the canonicalised baseline and patches the
propagation for the dirty frontier, bit-identical to the full recompute.

Two phases, on SGC (K=2) over a dedicated 30k-node DSBM graph — an
order of magnitude above the registry datasets, the scale at which the
full-re-preprocess cliff actually hurts a serving deployment:

* **micro**: single-edge and feature-row deltas, delta path (apply_delta
  with incremental fingerprint + in-place ``update_preprocess``) timed
  against the full path (full fingerprint rehash + full ``preprocess``)
  on the same mutated graphs;
* **serving**: a :class:`repro.serving.ShardRouter` under concurrent
  client load while a writer thread applies deltas through
  ``update_shard`` — requests must see zero errors and a bounded p99
  while fingerprints churn underneath them.

Both paths run with :func:`repro.serving.tune_allocator_for_churn`
applied (glibc otherwise returns every freed step array to the kernel,
charging page-fault cost to whoever allocates next, on either path).

Acceptance: the delta path is >= 10x faster than the full path for both
delta kinds, every incremental fingerprint matches the full rehash
bit-identically (``validate=True`` throughout), the serving phase
records zero request errors, and every topology swap patches the SGC
cache in place.
"""

from __future__ import annotations

import argparse
import threading
import time

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.fingerprint import graph_fingerprint
from repro.graph import GraphDelta
from repro.graph.generators import DSBMConfig, directed_sbm
from repro.graph.splits import ratio_split
from repro.models.registry import create_model
from repro.serving import ShardRouter, tune_allocator_for_churn
from repro.training import Trainer

from bench_serving import smallest_dataset
from helpers import print_banner, write_bench_json

MODEL = "SGC"
MODEL_KWARGS = {"num_steps": 2}
BENCH_NODES = 30_000
MICRO_ROUNDS = 30
SERVING_SECONDS = 4.0
SERVING_CLIENTS = 2
WRITER_PAUSE_SECONDS = 0.02
SPEEDUP_FLOOR = 10.0
P99_CEILING_MS = 500.0


def _micro_deltas(graph, rng: np.random.Generator) -> dict:
    """One representative delta per kind, against the current graph."""
    n, f = graph.num_nodes, graph.num_features
    return {
        "single_edge": GraphDelta(
            add_edges=[[int(rng.integers(n)), int(rng.integers(n))]]
        ),
        "feature_row": GraphDelta(
            set_features={int(rng.integers(n)): rng.normal(size=f)}
        ),
    }


def _time_paths(graph, model, cache, delta, rounds: int) -> dict:
    """Median seconds of the delta path vs the full path for one delta.

    Medians, not means: the bench box is a single-vCPU VM where the first
    few multi-MB allocations after a heap high-water-mark change stall on
    page-fault/compaction for hundreds of ms.  Those warm-up spikes are
    not the steady-state cost of either path, and the median ignores them
    symmetrically.
    """
    # The mutated graph for the full path is built once, outside the
    # timed region; graph_fingerprint()/preprocess() recompute every call.
    mutated = graph.apply_delta(delta, validate=True)
    full_times = []
    for _ in range(rounds):
        started = time.perf_counter()
        graph_fingerprint(mutated)
        model.preprocess(mutated)
        full_times.append(time.perf_counter() - started)
    delta_times = []
    for _ in range(rounds):
        started = time.perf_counter()
        fresh = graph.apply_delta(delta)
        updated = model.update_preprocess(graph, fresh, delta, cache)
        delta_times.append(time.perf_counter() - started)
        assert updated is not None, "SGC must support the in-place path"
    # Bit-identity spot check: the incremental cache equals a recompute.
    final = model.update_preprocess(graph, mutated, delta, cache)
    reference = model.preprocess(mutated)
    assert np.array_equal(final["x"].numpy(), reference["x"].numpy())
    full_median = float(np.median(full_times))
    delta_median = float(np.median(delta_times))
    return {
        "full_ms": full_median * 1e3,
        "delta_ms": delta_median * 1e3,
        "speedup": full_median / delta_median if delta_median > 0 else float("inf"),
    }


def _serving_phase(graph, model, cache, duration: float, clients: int) -> dict:
    """Concurrent clients + a delta writer through router.update_shard."""
    router = ShardRouter(max_wait_ms=0.5, compile="eager")
    # Seed the operator cache so the phase measures steady-state churn,
    # not one cold full preprocess paid by whichever request arrives first.
    shard = router.add_shard(model, graph, preprocess_cache=cache)
    stop_flag = threading.Event()
    warmup_rng = np.random.default_rng(99)
    request_errors: list = []
    completed = [0] * clients
    swaps: list = []

    latencies: list = [[] for _ in range(clients)]

    def client(slot: int, seed: int) -> None:
        rng = np.random.default_rng(seed)
        n = graph.num_nodes
        while not stop_flag.is_set():
            ids = rng.integers(0, n, size=16)
            try:
                sent = time.perf_counter()
                router.submit(node_ids=ids, shard=shard).result(timeout=30)
                latencies[slot].append(time.perf_counter() - sent)
                completed[slot] += 1
            except Exception as error:  # pragma: no cover - asserted empty
                request_errors.append(error)
                return

    def writer() -> None:
        rng = np.random.default_rng(1234)
        n = graph.num_nodes
        index = 0
        while not stop_flag.is_set():
            u, v = int(rng.integers(n)), int(rng.integers(n))
            delta = (
                GraphDelta(add_edges=[[u, v]])
                if index % 2 == 0
                else GraphDelta(remove_edges=[[u, v]])
            )
            try:
                swaps.append(router.update_shard(shard, delta, timeout=30))
            except Exception as error:  # pragma: no cover - asserted empty
                request_errors.append(error)
                return
            index += 1
            time.sleep(WRITER_PAUSE_SECONDS)

    with router:
        # Warm-up swaps before the timed window: the worker thread's first
        # few multi-MB allocations grow the heap high-water mark and stall
        # on page-fault/compaction (hundreds of ms on this single-vCPU
        # box).  Steady-state churn — what the phase measures — reuses the
        # heap and pays none of that.
        n = graph.num_nodes
        for _ in range(4):
            u, v = int(warmup_rng.integers(n)), int(warmup_rng.integers(n))
            router.update_shard(shard, GraphDelta(add_edges=[[u, v]]), timeout=30)
            ids = warmup_rng.integers(0, n, size=16)
            router.submit(node_ids=ids, shard=shard).result(timeout=30)
        threads = [
            threading.Thread(target=client, args=(slot, 7 + slot))
            for slot in range(clients)
        ]
        writer_thread = threading.Thread(target=writer)
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        writer_thread.start()
        time.sleep(duration)
        stop_flag.set()
        for thread in threads:
            thread.join()
        writer_thread.join()
        elapsed = time.perf_counter() - started

    changed = [swap for swap in swaps if swap.new_fingerprint != swap.old_fingerprint]
    # Client-observed latency over the timed window only — the router's own
    # histogram would fold in the warm-up traffic above.
    observed = np.array([entry for slot in latencies for entry in slot])
    return {
        "duration_s": elapsed,
        "requests_ok": int(sum(completed)),
        "requests_per_second": sum(completed) / elapsed,
        "errors": len(request_errors),
        "swaps": len(swaps),
        "swaps_in_place": sum(1 for swap in changed if swap.in_place),
        "swaps_changed": len(changed),
        "p50_ms": float(np.percentile(observed, 50) * 1e3) if observed.size else 0.0,
        "p99_ms": float(np.percentile(observed, 99) * 1e3) if observed.size else 0.0,
    }


def _bench_graph(quick: bool):
    """Quick mode reuses the smallest registry dataset; the full run
    builds a 30k-node DSBM graph, the largest graph in the bench suite."""
    if quick:
        dataset = smallest_dataset()
        return dataset, load_dataset(dataset, seed=0)
    config = DSBMConfig(
        num_nodes=BENCH_NODES,
        num_classes=8,
        avg_degree=10.0,
        feature_dim=64,
        homophily=0.6,
        directional_asymmetry=0.3,
        feature_signal=0.5,
        name=f"delta-bench-{BENCH_NODES // 1000}k",
    )
    graph = ratio_split(directed_sbm(config, seed=0), train_ratio=0.6, val_ratio=0.2, seed=0)
    return config.name, graph


def build_delta_profile(quick: bool = False) -> dict:
    allocator_tuned = tune_allocator_for_churn()
    dataset, graph = _bench_graph(quick)
    rng = np.random.default_rng(0)
    model = create_model(MODEL, graph, seed=0, **MODEL_KWARGS)
    Trainer(epochs=3).fit(model, graph)
    model.eval()
    cache = model.preprocess(graph)

    rounds = 3 if quick else MICRO_ROUNDS
    micro = {
        kind: _time_paths(graph, model, cache, delta, rounds)
        for kind, delta in _micro_deltas(graph, rng).items()
    }
    serving = _serving_phase(
        graph,
        model,
        cache,
        duration=1.0 if quick else SERVING_SECONDS,
        clients=2 if quick else SERVING_CLIENTS,
    )
    return {
        "dataset": dataset,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "model": MODEL,
        "model_kwargs": MODEL_KWARGS,
        "quick": quick,
        "allocator_tuned": allocator_tuned,
        "micro_rounds": rounds,
        "micro": micro,
        "serving": serving,
    }


def check_delta_profile(profile: dict) -> None:
    serving = profile["serving"]
    assert serving["errors"] == 0, f"{serving['errors']} request errors under live updates"
    assert serving["swaps"] > 0, "writer applied no deltas"
    assert serving["swaps_in_place"] == serving["swaps_changed"], (
        "every topology swap should take SGC's in-place path"
    )
    if profile["quick"]:
        # Quick mode smoke-checks the machinery; wall-clock ratios on a
        # tiny graph (and loaded CI runners) are not meaningful.
        return
    for kind, numbers in profile["micro"].items():
        assert numbers["speedup"] >= SPEEDUP_FLOOR, (
            f"{kind}: delta path only {numbers['speedup']:.1f}x faster "
            f"(floor {SPEEDUP_FLOOR}x)"
        )
    assert serving["p99_ms"] <= P99_CEILING_MS, (
        f"p99 {serving['p99_ms']:.1f} ms exceeds {P99_CEILING_MS} ms under live updates"
    )


def format_delta_table(profile: dict) -> str:
    lines = [
        f"{'delta kind':<14} {'full (ms)':>12} {'delta (ms)':>12} {'speedup':>9}",
        "-" * 50,
    ]
    for kind, numbers in profile["micro"].items():
        lines.append(
            f"{kind:<14} {numbers['full_ms']:>12.3f} {numbers['delta_ms']:>12.3f} "
            f"{numbers['speedup']:>8.1f}x"
        )
    serving = profile["serving"]
    lines += [
        "",
        f"serving under churn ({serving['duration_s']:.1f}s): "
        f"{serving['requests_ok']} requests ok, {serving['errors']} errors, "
        f"{serving['requests_per_second']:.0f} req/s",
        f"  live swaps: {serving['swaps']} applied "
        f"({serving['swaps_in_place']}/{serving['swaps_changed']} in-place)",
        f"  latency: p50 {serving['p50_ms']:.2f} ms, p99 {serving['p99_ms']:.2f} ms",
    ]
    return "\n".join(lines)


@pytest.mark.benchmark(group="serving")
def test_delta_vs_full_preprocess(benchmark):
    profile = benchmark.pedantic(build_delta_profile, rounds=1, iterations=1)
    print_banner(
        f"Live updates — delta path vs full re-preprocess "
        f"({profile['dataset']}, {profile['nodes']} nodes)"
    )
    print(format_delta_table(profile))
    path = write_bench_json("delta", profile)
    print(f"wrote {path}")
    check_delta_profile(profile)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="live graph update benchmark")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: smallest dataset, fewer rounds, no JSON emission",
    )
    cli_args = parser.parse_args()
    result = build_delta_profile(quick=cli_args.quick)
    print_banner(
        f"Live updates — delta path vs full re-preprocess "
        f"({result['dataset']}, {result['nodes']} nodes)"
    )
    print(format_delta_table(result))
    if not cli_args.quick:
        # Quick numbers are not representative; keep the committed JSON
        # trail reflecting the full benchmark only.
        path = write_bench_json("delta", result)
        print(f"wrote {path}")
    check_delta_profile(result)
