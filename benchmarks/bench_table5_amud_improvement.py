"""Table V — improvement from following the AMUD guidance on the "abnormal" datasets.

Actor and Amazon-rating are heterophilous by the classic measures yet AMUD
flags them as undirected; Genius is homophilous yet AMUD flags it directed
(ogbn-arxiv behaves like the former group).  The paper's claim: feeding each
directed model the AMUD-recommended view beats the opposite view, and ADPA
is the least sensitive to the choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amud import amud_decide
from repro.datasets import TABLE5_DATASETS, load_dataset
from repro.graph import to_undirected
from repro.training import run_repeated

from conftest import FULL_PROTOCOL, bench_seeds, bench_trainer
from helpers import DEFAULT_MODEL_KWARGS, print_banner

DATASETS = TABLE5_DATASETS if FULL_PROTOCOL else ("actor", "genius")
MODELS = ("MagNet", "DirGNN", "ADPA") if not FULL_PROTOCOL else ("MagNet", "DIMPA", "DirGNN", "ADPA")


def build_table5():
    seeds, trainer = bench_seeds(), bench_trainer()
    rows = {}
    for dataset_name in DATASETS:
        graph = load_dataset(dataset_name, seed=0)
        decision = amud_decide(graph)
        undirected = to_undirected(graph)
        per_model = {}
        for model_name in MODELS:
            kwargs = DEFAULT_MODEL_KWARGS.get(model_name, {})
            undirected_result = run_repeated(
                model_name, undirected, seeds=seeds, trainer=trainer, model_kwargs=kwargs
            )
            directed_result = run_repeated(
                model_name, graph, seeds=seeds, trainer=trainer, model_kwargs=kwargs
            )
            per_model[model_name] = {
                "U": undirected_result.test_mean,
                "D": directed_result.test_mean,
            }
        rows[dataset_name] = {"decision": decision, "models": per_model}
    return rows


def print_table5(rows):
    print_banner("Table V — AMUD guidance (U- vs D- inputs) on the abnormal datasets")
    for dataset_name, row in rows.items():
        decision = row["decision"]
        print(f"\n{dataset_name}: AMUD score {decision.score:.3f} -> {decision.modeling}")
        print(f"{'model':<10s}{'U- acc':>10s}{'D- acc':>10s}{'gap %':>9s}")
        for model_name, accs in row["models"].items():
            gap = 100 * abs(accs["U"] - accs["D"]) / max(accs["U"], accs["D"], 1e-9)
            print(f"{model_name:<10s}{100 * accs['U']:>10.1f}{100 * accs['D']:>10.1f}{gap:>9.1f}")


def check_table5_shape(rows):
    for dataset_name, row in rows.items():
        recommended = "D" if row["decision"].keep_directed else "U"
        other = "U" if recommended == "D" else "D"
        baseline_models = [name for name in row["models"] if name != "ADPA"]
        # Majority of the directed baselines gain from following the guidance.
        gains = [
            row["models"][name][recommended] >= row["models"][name][other] - 0.01
            for name in baseline_models
        ]
        assert np.mean(gains) >= 0.5, dataset_name
        # ADPA's sensitivity to the view is no worse than the baselines' average.
        def sensitivity(name):
            accs = row["models"][name]
            return abs(accs["U"] - accs["D"]) / max(accs["U"], accs["D"], 1e-9)

        baseline_sensitivity = np.mean([sensitivity(name) for name in baseline_models])
        assert sensitivity("ADPA") <= baseline_sensitivity + 0.05, dataset_name


@pytest.mark.benchmark(group="table5")
def test_table5_amud_improvement(benchmark):
    rows = benchmark.pedantic(build_table5, rounds=1, iterations=1)
    print_table5(rows)
    check_table5_shape(rows)
