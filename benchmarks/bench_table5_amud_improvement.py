"""Table V — improvement from following the AMUD guidance on the "abnormal" datasets.

Actor and Amazon-rating are heterophilous by the classic measures yet AMUD
flags them as undirected; Genius is homophilous yet AMUD flags it directed
(ogbn-arxiv behaves like the former group).  The paper's claim: feeding each
directed model the AMUD-recommended view beats the opposite view, and ADPA
is the least sensitive to the choice.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.amud import amud_decide
from repro.api import Session, SweepSpec
from repro.datasets import TABLE5_DATASETS, load_dataset

from conftest import FULL_PROTOCOL, bench_experiment_config
from helpers import DEFAULT_MODEL_KWARGS, print_banner, write_bench_json

DATASETS = TABLE5_DATASETS if FULL_PROTOCOL else ("actor", "genius")
MODELS = ("MagNet", "DirGNN", "ADPA") if not FULL_PROTOCOL else ("MagNet", "DIMPA", "DirGNN", "ADPA")


def build_table5():
    # Two sweeps over the same grid — one per input view — through the
    # declarative experiment surface.
    base = dict(
        models=MODELS,
        datasets=DATASETS,
        config=bench_experiment_config(),
        model_kwargs=DEFAULT_MODEL_KWARGS,
    )
    session = Session()
    undirected = session.experiment(SweepSpec(view="undirected", **base))
    directed = session.experiment(SweepSpec(view="natural", **base))
    rows = {}
    for dataset_name in DATASETS:
        decision = amud_decide(load_dataset(dataset_name, seed=0))
        per_model = {
            model_name: {
                "U": undirected.cell(model_name, dataset_name).test_mean,
                "D": directed.cell(model_name, dataset_name).test_mean,
            }
            for model_name in MODELS
        }
        rows[dataset_name] = {"decision": decision, "models": per_model}
    return rows, undirected, directed


def print_table5(rows):
    print_banner("Table V — AMUD guidance (U- vs D- inputs) on the abnormal datasets")
    for dataset_name, row in rows.items():
        decision = row["decision"]
        print(f"\n{dataset_name}: AMUD score {decision.score:.3f} -> {decision.modeling}")
        print(f"{'model':<10s}{'U- acc':>10s}{'D- acc':>10s}{'gap %':>9s}")
        for model_name, accs in row["models"].items():
            gap = 100 * abs(accs["U"] - accs["D"]) / max(accs["U"], accs["D"], 1e-9)
            print(f"{model_name:<10s}{100 * accs['U']:>10.1f}{100 * accs['D']:>10.1f}{gap:>9.1f}")


def check_table5_shape(rows):
    for dataset_name, row in rows.items():
        recommended = "D" if row["decision"].keep_directed else "U"
        other = "U" if recommended == "D" else "D"
        baseline_models = [name for name in row["models"] if name != "ADPA"]
        # Majority of the directed baselines gain from following the guidance.
        gains = [
            row["models"][name][recommended] >= row["models"][name][other] - 0.01
            for name in baseline_models
        ]
        assert np.mean(gains) >= 0.5, dataset_name
        # ADPA's sensitivity to the view is no worse than the baselines' average.
        def sensitivity(name):
            accs = row["models"][name]
            return abs(accs["U"] - accs["D"]) / max(accs["U"], accs["D"], 1e-9)

        baseline_sensitivity = np.mean([sensitivity(name) for name in baseline_models])
        assert sensitivity("ADPA") <= baseline_sensitivity + 0.05, dataset_name


@pytest.mark.benchmark(group="table5")
def test_table5_amud_improvement(benchmark):
    rows, undirected, directed = benchmark.pedantic(build_table5, rounds=1, iterations=1)
    print_table5(rows)
    write_bench_json(
        "table5", {"U": undirected.as_dict(), "D": directed.as_dict()}
    )
    check_table5_shape(rows)
