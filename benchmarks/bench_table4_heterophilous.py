"""Table IV — accuracy on the heterophilous (AMDirected, Score > 0.5) datasets.

Expected shape: directed GNNs rank above undirected GNNs, and ADPA ranks
first or near-first.

The table is one declarative sweep through ``Session.experiment``; the
typed report is printed and persisted as ``BENCH_table4.json``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import TABLE4_DATASETS
from repro.models import get_spec
from repro.training import average_rank

from conftest import FULL_PROTOCOL, bench_model_subset
from helpers import print_banner, run_accuracy_table, write_bench_json

DATASETS = TABLE4_DATASETS if FULL_PROTOCOL else ("texas", "chameleon", "squirrel")


def build_table4():
    models = bench_model_subset(directed=True)
    return run_accuracy_table(models, DATASETS, amud_directed=True)


def check_table4_shape(table):
    ranks = average_rank(list(table.values()))
    undirected = [rank for name, rank in ranks.items()
                  if name != "ADPA" and not get_spec(name).is_directed]
    directed = [rank for name, rank in ranks.items()
                if name != "ADPA" and get_spec(name).is_directed]
    # Directed GNNs must rank better (lower) than undirected GNNs on average.
    assert np.mean(directed) < np.mean(undirected)
    # ADPA must be in the top 3 of the ranking on AMDirected data.
    assert ranks["ADPA"] <= 3.0


@pytest.mark.benchmark(group="table4")
def test_table4_heterophilous_accuracy(benchmark):
    report = benchmark.pedantic(build_table4, rounds=1, iterations=1)
    print_banner("Table IV — accuracy on heterophilous (AMDirected) datasets")
    print(report.as_table())
    write_bench_json("table4", report.as_dict())
    check_table4_shape(report.by_dataset())
