"""Ablation — initial-residual (APPNP-style) propagation inside ADPA.

Sec. IV-A notes ADPA "can benefit from advancements in well-designed feature
propagation strategies (e.g. initial residuals and dense connection)".  This
ablation sweeps a per-step initial-residual strength α at a deeper
propagation setting (K = 5).

Finding on the heterophilous directional stand-ins: α = 0 (the paper's plain
Eq. 9 propagation) is the best setting, and accuracy degrades monotonically
as α grows — mixing the (weakly informative) raw features back into every
step dilutes the directional-structure signal that the DP operators extract,
and the explicit X⁰ block already gives the attention access to the raw
features.  This supports the paper's design choice of keeping the initial
residual as a *separate attention block* rather than folding it into the
propagation, and the benchmark asserts exactly that ordering.
"""

from __future__ import annotations

import pytest

from repro.api import Session, SweepSpec

from conftest import FULL_PROTOCOL, bench_experiment_config
from helpers import print_banner, write_bench_json

DATASETS = ("chameleon",) if not FULL_PROTOCOL else ("citeseer", "chameleon", "squirrel")
ALPHAS = (0.0, 0.1, 0.3, 0.5)


def build_residual_ablation():
    # The α sweep is a one-model variant grid on the natural digraphs.
    spec = SweepSpec(
        models=("ADPA",),
        datasets=DATASETS,
        view="natural",
        config=bench_experiment_config(),
        variants={
            f"alpha={alpha}": {"hidden": 64, "num_steps": 5, "residual_alpha": alpha}
            for alpha in ALPHAS
        },
    )
    report = Session().experiment(spec)
    rows = {
        dataset_name: {
            alpha: report.cell("ADPA", dataset_name, f"alpha={alpha}").test_mean
            for alpha in ALPHAS
        }
        for dataset_name in DATASETS
    }
    return rows, report


def print_residual_ablation(rows):
    print_banner("Ablation — initial-residual propagation strength α (K = 5)")
    print(f"{'dataset':<14s}" + "".join(f"{f'α={alpha}':>10s}" for alpha in ALPHAS))
    for dataset_name, per_alpha in rows.items():
        print(
            f"{dataset_name:<14s}"
            + "".join(f"{100 * per_alpha[alpha]:>10.1f}" for alpha in ALPHAS)
        )


def check_residual_shape(rows):
    for dataset_name, per_alpha in rows.items():
        plain = per_alpha[0.0]
        # Plain Eq. (9) propagation (α = 0) is the best setting on the
        # directional datasets: every residual strength is at most on par.
        for alpha in ALPHAS[1:]:
            assert per_alpha[alpha] <= plain + 0.02, (dataset_name, alpha)
        # Strong residual mixing clearly hurts (the raw features are weak).
        assert per_alpha[ALPHAS[-1]] < plain, dataset_name


@pytest.mark.benchmark(group="ablation-residual")
def test_residual_propagation_ablation(benchmark):
    rows, report = benchmark.pedantic(build_residual_ablation, rounds=1, iterations=1)
    print_residual_ablation(rows)
    write_bench_json("ablation_residual", report.as_dict())
    check_residual_shape(rows)
