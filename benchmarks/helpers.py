"""Shared utilities for the benchmark harness.

The input-view convention follows the paper's experimental setup (Sec. V-A):

* undirected GNNs are always fed the coarse undirected transformation (U-);
* directed GNNs are fed the natural digraph (D-);
* ADPA is fed the AMUD output — undirected for Table III datasets,
  directed for Table IV datasets (Fig. 1 workflow).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.graph import DirectedGraph, to_undirected
from repro.models import get_spec, PROPOSED
from repro.training import ExperimentResult, Trainer, run_repeated

#: per-model constructor overrides used across benchmarks (kept small: the
#: defaults already follow each original paper's recommended settings).
DEFAULT_MODEL_KWARGS: Dict[str, Dict] = {
    "ADPA": {"hidden": 64, "num_steps": 3},
}


def resolve_input_view(model_name: str, graph: DirectedGraph, amud_directed: bool) -> DirectedGraph:
    """Pick the U-/D- input view for a model following the paper's protocol."""
    spec = get_spec(model_name)
    if spec.category == PROPOSED:
        return graph if amud_directed else to_undirected(graph)
    if spec.is_directed:
        return graph
    return to_undirected(graph)


def run_table_cell(
    model_name: str,
    graph: DirectedGraph,
    amud_directed: bool,
    seeds: Sequence[int],
    trainer: Trainer,
    model_kwargs: Optional[Dict] = None,
) -> ExperimentResult:
    """Train one model on one dataset under the table's input-view protocol."""
    view = resolve_input_view(model_name, graph, amud_directed)
    kwargs = dict(DEFAULT_MODEL_KWARGS.get(model_name, {}))
    if model_kwargs:
        kwargs.update(model_kwargs)
    return run_repeated(model_name, view, seeds=seeds, trainer=trainer, model_kwargs=kwargs)


def run_accuracy_table(
    model_names: Sequence[str],
    datasets: Dict[str, DirectedGraph],
    amud_directed: bool,
    seeds: Sequence[int],
    trainer: Trainer,
) -> Dict[str, List[ExperimentResult]]:
    """Fill a full (model x dataset) accuracy table."""
    table: Dict[str, List[ExperimentResult]] = {}
    for dataset_name, graph in datasets.items():
        table[dataset_name] = [
            run_table_cell(name, graph, amud_directed, seeds, trainer)
            for name in model_names
        ]
    return table


def print_banner(title: str) -> None:
    print("\n" + "=" * 78)
    print(title)
    print("=" * 78)


def write_bench_json(name: str, payload) -> "Path":
    """Persist a benchmark's results as ``BENCH_<name>.json`` next to it.

    The JSON files are the machine-readable trail of the performance
    trajectory: each run overwrites its file, and the git history of the
    numbers is the trend line.
    """
    import json
    from pathlib import Path

    path = Path(__file__).resolve().parent / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
    return path
