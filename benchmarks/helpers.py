"""Shared utilities for the benchmark harness.

The input-view convention follows the paper's experimental setup (Sec. V-A)
and is implemented once, in :func:`repro.api.resolve_view`:

* undirected GNNs are always fed the coarse undirected transformation (U-);
* directed GNNs are fed the natural digraph (D-);
* ADPA is fed the AMUD output — undirected for Table III datasets
  (``view="paper-undirected"``), directed for Table IV datasets
  (``view="paper-directed"``), per-dataset regime under ``view="amud"``.

Every accuracy table is one declarative :class:`repro.api.SweepSpec`
executed by :meth:`repro.api.Session.experiment`, so the benchmark scripts
stay a thin shell over the same surface the CLI and library expose.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.api import Session, SweepReport, SweepSpec
from repro.graph import DirectedGraph
from repro.training import Trainer

from conftest import bench_experiment_config

#: per-model constructor overrides used across benchmarks (kept small: the
#: defaults already follow each original paper's recommended settings).
DEFAULT_MODEL_KWARGS: Dict[str, Dict] = {
    "ADPA": {"hidden": 64, "num_steps": 3},
}


def paper_table_spec(
    model_names: Sequence[str],
    dataset_names: Sequence[str],
    amud_directed: bool,
) -> SweepSpec:
    """The declarative spec of one Table III/IV-style accuracy table."""
    return SweepSpec(
        models=tuple(model_names),
        datasets=tuple(dataset_names),
        view="paper-directed" if amud_directed else "paper-undirected",
        config=bench_experiment_config(),
        model_kwargs=DEFAULT_MODEL_KWARGS,
    )


def run_accuracy_table(
    model_names: Sequence[str],
    dataset_names: Sequence[str],
    amud_directed: bool,
) -> SweepReport:
    """Fill a full (model × dataset) accuracy table via ``Session.experiment``."""
    return Session().experiment(paper_table_spec(model_names, dataset_names, amud_directed))


def run_repeated_cell(
    model_name: str,
    graph: DirectedGraph,
    seeds: Sequence[int],
    trainer: Trainer,
    model_kwargs: Optional[Dict] = None,
):
    """Repeated-seed helper for benchmarks that drive explicit graph views.

    A thin wrapper over the :mod:`repro.api` executor (the figure
    benchmarks sweep hand-built views, which a dataset-name spec cannot
    express); returns the typed :class:`repro.api.ExperimentReport`.
    """
    from repro.api.experiment import execute_repeated

    report, _ = execute_repeated(
        model_name,
        graph,
        seeds=seeds,
        train=trainer,
        model_kwargs=model_kwargs,
        max_workers=None,
    )
    return report


def print_banner(title: str) -> None:
    print("\n" + "=" * 78)
    print(title)
    print("=" * 78)


def write_bench_json(name: str, payload) -> "Path":
    """Persist a benchmark's results as ``BENCH_<name>.json`` next to it.

    The JSON files are the machine-readable trail of the performance
    trajectory: each run overwrites its file, and the git history of the
    numbers is the trend line.
    """
    import json
    from pathlib import Path

    path = Path(__file__).resolve().parent / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")
    return path
