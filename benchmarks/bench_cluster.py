"""Cluster benchmark: sharded sweeps and multi-process serving throughput.

Three claims from the cluster subsystem, measured end to end:

* **distributed sweeps** — a 2-model x 2-dataset sweep run as two worker
  shards merges into a report byte-identical to the serial run (the
  canonical forms compared as JSON), while the shards run concurrently;
* **multi-process serving** — N router workers behind one
  :class:`repro.cluster.WorkerPool` beat the single-process router on
  throughput, because each worker owns its own GIL.  Mid-run one worker
  is SIGKILLed: idempotent predict ops are retried on survivors, so the
  crash costs latency, never a dropped request.
* **cross-machine transport** — the same two guarantees hold when the
  workers register over TCP loopback (``listen=127.0.0.1:0`` + HMAC
  handshake + connect-back spawn commands) instead of stdin/stdout pipes:
  the sharded sweep still merges bit-identical to serial, and one induced
  remote-worker *disconnect* (connection severed, worker respawned
  through its spawn command) still drops zero ``predict`` requests.

The serving workload is deliberately compute-heavy (ADPA propagation on
the largest synthetic graph, one forward per request, logit cache off)
so process fan-out measures compute scaling rather than IPC overhead.

Results land in ``BENCH_cluster.json`` (quick mode included, flagged),
the machine-readable trail CI archives.  The >= 2x throughput assertion
runs in full mode on multi-core hosts only (one worker per GIL cannot
outrun one process on one CPU); bit-identical merges and zero-drop crash
recovery are asserted in every mode, over pipes and over TCP.
"""

from __future__ import annotations

import argparse
import os
import tempfile
import threading
import time
from dataclasses import asdict

import pytest

from repro.api import Session, SweepSpec, TrainConfig, ServeConfig, run_sweep
from repro.cluster import (
    CONNECT_PLACEHOLDER,
    ShardReport,
    WorkerPool,
    merge_shard_reports,
    worker_connect_command,
)
from repro.serving import ShardRouter  # noqa: F401  (re-exported for profiling)

from helpers import print_banner, write_bench_json

#: serving fleet size (full / quick).
WORKERS = 4
QUICK_WORKERS = 2

#: /predict requests per serving phase (full / quick).
REQUESTS = 160
QUICK_REQUESTS = 40

#: client threads driving each serving phase.
CLIENTS = 8

#: request shape: one ADPA forward over this many query nodes.
NODE_IDS = list(range(64))

#: full-mode floor for cluster/single-process throughput.
MIN_SPEEDUP = 2.0

SWEEP_SPEC = SweepSpec(models=("MLP", "GCN"), datasets=("texas", "cornell"))

SERVE_DATASET = "ogbn-arxiv"
SERVE_CONFIG = ServeConfig(
    max_batch_size=1, max_wait_ms=0.0, cache_logits=False, compile="eager"
)


def _quick_spec() -> SweepSpec:
    return SWEEP_SPEC.replace(config=SWEEP_SPEC.config.quick())


def _run_sharded_sweep(pool: WorkerPool, spec: SweepSpec) -> tuple:
    """Two pinned shards concurrently through ``pool``; (merged_json, seconds)."""
    payloads: list = [None, None]

    def run_shard(index: int) -> None:
        payloads[index] = pool.call(
            "run_shard",
            {"spec": spec.as_dict(), "shard_index": index, "shard_count": 2},
            worker=f"w{index}",
            timeout=600.0,
        )

    started = time.perf_counter()
    threads = [
        threading.Thread(target=run_shard, args=(index,)) for index in range(2)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    sharded_s = time.perf_counter() - started
    shards = [ShardReport.from_dict(payload) for payload in payloads]
    merged = merge_shard_reports(shards)
    return merged.to_json(indent=2), sharded_s


def build_sweep_profile(serial_json: str, serial_s: float) -> dict:
    """Serial sweep vs two worker shards; merge must be byte-identical."""
    spec = _quick_spec()
    with WorkerPool(2) as pool:
        merged_json, sharded_s = _run_sharded_sweep(pool, spec)
    return {
        "cells": len(spec.cells()),
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "sweep_speedup": serial_s / sharded_s if sharded_s else 0.0,
        "bit_identical": merged_json == serial_json,
    }


def _drive(submit, requests: int, clients: int) -> dict:
    """Fan ``requests`` calls over ``clients`` threads; count outcomes."""
    lock = threading.Lock()
    outcome = {"ok": 0, "dropped": 0}

    def worker(count: int) -> None:
        for _ in range(count):
            try:
                submit()
                with lock:
                    outcome["ok"] += 1
            except Exception:
                with lock:
                    outcome["dropped"] += 1

    shares = [requests // clients] * clients
    for index in range(requests % clients):
        shares[index] += 1
    threads = [
        threading.Thread(target=worker, args=(share,))
        for share in shares
        if share
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    outcome["elapsed_s"] = elapsed
    outcome["rps"] = outcome["ok"] / elapsed if elapsed else 0.0
    return outcome


def _train_artifact() -> str:
    """One small ADPA artifact all serving phases share."""
    scratch = tempfile.mkdtemp(prefix="bench-cluster-")
    handle = (
        Session(train=TrainConfig(epochs=2, patience=2))
        .load(SERVE_DATASET)
        .fit("ADPA", hidden=16, num_steps=4)
    )
    return str(handle.save(scratch + "/artifact"))


def build_serving_profile(quick: bool = False, artifact: str = "") -> dict:
    """Single-process router vs a worker fleet, with one induced crash."""
    workers = QUICK_WORKERS if quick else WORKERS
    requests = QUICK_REQUESTS if quick else REQUESTS

    if not artifact:
        artifact = _train_artifact()

    # Baseline: one in-process router, requests serialized by its engine.
    router = Session(serve=SERVE_CONFIG).serve(artifact)
    with router:
        baseline = _drive(
            lambda: router.predict(node_ids=NODE_IDS), requests, CLIENTS
        )

    # Fleet: N worker processes, each its own router (and its own GIL).
    # Mid-run one worker is SIGKILLed; retries must absorb the crash.
    init = [("load", {"artifacts": [artifact], "serve": asdict(SERVE_CONFIG)})]
    with WorkerPool(workers, init_ops=init) as pool:
        crashed = threading.Timer(0.25, lambda: pool.kill_worker("w0"))
        crashed.start()
        cluster = _drive(
            lambda: pool.call("predict", {"node_ids": NODE_IDS}, timeout=120.0),
            requests,
            CLIENTS,
        )
        crashed.cancel()
        stats = pool.stats()

    return {
        "quick": quick,
        "dataset": SERVE_DATASET,
        "workers": workers,
        "requests": requests,
        "clients": CLIENTS,
        "cpu_count": os.cpu_count() or 1,
        "baseline_rps": baseline["rps"],
        "baseline_elapsed_s": baseline["elapsed_s"],
        "baseline_dropped": baseline["dropped"],
        "cluster_rps": cluster["rps"],
        "cluster_elapsed_s": cluster["elapsed_s"],
        "cluster_ok": cluster["ok"],
        "cluster_dropped": cluster["dropped"],
        "serve_speedup": (
            cluster["rps"] / baseline["rps"] if baseline["rps"] else 0.0
        ),
        "crashes_induced": 1,
        "retries": stats.retries,
        "restarts": stats.restarts,
    }


def build_tcp_profile(quick: bool, artifact: str, serial_json: str) -> dict:
    """The pipe-mode guarantees replayed over a TCP-loopback fleet.

    Workers are real ``--connect`` subprocesses registering through the
    HMAC handshake on ``127.0.0.1:<ephemeral>``; the induced failure is a
    severed connection (``kill_worker`` closes the socket), recovered by
    the pool re-running the slot's spawn command.
    """
    workers = QUICK_WORKERS if quick else WORKERS
    requests = QUICK_REQUESTS if quick else REQUESTS
    secret = "bench-cluster-tcp-secret"
    secret_dir = tempfile.mkdtemp(prefix="bench-cluster-tcp-")
    secret_file = os.path.join(secret_dir, "secret")
    with open(secret_file, "w", encoding="utf-8") as handle:
        handle.write(secret + "\n")
    command = worker_connect_command(CONNECT_PLACEHOLDER, secret_file)

    # (a) the sharded sweep merges bit-identical to serial over TCP too.
    spec = _quick_spec()
    with WorkerPool(
        2,
        listen="127.0.0.1:0",
        secret=secret,
        spawn_commands=[command, command],
    ) as pool:
        merged_json, sharded_s = _run_sharded_sweep(pool, spec)
        sweep_transports = sorted(
            {str(entry["transport"]) for entry in pool.stats().workers.values()}
        )
    bit_identical = merged_json == serial_json

    # (b) zero dropped predicts through one induced remote disconnect.
    init = [("load", {"artifacts": [artifact], "serve": asdict(SERVE_CONFIG)})]
    with WorkerPool(
        workers,
        init_ops=init,
        listen="127.0.0.1:0",
        secret=secret,
        spawn_commands=[command] * workers,
    ) as pool:
        disconnected = threading.Timer(0.25, lambda: pool.kill_worker("w0"))
        disconnected.start()
        serving = _drive(
            lambda: pool.call("predict", {"node_ids": NODE_IDS}, timeout=120.0),
            requests,
            CLIENTS,
        )
        disconnected.cancel()
        stats = pool.stats()
        rejected = pool.listener.rejected if pool.listener is not None else 0

    return {
        "quick": quick,
        "listen": "127.0.0.1:0",
        "workers": workers,
        "requests": requests,
        "clients": CLIENTS,
        "sweep_transports": sweep_transports,
        "sweep_sharded_s": sharded_s,
        "sweep_bit_identical": bit_identical,
        "serving_rps": serving["rps"],
        "serving_elapsed_s": serving["elapsed_s"],
        "serving_ok": serving["ok"],
        "serving_dropped": serving["dropped"],
        "disconnects_induced": 1,
        "retries": stats.retries,
        "restarts": stats.restarts,
        "rejected_handshakes": rejected,
    }


def build_cluster_profile(quick: bool = False) -> dict:
    spec = _quick_spec()
    started = time.perf_counter()
    serial_json = run_sweep(spec).canonical().to_json(indent=2)
    serial_s = time.perf_counter() - started
    artifact = _train_artifact()
    profile = {
        "quick": quick,
        "sweep": build_sweep_profile(serial_json, serial_s),
    }
    profile["serving"] = build_serving_profile(quick, artifact)
    profile["tcp"] = build_tcp_profile(quick, artifact, serial_json)
    return profile


def check_cluster_profile(profile: dict) -> None:
    sweep = profile["sweep"]
    # The tentpole guarantee: sharded == serial, byte for byte.
    assert sweep["bit_identical"], sweep
    serving = profile["serving"]
    # Every request answered despite the induced crash: retried, not dropped.
    assert serving["cluster_ok"] == serving["requests"], serving
    assert serving["cluster_dropped"] == 0, serving
    assert serving["baseline_dropped"] == 0, serving
    assert serving["restarts"] >= 1, serving
    tcp = profile["tcp"]
    # The same two guarantees over the TCP transport: byte-identical merge,
    # zero drops through a severed connection plus a spawn-command respawn.
    assert tcp["sweep_bit_identical"], tcp
    assert tcp["sweep_transports"] == ["tcp"], tcp
    assert tcp["serving_ok"] == tcp["requests"], tcp
    assert tcp["serving_dropped"] == 0, tcp
    assert tcp["restarts"] >= 1, tcp
    if not profile["quick"] and serving["cpu_count"] >= 2:
        # Process fan-out must actually buy throughput.  The floor is only
        # meaningful with cores to scale onto: compute-bound work cannot
        # beat single-process on a one-CPU box, where the run still proves
        # correctness (zero drops through a crash) and records the ratio.
        assert serving["serve_speedup"] >= MIN_SPEEDUP, serving


def format_cluster_table(profile: dict) -> str:
    sweep = profile["sweep"]
    serving = profile["serving"]
    tcp = profile["tcp"]
    lines = [
        f"sweep: {sweep['cells']} cells  serial {sweep['serial_s']:.2f}s  "
        f"2 shards {sweep['sharded_s']:.2f}s  "
        f"speedup {sweep['sweep_speedup']:.2f}x  "
        f"merge {'bit-identical' if sweep['bit_identical'] else 'DIVERGED'}",
        f"serving: {serving['dataset']}, {serving['requests']} requests, "
        f"{serving['clients']} clients, 1 induced crash",
        f"{'configuration':<24s}{'req/s':>10s}{'elapsed':>10s}{'dropped':>10s}",
        f"{'single process':<24s}{serving['baseline_rps']:>10.1f}"
        f"{serving['baseline_elapsed_s']:>9.2f}s{serving['baseline_dropped']:>10d}",
        f"{str(serving['workers']) + ' workers (pipes)':<24s}{serving['cluster_rps']:>10.1f}"
        f"{serving['cluster_elapsed_s']:>9.2f}s{serving['cluster_dropped']:>10d}",
        f"{str(tcp['workers']) + ' workers (tcp)':<24s}{tcp['serving_rps']:>10.1f}"
        f"{tcp['serving_elapsed_s']:>9.2f}s{tcp['serving_dropped']:>10d}",
        f"speedup: {serving['serve_speedup']:.2f}x on {serving['cpu_count']} "
        f"cpu(s)   retries {serving['retries']}   restarts {serving['restarts']}",
        f"tcp: sweep merge "
        f"{'bit-identical' if tcp['sweep_bit_identical'] else 'DIVERGED'}  "
        f"1 induced disconnect  restarts {tcp['restarts']}  "
        f"rejected handshakes {tcp['rejected_handshakes']}",
    ]
    return "\n".join(lines)


@pytest.mark.benchmark(group="cluster")
def test_cluster_scaling(benchmark):
    profile = benchmark.pedantic(
        build_cluster_profile, kwargs={"quick": True}, rounds=1, iterations=1
    )
    print_banner("Cluster — sharded sweeps and multi-process serving")
    print(format_cluster_table(profile))
    path = write_bench_json("cluster", profile)
    print(f"wrote {path}")
    check_cluster_profile(profile)


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description="Cluster scaling benchmark")
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: 2 workers, fewer requests, no speedup floor",
    )
    cli_args = parser.parse_args()
    result = build_cluster_profile(quick=cli_args.quick)
    print(format_cluster_table(result))
    # Written in quick mode too (flagged via the payload's "quick" field):
    # the CI artifact is the point of the smoke run.
    path = write_bench_json("cluster", result)
    print(f"wrote {path}")
    check_cluster_profile(result)
