"""Fig. 2 — the two motivating observations (O1, O2).

O1: on CoraML the coarse undirected transformation + undirected GNNs beats
feeding the natural digraph to directed GNNs; on Chameleon the situation is
reversed.

O2: converting directed edges into undirected ones (edge-wise augmentation)
helps directed GNNs on CiteSeer but hurts them on Squirrel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.graph import to_undirected

from conftest import bench_seeds, bench_trainer
from helpers import print_banner, run_repeated_cell

UNDIRECTED_MODELS = ("GCN", "GPRGNN")
DIRECTED_MODELS = ("DiGCN", "DirGNN")


def _mean_accuracy(model_names, graph, seeds, trainer):
    return float(
        np.mean(
            [
                run_repeated_cell(name, graph, seeds, trainer).test_mean
                for name in model_names
            ]
        )
    )


def build_fig2():
    seeds, trainer = bench_seeds(), bench_trainer()
    results = {}

    # O1: undirected GNNs on U- vs directed GNNs on D-.
    for dataset_name in ("coraml", "chameleon"):
        graph = load_dataset(dataset_name, seed=0)
        results[dataset_name] = {
            "undirected_gnn_on_U": _mean_accuracy(
                UNDIRECTED_MODELS, to_undirected(graph), seeds, trainer
            ),
            "directed_gnn_on_D": _mean_accuracy(DIRECTED_MODELS, graph, seeds, trainer),
        }

    # O2: directed GNNs with vs without undirected edge augmentation.
    for dataset_name in ("citeseer", "squirrel"):
        graph = load_dataset(dataset_name, seed=0)
        results[dataset_name] = {
            "directed_gnn_on_D": _mean_accuracy(DIRECTED_MODELS, graph, seeds, trainer),
            "directed_gnn_on_U": _mean_accuracy(
                DIRECTED_MODELS, to_undirected(graph), seeds, trainer
            ),
        }
    return results


def print_fig2(results):
    print_banner("Fig. 2 — motivating observations O1 / O2")
    print("O1: which modeling wins depends on the dataset")
    for name in ("coraml", "chameleon"):
        row = results[name]
        print(
            f"  {name:<12s} undirected GNNs (U-): {100 * row['undirected_gnn_on_U']:.1f}   "
            f"directed GNNs (D-): {100 * row['directed_gnn_on_D']:.1f}"
        )
    print("O2: undirected augmentation helps or hurts directed GNNs depending on the dataset")
    for name in ("citeseer", "squirrel"):
        row = results[name]
        print(
            f"  {name:<12s} directed GNNs on D-: {100 * row['directed_gnn_on_D']:.1f}   "
            f"directed GNNs on U-: {100 * row['directed_gnn_on_U']:.1f}"
        )


def check_fig2_shape(results):
    # O1: CoraML favours undirected modeling, Chameleon favours directed modeling.
    assert results["coraml"]["undirected_gnn_on_U"] >= results["coraml"]["directed_gnn_on_D"] - 0.02
    assert results["chameleon"]["directed_gnn_on_D"] > results["chameleon"]["undirected_gnn_on_U"]
    # O2: undirected augmentation helps on CiteSeer, hurts on Squirrel.
    assert results["citeseer"]["directed_gnn_on_U"] >= results["citeseer"]["directed_gnn_on_D"] - 0.02
    assert results["squirrel"]["directed_gnn_on_D"] > results["squirrel"]["directed_gnn_on_U"]


@pytest.mark.benchmark(group="fig2")
def test_fig2_observations(benchmark):
    results = benchmark.pedantic(build_fig2, rounds=1, iterations=1)
    print_fig2(results)
    check_fig2_shape(results)
