"""Table VII — ablation of ADPA's two node-wise attention mechanisms.

Six variants are compared: removing the DP attention, the four DP-attention
families (original / gate / recursive / JK), and removing the hop attention.
The shape check asserts that removing either attention level hurts relative
to the full model on the heterophilous datasets.
"""

from __future__ import annotations

import pytest

from repro.api import Session, SweepSpec

from conftest import FULL_PROTOCOL, bench_experiment_config
from helpers import print_banner, write_bench_json

DATASETS = ("citeseer", "chameleon") if not FULL_PROTOCOL else (
    "coraml", "citeseer", "chameleon", "squirrel",
)
#: dataset -> whether its AMUD regime is directed (documentation only; the
#: sweep's ``view="amud"`` resolves the same regime from dataset metadata)
DIRECTED_VIEW = {"coraml": False, "citeseer": False, "chameleon": True, "squirrel": True}

VARIANTS = {
    "w/o DP attention": {"dp_attention": "none"},
    "ADPA-DP-Original": {"dp_attention": "original"},
    "ADPA-DP-Gate": {"dp_attention": "gate"},
    "ADPA-DP-Recursive": {"dp_attention": "recursive"},
    "ADPA-DP-JK": {"dp_attention": "jk"},
    "w/o Hop attention": {"hop_attention": "none"},
}


def build_table7():
    # One variant per ablated attention mechanism; the AMUD-regime view of
    # each dataset is resolved by the sweep itself (Fig. 1 workflow).
    spec = SweepSpec(
        models=("ADPA",),
        datasets=DATASETS,
        view="amud",
        config=bench_experiment_config(),
        variants={
            name: {"hidden": 64, "num_steps": 3, **overrides}
            for name, overrides in VARIANTS.items()
        },
    )
    report = Session().experiment(spec)
    rows = {
        variant_name: {
            dataset_name: report.cell("ADPA", dataset_name, variant_name).test_mean
            for dataset_name in DATASETS
        }
        for variant_name in VARIANTS
    }
    return rows, report


def print_table7(rows):
    print_banner("Table VII — ablation of the two node-wise attention mechanisms")
    print(f"{'variant':<20s}" + "".join(f"{name:>14s}" for name in DATASETS))
    for variant_name, per_dataset in rows.items():
        print(
            f"{variant_name:<20s}"
            + "".join(f"{100 * per_dataset[name]:>14.1f}" for name in DATASETS)
        )


def check_table7_shape(rows):
    full_model = rows["ADPA-DP-Original"]
    heterophilous = [name for name in DATASETS if DIRECTED_VIEW[name]]
    for dataset_name in heterophilous:
        # Removing DP attention on directional data must not beat the full model
        # by any meaningful margin (the paper reports a >2% average drop).
        assert rows["w/o DP attention"][dataset_name] <= full_model[dataset_name] + 0.03
        assert rows["w/o Hop attention"][dataset_name] <= full_model[dataset_name] + 0.03
    # Every attention family must remain a working model (sanity floor).
    for variant_name, per_dataset in rows.items():
        for dataset_name, accuracy in per_dataset.items():
            assert accuracy > 0.2, (variant_name, dataset_name)


@pytest.mark.benchmark(group="table7")
def test_table7_attention_ablation(benchmark):
    rows, report = benchmark.pedantic(build_table7, rounds=1, iterations=1)
    print_table7(rows)
    write_bench_json("table7", report.as_dict())
    check_table7_shape(rows)
