"""Content-hashing primitives: graph, model and cache-key fingerprints.

This is a leaf module — it imports nothing from the rest of the package —
so the foundational layers (:mod:`repro.graph`, :mod:`repro.models`) and
the serving layer can all depend on it without cycles.

A graph is fingerprinted by hashing its adjacency in *canonical* CSR form
(duplicates summed, indices sorted, explicit zeros dropped, int64 indices,
float64 data), the dense feature matrix, the labels and the split masks.
Canonicalisation means two representations of the same mathematical graph
— duplicate-entry COO, unsorted indices, stored zeros, int32 index arrays
— share one fingerprint, so they also share operator/logit/trace cache
entries (``preprocess()`` is a pure function of the mathematical graph,
not of its storage layout).

The digest is built from *per-row* sub-digests (one 16-byte blake2b per
adjacency row and per feature row) combined with whole-array digests for
labels and masks.  That structure is what makes live updates cheap: a
:class:`GraphFingerprint` carries the row digests, and after a
``GraphDelta`` only the touched rows are re-hashed before recombining —
bit-identical to a full rehash by construction, at a fraction of the cost.

Model fingerprints hash the registry name plus the constructor kwargs, so
a cache entry is only reused by a model that would preprocess identically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
import json
from typing import Dict, Iterable, Optional

import numpy as np
import scipy.sparse as sp

#: hex digest length; 16 bytes of blake2b is ample for cache keying.
DIGEST_SIZE = 16

#: split masks hashed into every graph fingerprint, in order.
MASK_FIELDS = ("train_mask", "val_mask", "test_mask")


def _hasher() -> "hashlib._Hash":
    return hashlib.blake2b(digest_size=DIGEST_SIZE)


def _update_with_array(hasher, tag: str, array: Optional[np.ndarray]) -> None:
    """Feed one (possibly absent) array into ``hasher``, self-delimiting."""
    if array is None:
        hasher.update(f"{tag}:none;".encode())
        return
    array = np.ascontiguousarray(array)
    header = f"{tag}:{array.dtype.str}:{array.shape};"
    hasher.update(header.encode())
    hasher.update(array.tobytes())


def _array_digest_bytes(tag: str, array: Optional[np.ndarray]) -> bytes:
    hasher = _hasher()
    _update_with_array(hasher, tag, array)
    return hasher.digest()


def array_digest(array: np.ndarray) -> str:
    """Hex digest of a single ndarray (dtype- and shape-aware)."""
    hasher = _hasher()
    _update_with_array(hasher, "array", array)
    return hasher.hexdigest()


def canonical_csr(adjacency: sp.spmatrix) -> sp.csr_matrix:
    """Canonical CSR form of a sparse matrix, on a copy.

    Duplicate entries are summed, indices sorted, explicit zeros removed,
    and the buffers normalised to int64 indices / float64 data, so every
    storage layout of the same mathematical matrix maps to identical
    bytes.  The input is never mutated.
    """
    matrix = sp.csr_matrix(adjacency, dtype=np.float64, copy=True)
    matrix.sum_duplicates()
    matrix.eliminate_zeros()
    matrix.sort_indices()
    return sp.csr_matrix(
        (
            matrix.data.astype(np.float64, copy=False),
            matrix.indices.astype(np.int64, copy=False),
            matrix.indptr.astype(np.int64, copy=False),
        ),
        shape=matrix.shape,
    )


def csr_row_digest(indices: np.ndarray, data: np.ndarray) -> bytes:
    """Digest of one canonical CSR row (its column indices + values)."""
    hasher = _hasher()
    hasher.update(np.ascontiguousarray(indices))
    hasher.update(np.ascontiguousarray(data))
    return hasher.digest()


def _csr_row_digests(matrix: sp.csr_matrix, rows: Optional[Iterable[int]] = None,
                     out: Optional[np.ndarray] = None) -> np.ndarray:
    """Per-row digests of a canonical CSR matrix.

    With ``rows``/``out``, only the given rows are rehashed into ``out``
    (the incremental path); otherwise all rows go into a fresh array.
    """
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    if rows is None:
        rows = range(matrix.shape[0])
    if out is None:
        out = np.empty(matrix.shape[0], dtype=f"S{DIGEST_SIZE}")
    for row in rows:
        start, end = indptr[row], indptr[row + 1]
        out[row] = csr_row_digest(indices[start:end], data[start:end])
    return out


def dense_row_digest(row: np.ndarray) -> bytes:
    """Digest of one dense (feature) row."""
    return hashlib.blake2b(
        np.ascontiguousarray(row), digest_size=DIGEST_SIZE
    ).digest()


def _dense_row_digests(matrix: np.ndarray, rows: Optional[Iterable[int]] = None,
                       out: Optional[np.ndarray] = None) -> np.ndarray:
    matrix = np.ascontiguousarray(matrix)
    if rows is None:
        rows = range(matrix.shape[0])
    if out is None:
        out = np.empty(matrix.shape[0], dtype=f"S{DIGEST_SIZE}")
    for row in rows:
        out[row] = dense_row_digest(matrix[row])
    return out


@dataclass
class GraphFingerprint:
    """Combinable fingerprint state of one graph.

    Holds per-row digests for the canonical adjacency and the feature
    matrix plus whole-array digests for labels and masks.  ``digest()``
    combines them into the graph fingerprint; after a delta, recomputing
    only the touched row digests and recombining is bit-identical to a
    full rehash because both paths hash exactly the same structure.
    """

    num_nodes: int
    adjacency_header: bytes
    adjacency_rows: np.ndarray  # (n,) of S16 digests
    feature_header: bytes
    feature_rows: np.ndarray  # (n,) of S16 digests
    label_digest: bytes
    mask_digests: Dict[str, bytes]

    def digest(self) -> str:
        hasher = _hasher()
        hasher.update(b"graph-v2;")
        hasher.update(self.adjacency_header)
        hasher.update(np.ascontiguousarray(self.adjacency_rows))
        hasher.update(self.feature_header)
        hasher.update(np.ascontiguousarray(self.feature_rows))
        hasher.update(self.label_digest)
        for name in MASK_FIELDS:
            hasher.update(self.mask_digests[name])
        return hasher.hexdigest()

    def copy(self) -> "GraphFingerprint":
        return GraphFingerprint(
            num_nodes=self.num_nodes,
            adjacency_header=self.adjacency_header,
            adjacency_rows=self.adjacency_rows.copy(),
            feature_header=self.feature_header,
            feature_rows=self.feature_rows.copy(),
            label_digest=self.label_digest,
            mask_digests=dict(self.mask_digests),
        )


def fingerprint_state(graph, adjacency: Optional[sp.csr_matrix] = None) -> GraphFingerprint:
    """Build the full :class:`GraphFingerprint` state of ``graph``.

    ``graph`` is duck-typed as a :class:`repro.graph.digraph.DirectedGraph`
    (adjacency + features + labels + masks).  Pass ``adjacency`` to reuse an
    already-canonicalised CSR (must equal ``canonical_csr(graph.adjacency)``).
    """
    if adjacency is None:
        adjacency = canonical_csr(graph.adjacency)
    features = np.ascontiguousarray(np.asarray(graph.features))
    n = adjacency.shape[0]
    return GraphFingerprint(
        num_nodes=n,
        adjacency_header=f"adjacency:{n}x{adjacency.shape[1]};".encode(),
        adjacency_rows=_csr_row_digests(adjacency),
        feature_header=f"features:{features.dtype.str}:{features.shape};".encode(),
        feature_rows=_dense_row_digests(features),
        label_digest=_array_digest_bytes("labels", graph.labels),
        mask_digests={
            name: _array_digest_bytes(name, getattr(graph, name))
            for name in MASK_FIELDS
        },
    )


def graph_fingerprint(graph) -> str:
    """Hex digest of everything a ``preprocess()`` call can observe.

    The adjacency is canonicalised first (see :func:`canonical_csr`), so
    representation-equivalent graphs — duplicate COO entries, unsorted or
    int32 indices, stored explicit zeros — share one fingerprint and hence
    one set of cache entries.
    """
    return fingerprint_state(graph).digest()


def model_fingerprint(model_name: str, model_kwargs: Optional[Dict] = None) -> str:
    """Hex digest of a model configuration (registry name + kwargs).

    Kwargs are serialised through canonical JSON so dict ordering cannot
    change the key; non-JSON values fall back to ``repr`` (stable for the
    scalar types the model zoo uses).
    """
    payload = json.dumps(
        {"name": model_name.lower(), "kwargs": model_kwargs or {}},
        sort_keys=True,
        default=repr,
    )
    hasher = _hasher()
    hasher.update(payload.encode())
    return hasher.hexdigest()


def state_fingerprint(state: Dict[str, np.ndarray]) -> str:
    """Hex digest of a model *state dict* (parameter and buffer values).

    Unlike :func:`model_fingerprint` — which identifies a model's
    configuration and is stable across retraining — this digest changes
    whenever any weight changes, so the serving layer can use it as a
    weights-version field in logit-cache keys: two artifacts of the same
    architecture trained to different weights never share a cache entry.
    """
    hasher = _hasher()
    for name in sorted(state):
        _update_with_array(hasher, name, np.asarray(state[name]))
    return hasher.hexdigest()


def preprocess_key(model, graph) -> str:
    """Cache key joining a model's signature with a graph's fingerprint."""
    return f"{model.signature()}/{graph.fingerprint()}"
