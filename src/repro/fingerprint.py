"""Content-hashing primitives: graph, model and cache-key fingerprints.

This is a leaf module — it imports nothing from the rest of the package —
so the foundational layers (:mod:`repro.graph`, :mod:`repro.models`) and
the serving layer can all depend on it without cycles.

A graph is fingerprinted by hashing the raw bytes of its CSR adjacency
(indptr / indices / data), the dense feature matrix, the labels and the
split masks, each tagged with its shape and dtype so that e.g. a ``(6, 4)``
float64 matrix can never collide with a ``(24,)`` one holding the same
bytes.  Model fingerprints hash the registry name plus the constructor
kwargs, so a cache entry is only reused by a model that would preprocess
identically.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

import numpy as np

#: hex digest length; 16 bytes of blake2b is ample for cache keying.
DIGEST_SIZE = 16


def _hasher() -> "hashlib._Hash":
    return hashlib.blake2b(digest_size=DIGEST_SIZE)


def _update_with_array(hasher, tag: str, array: Optional[np.ndarray]) -> None:
    """Feed one (possibly absent) array into ``hasher``, self-delimiting."""
    if array is None:
        hasher.update(f"{tag}:none;".encode())
        return
    array = np.ascontiguousarray(array)
    header = f"{tag}:{array.dtype.str}:{array.shape};"
    hasher.update(header.encode())
    hasher.update(array.tobytes())


def array_digest(array: np.ndarray) -> str:
    """Hex digest of a single ndarray (dtype- and shape-aware)."""
    hasher = _hasher()
    _update_with_array(hasher, "array", array)
    return hasher.hexdigest()


def graph_fingerprint(graph) -> str:
    """Hex digest of everything a ``preprocess()`` call can observe.

    ``graph`` is duck-typed as a :class:`repro.graph.digraph.DirectedGraph`
    (adjacency + features + labels + masks).
    """
    adjacency = graph.adjacency.tocsr()
    hasher = _hasher()
    _update_with_array(hasher, "indptr", adjacency.indptr)
    _update_with_array(hasher, "indices", adjacency.indices)
    _update_with_array(hasher, "data", adjacency.data)
    _update_with_array(hasher, "features", graph.features)
    _update_with_array(hasher, "labels", graph.labels)
    _update_with_array(hasher, "train_mask", graph.train_mask)
    _update_with_array(hasher, "val_mask", graph.val_mask)
    _update_with_array(hasher, "test_mask", graph.test_mask)
    return hasher.hexdigest()


def model_fingerprint(model_name: str, model_kwargs: Optional[Dict] = None) -> str:
    """Hex digest of a model configuration (registry name + kwargs).

    Kwargs are serialised through canonical JSON so dict ordering cannot
    change the key; non-JSON values fall back to ``repr`` (stable for the
    scalar types the model zoo uses).
    """
    payload = json.dumps(
        {"name": model_name.lower(), "kwargs": model_kwargs or {}},
        sort_keys=True,
        default=repr,
    )
    hasher = _hasher()
    hasher.update(payload.encode())
    return hasher.hexdigest()


def state_fingerprint(state: Dict[str, np.ndarray]) -> str:
    """Hex digest of a model *state dict* (parameter and buffer values).

    Unlike :func:`model_fingerprint` — which identifies a model's
    configuration and is stable across retraining — this digest changes
    whenever any weight changes, so the serving layer can use it as a
    weights-version field in logit-cache keys: two artifacts of the same
    architecture trained to different weights never share a cache entry.
    """
    hasher = _hasher()
    for name in sorted(state):
        _update_with_array(hasher, name, np.asarray(state[name]))
    return hasher.hexdigest()


def preprocess_key(model, graph) -> str:
    """Cache key joining a model's signature with a graph's fingerprint."""
    return f"{model.signature()}/{graph.fingerprint()}"
