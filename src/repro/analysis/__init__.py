"""Analysis utilities: runtime profiling and attention inspection."""

from .attention import (
    dp_attention_distribution,
    effective_receptive_depth,
    hop_attention_distribution,
    summarize_attention,
)
from .efficiency import (
    ModelProfile,
    efficiency_report,
    format_efficiency_table,
    profile_model,
)

__all__ = [
    "ModelProfile",
    "profile_model",
    "efficiency_report",
    "format_efficiency_table",
    "hop_attention_distribution",
    "dp_attention_distribution",
    "effective_receptive_depth",
    "summarize_attention",
]
