"""Runtime breakdown utilities (paper Sec. IV-D complexity analysis).

ADPA's design argument is that all graph-dependent work happens once, before
training (``O(kKmf)`` sparse products), so the per-epoch cost is that of an
MLP.  :func:`profile_model` measures exactly that split — preprocessing
time, per-epoch training time and parameter count — for any registered
model, and :func:`efficiency_report` tabulates it across a model list so the
decoupled-vs-coupled trade-off can be inspected empirically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..graph.digraph import DirectedGraph
from ..models.registry import create_model, get_spec
from ..nn import Adam
from ..nn import functional as F


@dataclass
class ModelProfile:
    """Timing and size profile of one model on one graph."""

    model: str
    dataset: str
    preprocess_seconds: float
    seconds_per_epoch: float
    num_parameters: int

    def as_row(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "dataset": self.dataset,
            "preprocess_s": round(self.preprocess_seconds, 4),
            "epoch_s": round(self.seconds_per_epoch, 4),
            "parameters": self.num_parameters,
        }


def profile_model(
    model_name: str,
    graph: DirectedGraph,
    num_epochs: int = 5,
    model_kwargs: Optional[Dict] = None,
    seed: int = 0,
) -> ModelProfile:
    """Measure preprocessing time and per-epoch cost of one model."""
    if num_epochs < 1:
        raise ValueError(f"num_epochs must be >= 1, got {num_epochs}")
    kwargs = dict(model_kwargs or {})
    kwargs.setdefault("seed", seed)
    model = create_model(model_name, graph, **kwargs)

    start = time.perf_counter()
    cache = model.preprocess(graph)
    preprocess_seconds = time.perf_counter() - start

    optimizer = Adam(model.parameters(), lr=0.01)
    labels = graph.labels
    mask = graph.train_mask if graph.train_mask is not None else np.ones(graph.num_nodes, dtype=bool)

    model.train()
    start = time.perf_counter()
    for _ in range(num_epochs):
        optimizer.zero_grad()
        loss = F.cross_entropy(model.forward(cache), labels, mask)
        loss.backward()
        optimizer.step()
    seconds_per_epoch = (time.perf_counter() - start) / num_epochs

    return ModelProfile(
        model=get_spec(model_name).name,
        dataset=graph.name,
        preprocess_seconds=preprocess_seconds,
        seconds_per_epoch=seconds_per_epoch,
        num_parameters=model.num_parameters(),
    )


def efficiency_report(
    model_names: Iterable[str],
    graph: DirectedGraph,
    num_epochs: int = 5,
    model_kwargs: Optional[Dict[str, Dict]] = None,
) -> List[ModelProfile]:
    """Profile several models on the same graph."""
    model_kwargs = model_kwargs or {}
    return [
        profile_model(name, graph, num_epochs=num_epochs, model_kwargs=model_kwargs.get(name))
        for name in model_names
    ]


def format_efficiency_table(profiles: List[ModelProfile]) -> str:
    """Render profiles as a fixed-width table."""
    lines = [f"{'model':<12s}{'preprocess s':>14s}{'s / epoch':>12s}{'parameters':>12s}"]
    for profile in profiles:
        lines.append(
            f"{profile.model:<12s}{profile.preprocess_seconds:>14.4f}"
            f"{profile.seconds_per_epoch:>12.4f}{profile.num_parameters:>12d}"
        )
    return "\n".join(lines)
