"""Post-hoc inspection of ADPA's learned attention (paper Sec. IV-C analysis).

The two attention mechanisms are the interpretable part of ADPA: the DP
attention reveals which directed patterns each node relies on, the hop
attention reveals each node's effective receptive-field depth.  These
helpers extract those distributions from a trained model so they can be
summarised per class or per dataset, mirroring the qualitative analysis in
the paper's ablation discussion.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..adpa.model import ADPA
from ..graph.digraph import DirectedGraph
from ..nn import concatenate


def hop_attention_distribution(
    model: ADPA, cache: Dict[str, object], per_class: bool = False, labels: Optional[np.ndarray] = None
) -> np.ndarray:
    """Average hop-attention weights, overall or per class.

    Returns an array of shape ``(K,)`` or ``(num_classes, K)``.
    """
    weights = model.hop_weights(cache)  # (n, K)
    if not per_class:
        return weights.mean(axis=0)
    if labels is None:
        raise ValueError("per_class=True requires the label vector")
    labels = np.asarray(labels)
    return np.stack(
        [weights[labels == cls].mean(axis=0) for cls in range(int(labels.max()) + 1)]
    )


def dp_attention_distribution(model: ADPA, cache: Dict[str, object]) -> Dict[str, float]:
    """Average per-operator DP-attention weight at the first propagation step.

    Only meaningful for the softmax-based families (original / gate /
    recursive); for ``jk`` and ``none`` a uniform distribution is returned
    since those variants have no explicit per-operator weights.
    """
    operator_names = ["initial"] + list(cache["operator_names"])
    if model.dp_attention is None or model.dp_attention.kind in ("jk", "none"):
        uniform = 1.0 / len(operator_names)
        return {name: uniform for name in operator_names}

    blocks = cache["steps"][0]
    attention = model.dp_attention
    projected = [projection(block) for projection, block in zip(attention.projections, blocks)]
    if attention.kind == "original":
        scores = [attention.score(block.tanh()) for block in projected]
    elif attention.kind == "gate":
        scores = [attention.gate_transform(block).tanh() @ attention.context for block in projected]
    else:  # recursive
        aggregate = projected[0]
        scores = [attention.score(concatenate([projected[0], projected[0]], axis=1))]
        for block in projected[1:]:
            scores.append(attention.score(concatenate([block, aggregate], axis=1)))
            aggregate = aggregate + block
    weights = concatenate(scores, axis=1).leaky_relu(0.2).softmax(axis=1).numpy()
    averaged = weights.mean(axis=0)
    return {name: float(value) for name, value in zip(operator_names, averaged)}


def effective_receptive_depth(model: ADPA, cache: Dict[str, object]) -> np.ndarray:
    """Per-node expected propagation depth under the hop-attention weights."""
    weights = model.hop_weights(cache)  # (n, K)
    depths = np.arange(1, weights.shape[1] + 1)
    return weights @ depths


def summarize_attention(model: ADPA, graph: DirectedGraph, cache: Dict[str, object]) -> Dict[str, object]:
    """One-call summary used by the analysis example and tests."""
    return {
        "hop_distribution": hop_attention_distribution(model, cache),
        "hop_distribution_per_class": hop_attention_distribution(
            model, cache, per_class=True, labels=graph.labels
        ),
        "dp_distribution": dp_attention_distribution(model, cache),
        "mean_receptive_depth": float(effective_receptive_depth(model, cache).mean()),
    }
