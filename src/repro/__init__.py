"""repro — reproduction of "Breaking the Entanglement of Homophily and
Heterophily in Semi-supervised Node Classification" (AMUD + ADPA, ICDE 2024).

Public API highlights
---------------------
* :mod:`repro.graph` — directed graph container, DP operators, generators.
* :mod:`repro.datasets` — calibrated synthetic stand-ins for the 16 benchmarks.
* :mod:`repro.amud` — the AMUD guidance score and modeling decision.
* :mod:`repro.adpa` — the ADPA model (DP propagation + hierarchical attention).
* :mod:`repro.models` — the baseline GNN zoo (undirected & directed).
* :mod:`repro.training` — trainer, repeated experiments, sparsity sweeps.
* :class:`repro.AmudPipeline` — the end-to-end Fig. 1 workflow.
"""

from . import adpa, amud, analysis, datasets, graph, metrics, models, nn, training
from .adpa import ADPA
from .amud import AmudDecision, amud_decide, amud_score, apply_amud
from .datasets import load_dataset
from .graph import DirectedGraph
from .pipeline import AmudPipeline, PipelineResult
from .training import Trainer

__version__ = "1.0.0"

__all__ = [
    "nn",
    "analysis",
    "graph",
    "datasets",
    "metrics",
    "amud",
    "adpa",
    "models",
    "training",
    "DirectedGraph",
    "load_dataset",
    "amud_score",
    "amud_decide",
    "apply_amud",
    "AmudDecision",
    "ADPA",
    "Trainer",
    "AmudPipeline",
    "PipelineResult",
    "__version__",
]
