"""repro — reproduction of "Breaking the Entanglement of Homophily and
Heterophily in Semi-supervised Node Classification" (AMUD + ADPA, ICDE 2024).

Public API highlights
---------------------
* :mod:`repro.graph` — directed graph container, DP operators, generators.
* :mod:`repro.datasets` — calibrated synthetic stand-ins for the 16 benchmarks.
* :mod:`repro.amud` — the AMUD guidance score and modeling decision.
* :mod:`repro.adpa` — the ADPA model (DP propagation + hierarchical attention).
* :mod:`repro.models` — the baseline GNN zoo (undirected & directed).
* :mod:`repro.training` — trainer, repeated experiments, sparsity sweeps.
* :mod:`repro.api` — **the** public facade: :class:`repro.api.Session`
  with typed handles and frozen configs (load → amud → fit → serve).
* :mod:`repro.serving` — artifacts, caches, inference engine, shard router.

The deprecated ``AmudPipeline`` predecessor has been removed; importing
``repro.pipeline`` (or ``repro.AmudPipeline``) raises with a pointer to
:class:`repro.api.Session`, which reads its old artifacts unchanged.
"""

from . import adpa, amud, analysis, api, datasets, graph, metrics, models, nn, training
from .adpa import ADPA
from .amud import AmudDecision, amud_decide, amud_score, apply_amud
from .api import AmudConfig, GraphHandle, ModelHandle, ServeConfig, Session, TrainConfig
from .datasets import load_dataset
from .graph import DirectedGraph
from .training import Trainer


def __getattr__(name: str):
    if name in ("AmudPipeline", "PipelineResult"):
        # A loud, import-time pointer for call sites that predate the
        # repro.api facade; repro.pipeline raises the full message.
        raise ImportError(
            f"repro.{name} has been removed; use repro.api.Session instead "
            "(Session().load(name).amud().fit() / handle.save / Session().restore)"
        )
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__version__ = "1.1.0"

__all__ = [
    "nn",
    "analysis",
    "api",
    "graph",
    "datasets",
    "metrics",
    "amud",
    "adpa",
    "models",
    "training",
    "DirectedGraph",
    "load_dataset",
    "amud_score",
    "amud_decide",
    "apply_amud",
    "AmudDecision",
    "ADPA",
    "Trainer",
    "Session",
    "GraphHandle",
    "ModelHandle",
    "TrainConfig",
    "AmudConfig",
    "ServeConfig",
    "__version__",
]
