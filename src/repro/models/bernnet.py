"""BernNet (He et al., 2021) — Bernstein-polynomial spectral filter.

The filter response over the normalized-Laplacian spectrum ``[0, 2]`` is a
degree-K Bernstein polynomial with non-negative learnable coefficients θ_k:

``Z = Σ_k θ_k (1 / 2^K) C(K, k) (2I - L)^{K-k} L^k · MLP(X)``

Non-negativity of θ (enforced with ReLU) guarantees a valid filter, and the
basis can express low-pass, high-pass and band-pass shapes, which is why
BernNet works under both homophily and heterophily.
"""

from __future__ import annotations

from math import comb
from typing import Dict, List

import numpy as np
import scipy.sparse as sp

from ..graph.digraph import DirectedGraph
from ..graph.operators import normalized_laplacian
from ..graph.transforms import to_undirected
from ..nn import MLP, Parameter, Tensor, sparse_matmul
from .base import NodeClassifier


class BernNet(NodeClassifier):
    """Spectral GNN with a learnable Bernstein-basis filter."""

    directed = False

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        poly_order: int = 4,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if poly_order < 1:
            raise ValueError(f"poly_order must be >= 1, got {poly_order}")
        rng = np.random.default_rng(seed)
        self.poly_order = poly_order
        self.mlp = MLP(num_features, hidden, num_classes, num_layers=2, dropout=dropout, rng=rng)
        self.theta = Parameter(np.ones(poly_order + 1))

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        laplacian = normalized_laplacian(to_undirected(graph).adjacency)
        n = graph.num_nodes
        identity = sp.identity(n, format="csr")
        return {
            "x": Tensor(graph.features),
            "laplacian": laplacian,
            "two_minus_laplacian": (2.0 * identity - laplacian).tocsr(),
        }

    def forward(self, cache: Dict[str, object]) -> Tensor:
        laplacian = cache["laplacian"]
        complement = cache["two_minus_laplacian"]
        hidden = self.mlp(cache["x"])
        # Precompute L^k h iteratively, then apply (2I - L)^(K-k).
        order = self.poly_order
        theta = self.theta.relu()
        powers: List[Tensor] = [hidden]
        for _ in range(order):
            powers.append(sparse_matmul(laplacian, powers[-1]))
        output = None
        for k in range(order + 1):
            term = powers[k]
            for _ in range(order - k):
                term = sparse_matmul(complement, term)
            coefficient = comb(order, k) / (2.0 ** order)
            term = term * (theta[k : k + 1] * coefficient)
            output = term if output is None else output + term
        return output
