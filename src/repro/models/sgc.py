"""SGC (Wu et al., 2019) — simplified graph convolution.

The K-step symmetric propagation is collapsed into preprocessing
(``X' = ÃᴷX``) and only a linear classifier is trained.  SGC is both a
baseline in Tables III/IV and the ancestor of ADPA's decoupled design.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.operators import symmetric_normalized_adjacency
from ..graph.transforms import to_undirected
from ..nn import Dropout, Linear, Tensor
from .base import NodeClassifier


class SGC(NodeClassifier):
    """Simplified graph convolution: pre-propagation + logistic regression."""

    directed = False

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        num_steps: int = 2,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if num_steps < 0:
            raise ValueError(f"num_steps must be >= 0, got {num_steps}")
        rng = np.random.default_rng(seed)
        self.num_steps = num_steps
        self.linear = Linear(num_features, num_classes, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        adjacency = symmetric_normalized_adjacency(to_undirected(graph).adjacency)
        propagated = graph.features
        for _ in range(self.num_steps):
            propagated = adjacency @ propagated
        return {"x": Tensor(propagated)}

    def forward(self, cache: Dict[str, object]) -> Tensor:
        return self.linear(self.dropout(cache["x"]))
