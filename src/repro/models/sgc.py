"""SGC (Wu et al., 2019) — simplified graph convolution.

The K-step symmetric propagation is collapsed into preprocessing
(``X' = ÃᴷX``) and only a linear classifier is trained.  SGC is both a
baseline in Tables III/IV and the ancestor of ADPA's decoupled design.
"""

from __future__ import annotations

from typing import Dict

import numpy as np
import scipy.sparse as sp

from ..graph.digraph import DirectedGraph
from ..graph.operators import _safe_inverse_power, add_self_loops, symmetric_normalized_adjacency
from ..graph.transforms import to_undirected
from ..nn import Dropout, Linear, Tensor
from .base import NodeClassifier

#: Above this many edited edge pairs a delta is no longer "small"; the
#: pair-by-pair support patch would crawl, so fall back to a full
#: re-preprocess instead.
_MAX_PATCH_PAIRS = 4096

#: Cache keys update_preprocess() needs; entries from older spills that
#: lack them fall back to a full re-preprocess.
_DELTA_KEYS = ("operator", "steps", "support", "degrees", "dinv_sqrt")


class SGC(NodeClassifier):
    """Simplified graph convolution: pre-propagation + logistic regression."""

    directed = False

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        num_steps: int = 2,
        dropout: float = 0.0,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if num_steps < 0:
            raise ValueError(f"num_steps must be >= 0, got {num_steps}")
        rng = np.random.default_rng(seed)
        self.num_steps = num_steps
        self.linear = Linear(num_features, num_classes, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        symmetric = to_undirected(graph).adjacency
        adjacency = symmetric_normalized_adjacency(symmetric)
        # ``support`` is the self-looped binary symmetrisation Ã is built
        # from: entry (i, j) of Ã is (d_i^-1/2 * s_ij) * d_j^-1/2, which
        # is what lets update_preprocess() re-derive only dirty rows.
        support = add_self_loops(symmetric)
        degrees = np.asarray(support.sum(axis=1)).ravel()
        propagated = graph.features
        steps = []
        for _ in range(self.num_steps):
            propagated = adjacency @ propagated
            steps.append(propagated)
        # ``operator``/``steps``/``support`` are what update_preprocess()
        # needs to patch only the touched rows after a live GraphDelta;
        # forward() reads only ``x``.
        return {
            "x": Tensor(propagated),
            "operator": adjacency,
            "steps": steps,
            "support": support,
            "degrees": degrees,
            "dinv_sqrt": _safe_inverse_power(degrees, 0.5),
        }

    def update_preprocess(self, old_graph, new_graph, delta, cache):
        """Patch the K-step propagation for only the rows a delta touches.

        Bit-identical to ``preprocess(new_graph)``: support degrees are
        small integers (exact under any summation order), each operator
        entry is the same three-factor product ``(d_i^-1/2 * s_ij) *
        d_j^-1/2`` scipy's diagonal products evaluate, and affected dense
        rows are recomputed with the same ``csr[rows] @ dense`` kernel the
        full product uses (identical per-row accumulation order).  Every
        row outside the dirty frontier — edited endpoints, neighbours of
        degree-changed nodes, and the K-hop expansion of changed rows —
        is copied from the old result untouched.
        """
        if cache is None or any(key not in cache for key in _DELTA_KEYS):
            return None
        operator = cache["operator"]
        support = cache["support"]
        degrees = cache["degrees"]
        dinv_sqrt = cache["dinv_sqrt"]
        dirty = np.empty(0, dtype=np.int64)
        if delta.touches_topology():
            edits = _support_edits(support, new_graph, delta)
            if edits is None:
                return None
            if edits:
                support = _replace_rows(support, edits)
                edited = np.fromiter(sorted(edits), count=len(edits), dtype=np.int64)
                degrees = degrees.copy()
                for row in edited:
                    start, end = support.indptr[row], support.indptr[row + 1]
                    degrees[row] = np.add.reduce(support.data[start:end])
                deg_changed = edited[degrees[edited] != cache["degrees"][edited]]
                dinv_sqrt = dinv_sqrt.copy()
                dinv_sqrt[deg_changed] = _safe_inverse_power(degrees[deg_changed], 0.5)
                # A row of Ã changes iff its support row was edited or it
                # contains a degree-changed column; Ã is symmetric, so
                # "rows containing column u" are exactly u's neighbours.
                dirty = np.unique(
                    np.concatenate([edited, _neighbours(support, deg_changed)])
                )
                operator = _replace_rows(
                    operator,
                    {
                        row: _operator_row(support, dinv_sqrt, row)
                        for row in dirty
                    },
                )

        changed = delta.feature_rows()
        propagated = new_graph.features
        steps = []
        for old_step in cache["steps"]:
            if dirty.size == 0 and changed.size == 0:
                steps.append(old_step)
                propagated = old_step
                continue
            affected = np.unique(np.concatenate([dirty, _neighbours(operator, changed)]))
            new_step = old_step.copy()
            if affected.size:
                new_step[affected] = operator[affected] @ propagated
            steps.append(new_step)
            propagated = new_step
            changed = affected
        return {
            "x": Tensor(propagated),
            "operator": operator,
            "steps": steps,
            "support": support,
            "degrees": degrees,
            "dinv_sqrt": dinv_sqrt,
        }

    def forward(self, cache: Dict[str, object]) -> Tensor:
        return self.linear(self.dropout(cache["x"]))


def _neighbours(operator, rows: np.ndarray) -> np.ndarray:
    """Columns stored in the given rows of a (symmetric) CSR operator."""
    if rows.size == 0:
        return np.empty(0, dtype=np.int64)
    csr = operator.tocsr()
    chunks = [
        csr.indices[csr.indptr[row] : csr.indptr[row + 1]] for row in rows
    ]
    if not chunks:
        return np.empty(0, dtype=np.int64)
    return np.unique(np.concatenate(chunks)).astype(np.int64, copy=False)


def _row_contains(matrix: sp.csr_matrix, row: int, col: int) -> bool:
    start, end = matrix.indptr[row], matrix.indptr[row + 1]
    position = np.searchsorted(matrix.indices[start:end], col)
    return bool(position < end - start and matrix.indices[start + position] == col)


def _support_edits(support, new_graph, delta):
    """Per-row column edits turning the old support into the new one.

    Returns ``{row: {col: value-or-None}}`` (``None`` drops the entry),
    covering only the entries that actually change, or ``None`` when the
    delta is too large for pairwise patching.
    """
    edges = [
        array for array in (delta.add_edges, delta.remove_edges) if array is not None
    ]
    pairs = {
        (min(int(u), int(v)), max(int(u), int(v)))
        for u, v in (np.concatenate(edges) if edges else np.empty((0, 2), dtype=np.int64))
    }
    if len(pairs) > _MAX_PATCH_PAIRS:
        return None
    adjacency = new_graph.adjacency.tocsr()
    if not adjacency.has_sorted_indices:
        adjacency = adjacency.sorted_indices()
    edits: Dict[int, Dict[int, object]] = {}
    for u, v in pairs:
        present = _row_contains(adjacency, u, v) or _row_contains(adjacency, v, u)
        if u == v:
            # The diagonal always keeps the identity's 1.0; a surviving
            # self-edge stacks on top of it (A_sym + I puts 2.0 there).
            value = 2.0 if present else 1.0
            if support[u, u] != value:
                edits.setdefault(u, {})[u] = value
        elif present != _row_contains(support, u, v):
            edits.setdefault(u, {})[v] = 1.0 if present else None
            edits.setdefault(v, {})[u] = 1.0 if present else None
    return edits


def _operator_row(support, dinv_sqrt, row: int):
    """One bit-exact row of ``D^-1/2 (A_sym + I) D^-1/2``."""
    start, end = support.indptr[row], support.indptr[row + 1]
    cols = support.indices[start:end]
    return cols, (dinv_sqrt[row] * support.data[start:end]) * dinv_sqrt[cols]


def _replace_rows(matrix: sp.csr_matrix, edits) -> sp.csr_matrix:
    """New CSR with the given rows replaced, all other rows shared bytes.

    ``edits`` maps a row either to ``(cols, values)`` replacing the row
    outright, or to a ``{col: value-or-None}`` patch merged into it.
    """
    indptr, indices, data = matrix.indptr, matrix.indices, matrix.data
    index_chunks, data_chunks, lengths = [], [], np.diff(indptr).astype(np.int64)
    cursor = 0
    for row in sorted(edits):
        start, end = int(indptr[row]), int(indptr[row + 1])
        edit = edits[row]
        if isinstance(edit, dict):
            cols = indices[start:end]
            vals = data[start:end].copy()
            keep = np.ones(cols.size, dtype=bool)
            added_cols, added_vals = [], []
            for col, value in edit.items():
                position = np.searchsorted(cols, col)
                hit = position < cols.size and cols[position] == col
                if value is None:
                    if hit:
                        keep[position] = False
                elif hit:
                    vals[position] = value
                else:
                    added_cols.append(col)
                    added_vals.append(value)
            new_cols = cols[keep]
            new_vals = vals[keep]
            if added_cols:
                new_cols = np.concatenate([new_cols, np.asarray(added_cols, dtype=indices.dtype)])
                new_vals = np.concatenate([new_vals, np.asarray(added_vals, dtype=data.dtype)])
                order = np.argsort(new_cols, kind="stable")
                new_cols, new_vals = new_cols[order], new_vals[order]
        else:
            new_cols = np.asarray(edit[0], dtype=indices.dtype)
            new_vals = np.asarray(edit[1], dtype=data.dtype)
        index_chunks += [indices[cursor:start], new_cols]
        data_chunks += [data[cursor:start], new_vals]
        lengths[row] = new_cols.size
        cursor = end
    index_chunks.append(indices[cursor:])
    data_chunks.append(data[cursor:])
    new_indptr = np.zeros(matrix.shape[0] + 1, dtype=indptr.dtype)
    np.cumsum(lengths, out=new_indptr[1:])
    return sp.csr_matrix(
        (np.concatenate(data_chunks), np.concatenate(index_chunks), new_indptr),
        shape=matrix.shape,
    )
