"""Common contract for every node-classification model in the reproduction.

Each model is a :class:`repro.nn.Module` with two extra responsibilities:

``preprocess(graph)``
    Compute everything that does not depend on trainable parameters —
    normalised adjacencies, pre-propagated features, DP operator caches —
    and return it as a dict.  The trainer calls this exactly once per
    (model, graph) pair, which is what makes the decoupled models
    (SGC, ADPA, GPR-GNN, …) cheap: their propagation lives here.

``forward(cache)``
    Map the cached inputs to ``(n, num_classes)`` logits.  Called every
    epoch under autograd.

The :class:`repro.training.Trainer` drives fit/early-stopping/evaluation on
top of this contract, so model files stay focused on the architecture.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

import numpy as np

from ..fingerprint import model_fingerprint, preprocess_key
from ..graph.digraph import DirectedGraph
from ..nn import Module, Tensor


#: process-unique identities for models that bypass the registry.
_SIGNATURE_TOKENS = itertools.count()


class NodeClassifier(Module):
    """Base class for semi-supervised node classifiers.

    Sub-classes must set ``self.num_features`` / ``self.num_classes`` (the
    constructor does it for them) and implement :meth:`preprocess` and
    :meth:`forward`.
    """

    #: whether the model consumes directed adjacencies natively; undirected
    #: models symmetrise their input inside ``preprocess``.
    directed: bool = False

    #: set on instances restored from a serving artifact: lazily-built
    #: modules must not be re-created with a different shape once trained
    #: weights have been loaded (see :class:`repro.adpa.model.ADPA`).
    architecture_frozen: bool = False

    def __init__(self, num_features: int, num_classes: int) -> None:
        super().__init__()
        if num_features < 1 or num_classes < 2:
            raise ValueError(
                f"invalid dimensions: num_features={num_features}, num_classes={num_classes}"
            )
        self.num_features = num_features
        self.num_classes = num_classes

    # ------------------------------------------------------------------ #
    # Contract
    # ------------------------------------------------------------------ #
    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        """Build the training-independent cache for ``graph``.

        Serving contract: the returned cache must be a pure function of the
        model configuration and the graph *content* (adjacency, features,
        labels, splits) — no randomness, no dependence on parameter values —
        so that :class:`repro.serving.cache.OperatorCache` can key it by
        ``(signature, graph fingerprint)`` and share it across reloads of
        the same model.  Models that build modules lazily inside
        ``preprocess`` (e.g. ADPA) must make the construction deterministic
        in shape, because restored weights are loaded *after* one preprocess
        call.
        """
        raise NotImplementedError

    def forward(self, cache: Dict[str, object]) -> Tensor:
        """Compute class logits from a cache built by :meth:`preprocess`."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Preprocess-cache contract
    # ------------------------------------------------------------------ #
    def signature(self) -> str:
        """Stable identity of this model's *preprocessing configuration*.

        Two models with equal signatures must produce identical
        ``preprocess`` output on identical graphs.  Models constructed via
        :func:`repro.models.registry.create_model` carry their registry name
        and constructor kwargs and get a content-addressed signature;
        hand-constructed models fall back to a per-instance identity, which
        is always safe (never shared, never stale).
        """
        name = getattr(self, "_registry_name", None)
        if name is None:
            # A process-unique token, not id(): addresses are recycled after
            # GC, and a recycled id could silently alias a stale cache entry.
            token = getattr(self, "_signature_token", None)
            if token is None:
                token = next(_SIGNATURE_TOKENS)
                self._signature_token = token
            return f"{type(self).__name__}#{token}"
        kwargs = getattr(self, "_init_kwargs", {})
        return f"{name}:{model_fingerprint(name, kwargs)}"

    def update_preprocess(self, old_graph, new_graph, delta, cache):
        """Incrementally rebuild a preprocess cache after a live graph delta.

        ``cache`` is this model's preprocess output for ``old_graph`` and
        ``new_graph == old_graph.apply_delta(delta)``.  A model that can
        patch the cache for the touched rows returns the new cache — which
        MUST be bit-identical to ``preprocess(new_graph)``, the serving
        layer validates this in tests — and returns ``None`` when it
        cannot (callers then fall back to a full re-preprocess).  The
        default is ``None``: models with globally-coupled preprocessing
        (e.g. ADPA's correlation-guided operator selection) take the
        fallback, which is always correct.
        """
        return None

    def bind_cache(self, cache: Dict[str, object]) -> None:
        """Adopt a preprocess cache computed elsewhere.

        Called when this instance is handed a cache it did not compute — a
        shared :class:`repro.serving.cache.OperatorCache` hit or an on-disk
        spill reload.  Models that build modules lazily inside
        ``preprocess`` (e.g. ADPA) override this to rebuild the same
        architecture from the cache content, so stored weights can be
        loaded afterwards; the default is a no-op.
        """
        return None

    def preprocess_cached(self, graph: DirectedGraph, cache) -> Dict[str, object]:
        """Fetch (or build) the preprocess output through a shared cache.

        ``cache`` is any object with ``get_or_compute(key, factory)`` — in
        practice the LRU behind :class:`repro.serving.cache.OperatorCache`,
        whose ``preprocess`` method delegates here so the key format lives
        in exactly one place.
        """
        return cache.get_or_compute(
            preprocess_key(self, graph), lambda: self.preprocess(graph)
        )

    # ------------------------------------------------------------------ #
    # Convenience inference helpers
    # ------------------------------------------------------------------ #
    def predict_logits(self, graph: DirectedGraph, cache: Optional[Dict[str, object]] = None) -> np.ndarray:
        """Run a forward pass in eval mode and return raw logits as ndarray."""
        if cache is None:
            cache = self.preprocess(graph)
        was_training = self.training
        self.eval()
        try:
            logits = self.forward(cache)
        finally:
            self.train(was_training)
        return logits.numpy()

    def predict(self, graph: DirectedGraph, cache: Optional[Dict[str, object]] = None) -> np.ndarray:
        """Predicted class index per node."""
        return self.predict_logits(graph, cache).argmax(axis=1)

    @classmethod
    def from_graph(cls, graph: DirectedGraph, **kwargs) -> "NodeClassifier":
        """Instantiate the model with dimensions inferred from ``graph``."""
        return cls(num_features=graph.num_features, num_classes=graph.num_classes, **kwargs)
