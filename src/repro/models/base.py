"""Common contract for every node-classification model in the reproduction.

Each model is a :class:`repro.nn.Module` with two extra responsibilities:

``preprocess(graph)``
    Compute everything that does not depend on trainable parameters —
    normalised adjacencies, pre-propagated features, DP operator caches —
    and return it as a dict.  The trainer calls this exactly once per
    (model, graph) pair, which is what makes the decoupled models
    (SGC, ADPA, GPR-GNN, …) cheap: their propagation lives here.

``forward(cache)``
    Map the cached inputs to ``(n, num_classes)`` logits.  Called every
    epoch under autograd.

The :class:`repro.training.Trainer` drives fit/early-stopping/evaluation on
top of this contract, so model files stay focused on the architecture.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..graph.digraph import DirectedGraph
from ..nn import Module, Tensor


class NodeClassifier(Module):
    """Base class for semi-supervised node classifiers.

    Sub-classes must set ``self.num_features`` / ``self.num_classes`` (the
    constructor does it for them) and implement :meth:`preprocess` and
    :meth:`forward`.
    """

    #: whether the model consumes directed adjacencies natively; undirected
    #: models symmetrise their input inside ``preprocess``.
    directed: bool = False

    def __init__(self, num_features: int, num_classes: int) -> None:
        super().__init__()
        if num_features < 1 or num_classes < 2:
            raise ValueError(
                f"invalid dimensions: num_features={num_features}, num_classes={num_classes}"
            )
        self.num_features = num_features
        self.num_classes = num_classes

    # ------------------------------------------------------------------ #
    # Contract
    # ------------------------------------------------------------------ #
    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        """Build the training-independent cache for ``graph``."""
        raise NotImplementedError

    def forward(self, cache: Dict[str, object]) -> Tensor:
        """Compute class logits from a cache built by :meth:`preprocess`."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Convenience inference helpers
    # ------------------------------------------------------------------ #
    def predict_logits(self, graph: DirectedGraph, cache: Optional[Dict[str, object]] = None) -> np.ndarray:
        """Run a forward pass in eval mode and return raw logits as ndarray."""
        if cache is None:
            cache = self.preprocess(graph)
        was_training = self.training
        self.eval()
        try:
            logits = self.forward(cache)
        finally:
            self.train(was_training)
        return logits.numpy()

    def predict(self, graph: DirectedGraph, cache: Optional[Dict[str, object]] = None) -> np.ndarray:
        """Predicted class index per node."""
        return self.predict_logits(graph, cache).argmax(axis=1)

    @classmethod
    def from_graph(cls, graph: DirectedGraph, **kwargs) -> "NodeClassifier":
        """Instantiate the model with dimensions inferred from ``graph``."""
        return cls(num_features=graph.num_features, num_classes=graph.num_classes, **kwargs)
