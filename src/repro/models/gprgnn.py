"""GPR-GNN (Chien et al., 2021) — generalized PageRank propagation weights.

An MLP produces hidden states ``H^(0)``; K symmetric propagation steps
follow, and the prediction is ``Z = Σ_k γ_k H^(k)`` where the γ_k are
*learnable* (initialised with personalised-PageRank decay).  Negative γ_k
values let the model express high-pass filters, which is why GPR-GNN is a
standard heterophily-capable baseline.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.operators import symmetric_normalized_adjacency
from ..graph.transforms import to_undirected
from ..nn import MLP, Parameter, Tensor, sparse_matmul
from .base import NodeClassifier


class GPRGNN(NodeClassifier):
    """Adaptive universal generalized PageRank GNN."""

    directed = False

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        num_steps: int = 4,
        alpha: float = 0.1,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        rng = np.random.default_rng(seed)
        self.num_steps = num_steps
        self.mlp = MLP(
            in_features=num_features,
            hidden_features=hidden,
            out_features=num_classes,
            num_layers=2,
            dropout=dropout,
            rng=rng,
        )
        # PPR initialisation: gamma_k = alpha (1-alpha)^k, last step absorbs the tail.
        gammas = np.array([alpha * (1 - alpha) ** k for k in range(num_steps + 1)])
        gammas[-1] = (1 - alpha) ** num_steps
        self.gammas = Parameter(gammas)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        return {
            "x": Tensor(graph.features),
            "adj": symmetric_normalized_adjacency(to_undirected(graph).adjacency),
        }

    def forward(self, cache: Dict[str, object]) -> Tensor:
        adjacency = cache["adj"]
        hidden = self.mlp(cache["x"])
        output = hidden * self.gammas[0]
        state = hidden
        for step in range(1, self.num_steps + 1):
            state = sparse_matmul(adjacency, state)
            output = output + state * self.gammas[step]
        return output
