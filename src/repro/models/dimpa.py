"""DIMPA (He et al., 2022) — directed mixed-path aggregation.

DIMPA widens the receptive field at every layer by aggregating the whole
K-hop *source* neighbourhood (powers of the row-normalised ``A``) and the
K-hop *target* neighbourhood (powers of ``Aᵀ``) with learnable per-hop
weights, then concatenates the two views:

``H_s = Σ_k w^s_k Â^k X W_s``,  ``H_t = Σ_k w^t_k (Âᵀ)^k X W_t``,
``Z = MLP([H_s ‖ H_t])``.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.operators import add_self_loops, row_normalized
from ..nn import MLP, Linear, Parameter, Tensor, concatenate
from .base import NodeClassifier


class DIMPA(NodeClassifier):
    """Directed GNN aggregating K-hop source and target neighbourhoods."""

    directed = True

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        num_hops: int = 2,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if num_hops < 1:
            raise ValueError(f"num_hops must be >= 1, got {num_hops}")
        rng = np.random.default_rng(seed)
        self.num_hops = num_hops
        self.source_proj = Linear(num_features, hidden, rng=rng)
        self.target_proj = Linear(num_features, hidden, rng=rng)
        self.source_hop_weights = Parameter(np.ones(num_hops + 1) / (num_hops + 1))
        self.target_hop_weights = Parameter(np.ones(num_hops + 1) / (num_hops + 1))
        self.classifier = MLP(2 * hidden, hidden, num_classes, num_layers=2, dropout=dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        out_adj = row_normalized(add_self_loops(graph.adjacency))
        in_adj = row_normalized(add_self_loops(graph.adjacency.T.tocsr()))
        source_hops: List[np.ndarray] = [graph.features]
        target_hops: List[np.ndarray] = [graph.features]
        for _ in range(self.num_hops):
            source_hops.append(out_adj @ source_hops[-1])
            target_hops.append(in_adj @ target_hops[-1])
        return {
            "source_hops": [Tensor(hop) for hop in source_hops],
            "target_hops": [Tensor(hop) for hop in target_hops],
        }

    def _aggregate(self, hops: List[Tensor], weights: Parameter, projector: Linear) -> Tensor:
        normalised = weights.softmax(axis=0)
        fused = None
        for index, hop in enumerate(hops):
            term = projector(hop) * normalised[index : index + 1]
            fused = term if fused is None else fused + term
        return fused.relu()

    def forward(self, cache: Dict[str, object]) -> Tensor:
        source = self._aggregate(cache["source_hops"], self.source_hop_weights, self.source_proj)
        target = self._aggregate(cache["target_hops"], self.target_hop_weights, self.target_proj)
        return self.classifier(concatenate([source, target], axis=1))
