"""GRAND (Chamberlain et al., 2021 / Feng et al., 2020 style) — diffusion GNN.

The paper cites GRAND as an undirected spectral-flavoured baseline.  This
reproduction implements the discretised linear diffusion variant: node
features are diffused for ``K`` explicit Euler steps of
``X ← (1 - τ) X + τ Ã X`` during preprocessing (training-free), after which
an MLP classifies the diffused features.  At training time several random
feature-dropout realisations are averaged, which mimics GRAND's random
propagation / consistency regularisation at a fraction of the cost.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.operators import symmetric_normalized_adjacency
from ..graph.transforms import to_undirected
from ..nn import MLP, Tensor
from ..nn import functional as F
from .base import NodeClassifier


class GRAND(NodeClassifier):
    """Graph neural diffusion with averaged random propagation."""

    directed = False

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        num_steps: int = 4,
        tau: float = 0.5,
        num_samples: int = 2,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if not 0.0 < tau <= 1.0:
            raise ValueError(f"diffusion step size tau must be in (0, 1], got {tau}")
        rng = np.random.default_rng(seed)
        self.num_steps = num_steps
        self.tau = tau
        self.num_samples = max(1, num_samples)
        self.input_dropout = dropout
        self._rng = rng
        self.mlp = MLP(num_features, hidden, num_classes, num_layers=2, dropout=dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        adjacency = symmetric_normalized_adjacency(to_undirected(graph).adjacency)
        diffused = graph.features.copy()
        for _ in range(self.num_steps):
            diffused = (1.0 - self.tau) * diffused + self.tau * (adjacency @ diffused)
        return {"x": Tensor(diffused)}

    def forward(self, cache: Dict[str, object]) -> Tensor:
        samples = self.num_samples if self.training else 1
        output = None
        for _ in range(samples):
            perturbed = F.dropout(cache["x"], self.input_dropout, self.training, self._rng)
            logits = self.mlp(perturbed)
            output = logits if output is None else output + logits
        return output * (1.0 / samples)
