"""DGCN (Tong et al., 2020) — directed GCN with first/second-order proximity.

DGCN builds three symmetric proximity matrices from the directed adjacency:

* first-order proximity ``A_F = A + Aᵀ`` (mutual reachability);
* second-order out-proximity ``A_out = A Aᵀ`` (nodes sharing out-neighbours);
* second-order in-proximity  ``A_in  = Aᵀ A`` (nodes sharing in-neighbours);

each symmetrically normalised, convolved with shared weights, and fused by a
learnable (softmax-constrained) combination.  In the paper's taxonomy this
is a spatial directed GNN restricted to an incomplete set of 2-order DPs.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import scipy.sparse as sp

from ..graph.digraph import DirectedGraph
from ..graph.operators import symmetric_normalized_adjacency
from ..nn import Dropout, Linear, Parameter, Tensor, sparse_matmul
from .base import NodeClassifier


class DGCN(NodeClassifier):
    """Directed graph convolution over first- and second-order proximities."""

    directed = True

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        rng = np.random.default_rng(seed)
        dims = [num_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.layers: List[Linear] = [Linear(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        self.fusion = Parameter(np.zeros(3))
        self.dropout = Dropout(dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        adjacency = graph.adjacency
        first_order = sp.csr_matrix(adjacency + adjacency.T)
        first_order.data = np.ones_like(first_order.data)
        out_proximity = sp.csr_matrix(adjacency @ adjacency.T)
        out_proximity.data = np.ones_like(out_proximity.data)
        in_proximity = sp.csr_matrix(adjacency.T @ adjacency)
        in_proximity.data = np.ones_like(in_proximity.data)
        return {
            "x": Tensor(graph.features),
            "proximities": [
                symmetric_normalized_adjacency(first_order),
                symmetric_normalized_adjacency(out_proximity),
                symmetric_normalized_adjacency(in_proximity),
            ],
        }

    def forward(self, cache: Dict[str, object]) -> Tensor:
        x = cache["x"]
        proximities = cache["proximities"]
        weights = self.fusion.softmax(axis=0)
        for index, layer in enumerate(self.layers):
            x = self.dropout(x)
            fused = None
            for proximity_index, proximity in enumerate(proximities):
                term = sparse_matmul(proximity, x) * weights[proximity_index : proximity_index + 1]
                fused = term if fused is None else fused + term
            x = layer(fused)
            if index < len(self.layers) - 1:
                x = x.relu()
        return x
