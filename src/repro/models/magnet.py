"""MagNet (Zhang et al., 2021) — spectral convolution on the magnetic Laplacian.

The magnetic Laplacian ``L(q) = I - D^{-1/2} H(q) D^{-1/2}`` with
``H(q) = A_s ⊙ exp(i 2π q (A - Aᵀ))`` is complex Hermitian: its real part
encodes the undirected connectivity and its imaginary part the edge
direction.  MagNet runs Chebyshev-style convolutions with separate weights
for the real and imaginary channels and classifies from the channel
concatenation — reproduced here with the complex arithmetic expanded into
real/imaginary tensor pairs so that it runs on the real-valued autograd
substrate.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np
import scipy.sparse as sp

from ..graph.digraph import DirectedGraph
from ..graph.operators import magnetic_laplacian
from ..nn import Dropout, Linear, Tensor, concatenate, sparse_matmul
from .base import NodeClassifier


class MagNet(NodeClassifier):
    """Directed spectral GNN built on the q-parameterised magnetic Laplacian."""

    directed = True

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        num_layers: int = 2,
        q: float = 0.25,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        if not 0.0 <= q <= 0.5:
            raise ValueError(f"magnetic parameter q must be in [0, 0.5], got {q}")
        rng = np.random.default_rng(seed)
        self.q = q
        dims = [num_features] + [hidden] * num_layers
        self.real_layers: List[Linear] = [Linear(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        self.imag_layers: List[Linear] = [Linear(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        self.readout = Linear(2 * dims[-1], num_classes, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        laplacian_re, laplacian_im = magnetic_laplacian(graph.adjacency, q=self.q)
        n = graph.num_nodes
        identity = sp.identity(n, format="csr")
        # First-order Chebyshev filter uses (I - L~) ≈ normalized Hermitian adjacency.
        return {
            "x": Tensor(graph.features),
            "operator_re": (identity - laplacian_re).tocsr(),
            "operator_im": (-laplacian_im).tocsr(),
        }

    @staticmethod
    def _complex_propagate(
        operator_re: sp.csr_matrix,
        operator_im: sp.csr_matrix,
        real: Tensor,
        imag: Tensor,
    ) -> Tuple[Tensor, Tensor]:
        """(re + i·im) ← (O_re + i·O_im)(re + i·im)."""
        new_real = sparse_matmul(operator_re, real) - sparse_matmul(operator_im, imag)
        new_imag = sparse_matmul(operator_re, imag) + sparse_matmul(operator_im, real)
        return new_real, new_imag

    def forward(self, cache: Dict[str, object]) -> Tensor:
        operator_re, operator_im = cache["operator_re"], cache["operator_im"]
        real = cache["x"]
        imag = cache["x"] * 0.0
        for index in range(len(self.real_layers)):
            real = self.dropout(real)
            imag = self.dropout(imag)
            real, imag = self._complex_propagate(operator_re, operator_im, real, imag)
            new_real = self.real_layers[index](real) - self.imag_layers[index](imag)
            new_imag = self.real_layers[index](imag) + self.imag_layers[index](real)
            real, imag = new_real.relu(), new_imag.relu()
        return self.readout(concatenate([real, imag], axis=1))
