"""GloGNN (Li et al., 2022) — global homophily via a transformation matrix.

The published model learns a global coefficient matrix ``T`` that lets every
node aggregate from every other node (signed, so heterophilous relations can
contribute negatively):

``Z^(l) = (1 - γ) T^(l) X^(l) + γ X^(l)``

This reproduction uses the low-rank parameterisation
``T = H Hᵀ / n`` with ``H = MLP(X ‖ A-embedding)``, which keeps the global
aggregation O(n·hidden) instead of O(n²) while preserving the key property
the paper relies on: nodes can attend to same-class peers anywhere in the
graph, not only among direct neighbours.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.operators import symmetric_normalized_adjacency
from ..graph.transforms import to_undirected
from ..nn import MLP, Linear, Tensor, concatenate, sparse_matmul
from .base import NodeClassifier


class GloGNN(NodeClassifier):
    """Global homophily model with a low-rank global transformation matrix."""

    directed = False

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        rank: int = 16,
        gamma: float = 0.5,
        num_layers: int = 2,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        rng = np.random.default_rng(seed)
        self.gamma = gamma
        self.num_layers = num_layers
        self.encoder = MLP(num_features, hidden, hidden, num_layers=1, dropout=dropout, rng=rng)
        self.neighbor_proj = Linear(hidden, hidden, rng=rng)
        self.global_proj = Linear(2 * hidden, rank, rng=rng)
        self.classifier = MLP(hidden, hidden, num_classes, num_layers=2, dropout=dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        return {
            "x": Tensor(graph.features),
            "adj": symmetric_normalized_adjacency(to_undirected(graph).adjacency),
            "num_nodes": graph.num_nodes,
        }

    def forward(self, cache: Dict[str, object]) -> Tensor:
        adjacency = cache["adj"]
        num_nodes = cache["num_nodes"]
        hidden = self.encoder(cache["x"]).relu()
        neighborhood = sparse_matmul(adjacency, self.neighbor_proj(hidden))
        # Low-rank global transformation T = H Hᵀ / n applied to the hidden state.
        anchors = self.global_proj(concatenate([hidden, neighborhood], axis=1)).tanh()  # (n, rank)
        state = hidden
        for _ in range(self.num_layers):
            global_mix = anchors @ (anchors.T @ state) * (1.0 / num_nodes)
            state = global_mix * (1.0 - self.gamma) + state * self.gamma
        return self.classifier(state)
