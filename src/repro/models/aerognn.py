"""AERO-GNN (Lee et al., 2023) — deep attentive propagation, simplified.

AERO-GNN addresses the degeneration of attention in deep GNNs with
edge/hop-level attention that stays expressive as depth grows.  The
reproduction keeps the two ingredients that matter for the paper's
comparisons: (1) many propagation steps over the symmetric adjacency, and
(2) a learnable per-hop attention vector that mixes the intermediate states
per node, so the effective receptive field adapts instead of oversmoothing.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.operators import symmetric_normalized_adjacency
from ..graph.transforms import to_undirected
from ..nn import MLP, Linear, Tensor, concatenate, sparse_matmul
from .base import NodeClassifier


class AeroGNN(NodeClassifier):
    """Hop-attentive deep propagation model."""

    directed = False

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        num_steps: int = 6,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        rng = np.random.default_rng(seed)
        self.num_steps = num_steps
        self.encoder = MLP(num_features, hidden, hidden, num_layers=1, dropout=dropout, rng=rng)
        self.hop_score = Linear(hidden, 1, rng=rng)
        self.classifier = MLP(hidden, hidden, num_classes, num_layers=2, dropout=dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        return {
            "x": Tensor(graph.features),
            "adj": symmetric_normalized_adjacency(to_undirected(graph).adjacency),
        }

    def forward(self, cache: Dict[str, object]) -> Tensor:
        adjacency = cache["adj"]
        state = self.encoder(cache["x"]).relu()
        hops: List[Tensor] = [state]
        for _ in range(self.num_steps):
            state = sparse_matmul(adjacency, state)
            hops.append(state)
        scores = [self.hop_score(hop.tanh()) for hop in hops]
        weights = concatenate(scores, axis=1).leaky_relu(0.2).softmax(axis=1)
        fused = None
        for index, hop in enumerate(hops):
            term = hop * weights[:, index : index + 1]
            fused = term if fused is None else fused + term
        return self.classifier(fused)
