"""Baseline node-classification models (the paper's Sec. V-A zoo)."""

from .a2dug import A2DUG
from .aerognn import AeroGNN
from .base import NodeClassifier
from .bernnet import BernNet
from .dgcn import DGCN
from .digcn import DiGCN
from .dimpa import DIMPA
from .dirgnn import DirGNN
from .gcn import GCN
from .gcnii import GCNII
from .glognn import GloGNN
from .gprgnn import GPRGNN
from .grand import GRAND
from .jacobiconv import JacobiConv
from .linkx import LINKX
from .magnet import MagNet
from .mlp import MLPClassifier
from .nste import NSTE
from .registry import (
    DIRECTED_SPATIAL,
    DIRECTED_SPECTRAL,
    PROPOSED,
    UNDIRECTED_SPATIAL,
    UNDIRECTED_SPECTRAL,
    ModelSpec,
    available_models,
    create_model,
    directed_models,
    get_spec,
    register,
    undirected_models,
)
from .sgc import SGC

__all__ = [
    "NodeClassifier",
    "MLPClassifier",
    "GCN",
    "SGC",
    "GCNII",
    "GPRGNN",
    "GRAND",
    "LINKX",
    "GloGNN",
    "AeroGNN",
    "BernNet",
    "JacobiConv",
    "DGCN",
    "DirGNN",
    "NSTE",
    "DIMPA",
    "A2DUG",
    "DiGCN",
    "MagNet",
    "ModelSpec",
    "register",
    "get_spec",
    "create_model",
    "available_models",
    "undirected_models",
    "directed_models",
    "UNDIRECTED_SPATIAL",
    "UNDIRECTED_SPECTRAL",
    "DIRECTED_SPATIAL",
    "DIRECTED_SPECTRAL",
    "PROPOSED",
]
