"""GCN (Kipf & Welling, 2017) — the canonical homophilous baseline (Eq. 1).

Each layer computes ``X^(l) = σ( Ã X^(l-1) W^(l) )`` with
``Ã = D^{-1/2} (A + I) D^{-1/2}``.  Being an *undirected* model, the
adjacency is symmetrised during preprocessing regardless of the input's
directedness — exactly the "coarse undirected transformation" the paper's
data-engineering discussion critiques.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.operators import symmetric_normalized_adjacency
from ..graph.transforms import to_undirected
from ..nn import Dropout, Linear, Tensor, sparse_matmul
from .base import NodeClassifier


class GCN(NodeClassifier):
    """Multi-layer graph convolutional network."""

    directed = False

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        rng = np.random.default_rng(seed)
        dims = [num_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.layers: List[Linear] = [
            Linear(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)
        ]
        self.dropout = Dropout(dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        undirected = to_undirected(graph)
        return {
            "x": Tensor(graph.features),
            "adj": symmetric_normalized_adjacency(undirected.adjacency),
        }

    def forward(self, cache: Dict[str, object]) -> Tensor:
        x, adjacency = cache["x"], cache["adj"]
        for index, layer in enumerate(self.layers):
            x = self.dropout(x)
            x = layer(sparse_matmul(adjacency, x))
            if index < len(self.layers) - 1:
                x = x.relu()
        return x
