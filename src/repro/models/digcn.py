"""DiGCN (Tong et al., 2020) — digraph inception convolution via PPR.

DiGCN makes the digraph Laplacian symmetric by weighting the random-walk
transition matrix with its personalised-PageRank stationary distribution
(``Π^{1/2} P Π^{-1/2}`` symmetrised), which yields a well-defined spectral
convolution on directed graphs.  This reproduction uses the resulting
symmetric operator in GCN-style layers, plus an optional second-order
proximity channel (the "inception" block) fused by learnable weights.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np
import scipy.sparse as sp

from ..graph.digraph import DirectedGraph
from ..graph.operators import personalized_pagerank_adjacency, symmetric_normalized_adjacency
from ..nn import Dropout, Linear, Parameter, Tensor, sparse_matmul
from .base import NodeClassifier


class DiGCN(NodeClassifier):
    """Digraph inception convolutional network (PPR-symmetrised Laplacian)."""

    directed = True

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        num_layers: int = 2,
        alpha: float = 0.1,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        rng = np.random.default_rng(seed)
        self.alpha = alpha
        dims = [num_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.layers: List[Linear] = [Linear(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        self.fusion = Parameter(np.zeros(2))
        self.dropout = Dropout(dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        ppr_operator = personalized_pagerank_adjacency(graph.adjacency, alpha=self.alpha)
        # Inception channel: second-order shared-neighbour proximity.
        second_order = sp.csr_matrix(graph.adjacency @ graph.adjacency.T)
        second_order.data = np.ones_like(second_order.data)
        return {
            "x": Tensor(graph.features),
            "channels": [
                sp.csr_matrix(ppr_operator),
                symmetric_normalized_adjacency(second_order),
            ],
        }

    def forward(self, cache: Dict[str, object]) -> Tensor:
        x = cache["x"]
        channels = cache["channels"]
        weights = self.fusion.softmax(axis=0)
        for index, layer in enumerate(self.layers):
            x = self.dropout(x)
            fused = None
            for channel_index, channel in enumerate(channels):
                term = sparse_matmul(channel, x) * weights[channel_index : channel_index + 1]
                fused = term if fused is None else fused + term
            x = layer(fused)
            if index < len(self.layers) - 1:
                x = x.relu()
        return x
