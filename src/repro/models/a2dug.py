"""A2DUG (Maekawa et al., 2023) — aggregated features and adjacency lists,
from both the directed and undirected views.

A2DUG concatenates, for every node, (1) MLP-encoded raw features,
(2) propagated features under the undirected adjacency, (3) propagated
features under the directed adjacency and its transpose, and (4) linear
embeddings of the (un)directed adjacency rows, then trains a joint MLP.
The model "lets the data decide" which view matters — but, as the paper
argues, collapsing the directed patterns into whole-adjacency embeddings
obscures the per-pattern homophily/heterophily distinctions ADPA exploits.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.operators import add_self_loops, row_normalized, symmetric_normalized_adjacency
from ..graph.transforms import to_undirected
from ..nn import MLP, Linear, Tensor, concatenate, sparse_matmul
from .base import NodeClassifier


class A2DUG(NodeClassifier):
    """Combined aggregated-feature / adjacency-list model over both views."""

    directed = True

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        num_steps: int = 2,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        rng = np.random.default_rng(seed)
        self.hidden = hidden
        self.num_steps = num_steps
        self._rng = rng
        self.feature_encoder = MLP(num_features, hidden, hidden, num_layers=1, dropout=dropout, rng=rng)
        self.undirected_encoder = MLP(num_features, hidden, hidden, num_layers=1, dropout=dropout, rng=rng)
        self.directed_encoder = MLP(2 * num_features, hidden, hidden, num_layers=1, dropout=dropout, rng=rng)
        # Adjacency-row encoders are graph-size dependent; built lazily.
        self._undirected_adj_encoder: Linear = None
        self._directed_adj_encoder: Linear = None
        self._num_nodes: int = None
        self.classifier = MLP(5 * hidden, hidden, num_classes, num_layers=2, dropout=dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        undirected = to_undirected(graph)
        undirected_norm = symmetric_normalized_adjacency(undirected.adjacency)
        out_norm = row_normalized(add_self_loops(graph.adjacency))
        in_norm = row_normalized(add_self_loops(graph.adjacency.T.tocsr()))

        undirected_features = graph.features
        out_features = graph.features
        in_features = graph.features
        for _ in range(self.num_steps):
            undirected_features = undirected_norm @ undirected_features
            out_features = out_norm @ out_features
            in_features = in_norm @ in_features

        if self._undirected_adj_encoder is None or self._num_nodes != graph.num_nodes:
            self._num_nodes = graph.num_nodes
            self._undirected_adj_encoder = Linear(graph.num_nodes, self.hidden, rng=self._rng)
            self._directed_adj_encoder = Linear(graph.num_nodes, self.hidden, rng=self._rng)

        return {
            "x": Tensor(graph.features),
            "undirected_propagated": Tensor(undirected_features),
            "directed_propagated": Tensor(np.concatenate([out_features, in_features], axis=1)),
            "undirected_adj": undirected.adjacency.tocsr(),
            "directed_adj": graph.adjacency.tocsr(),
        }

    def forward(self, cache: Dict[str, object]) -> Tensor:
        feature_part = self.feature_encoder(cache["x"])
        undirected_part = self.undirected_encoder(cache["undirected_propagated"])
        directed_part = self.directed_encoder(cache["directed_propagated"])
        undirected_rows = sparse_matmul(cache["undirected_adj"], self._undirected_adj_encoder.weight)
        undirected_rows = undirected_rows + self._undirected_adj_encoder.bias
        directed_rows = sparse_matmul(cache["directed_adj"], self._directed_adj_encoder.weight)
        directed_rows = directed_rows + self._directed_adj_encoder.bias
        combined = concatenate(
            [feature_part, undirected_part, directed_part, undirected_rows, directed_rows], axis=1
        ).relu()
        return self.classifier(combined)
