"""Model registry: names, categories and constructors for the full zoo.

The benchmark harnesses iterate over this registry to reproduce the model
columns of Tables III/IV/V, so the category labels mirror the paper's
grouping: undirected spatial, undirected spectral, directed spatial and
directed spectral.  ADPA is registered here too so that it can be swept
alongside the baselines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from ..graph.digraph import DirectedGraph
from .a2dug import A2DUG
from .aerognn import AeroGNN
from .base import NodeClassifier
from .bernnet import BernNet
from .dgcn import DGCN
from .digcn import DiGCN
from .dimpa import DIMPA
from .dirgnn import DirGNN
from .gcn import GCN
from .gcnii import GCNII
from .glognn import GloGNN
from .gprgnn import GPRGNN
from .grand import GRAND
from .jacobiconv import JacobiConv
from .linkx import LINKX
from .magnet import MagNet
from .mlp import MLPClassifier
from .nste import NSTE
from .sgc import SGC

#: Category labels following the paper's baseline taxonomy (Sec. V-A).
UNDIRECTED_SPATIAL = "undirected-spatial"
UNDIRECTED_SPECTRAL = "undirected-spectral"
DIRECTED_SPATIAL = "directed-spatial"
DIRECTED_SPECTRAL = "directed-spectral"
PROPOSED = "proposed"


@dataclass(frozen=True)
class ModelSpec:
    """A registered model: constructor plus taxonomy metadata."""

    name: str
    constructor: Callable[..., NodeClassifier]
    category: str

    @property
    def is_directed(self) -> bool:
        return self.category in (DIRECTED_SPATIAL, DIRECTED_SPECTRAL, PROPOSED)


_REGISTRY: Dict[str, ModelSpec] = {}


def register(name: str, constructor: Callable[..., NodeClassifier], category: str) -> None:
    """Add a model to the registry (idempotent for identical entries)."""
    key = name.lower()
    _REGISTRY[key] = ModelSpec(name=name, constructor=constructor, category=category)


def get_spec(name: str) -> ModelSpec:
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(f"unknown model {name!r}; available: {sorted(_REGISTRY)}")
    return _REGISTRY[key]


def create_model(name: str, graph: DirectedGraph, **kwargs) -> NodeClassifier:
    """Instantiate a registered model with dimensions taken from ``graph``.

    The registry name and constructor kwargs are stamped onto the instance so
    the serving layer (:mod:`repro.serving.artifacts`) can export the model
    and rebuild it bit-exactly in another process.
    """
    spec = get_spec(name)
    model = spec.constructor(
        num_features=graph.num_features, num_classes=graph.num_classes, **kwargs
    )
    model._registry_name = spec.name
    model._init_kwargs = dict(kwargs)
    return model


def available_models(category: Optional[str] = None) -> List[str]:
    """List registered model names, optionally filtered by category."""
    specs = _REGISTRY.values()
    if category is not None:
        specs = [spec for spec in specs if spec.category == category]
    return sorted(spec.name for spec in specs)


def undirected_models() -> List[str]:
    return available_models(UNDIRECTED_SPATIAL) + available_models(UNDIRECTED_SPECTRAL)


def directed_models() -> List[str]:
    return available_models(DIRECTED_SPATIAL) + available_models(DIRECTED_SPECTRAL)


def _adpa_factory(**kwargs):
    """Construct ADPA lazily to avoid a circular import with :mod:`repro.adpa`."""
    from ..adpa.model import ADPA

    return ADPA(**kwargs)


# ---------------------------------------------------------------------- #
# Default registrations (paper Sec. V-A baselines + ADPA)
# ---------------------------------------------------------------------- #
register("MLP", MLPClassifier, UNDIRECTED_SPATIAL)
register("GCN", GCN, UNDIRECTED_SPATIAL)
register("GCNII", GCNII, UNDIRECTED_SPATIAL)
register("LINKX", LINKX, UNDIRECTED_SPATIAL)
register("GloGNN", GloGNN, UNDIRECTED_SPATIAL)
register("AeroGNN", AeroGNN, UNDIRECTED_SPATIAL)
register("SGC", SGC, UNDIRECTED_SPECTRAL)
register("GRAND", GRAND, UNDIRECTED_SPECTRAL)
register("GPRGNN", GPRGNN, UNDIRECTED_SPECTRAL)
register("BernNet", BernNet, UNDIRECTED_SPECTRAL)
register("JacobiConv", JacobiConv, UNDIRECTED_SPECTRAL)
register("DGCN", DGCN, DIRECTED_SPATIAL)
register("NSTE", NSTE, DIRECTED_SPATIAL)
register("DIMPA", DIMPA, DIRECTED_SPATIAL)
register("DirGNN", DirGNN, DIRECTED_SPATIAL)
register("A2DUG", A2DUG, DIRECTED_SPATIAL)
register("DiGCN", DiGCN, DIRECTED_SPECTRAL)
register("MagNet", MagNet, DIRECTED_SPECTRAL)
register("ADPA", _adpa_factory, PROPOSED)
