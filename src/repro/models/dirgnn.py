"""Dir-GNN (Rossi et al., 2023) — separate in/out message passing.

Each layer aggregates over out-neighbours (using row-normalised ``A``) and
in-neighbours (row-normalised ``Aᵀ``) with independent weight matrices and
combines them with the node's own transform (Eq. 2 of the paper):

``X^(l) = σ( W_self X^(l-1) + α W_out Â X^(l-1) + (1-α) W_in Âᵀ X^(l-1) )``

The paper classifies Dir-GNN as a strong directed spatial baseline limited
to an incomplete set of 2-order DPs, which is exactly what ADPA extends.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.operators import add_self_loops, row_normalized
from ..nn import Dropout, Linear, Tensor, sparse_matmul
from .base import NodeClassifier


class DirGNN(NodeClassifier):
    """Directed GNN with independent in- and out-neighbour aggregation."""

    directed = True

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        num_layers: int = 2,
        alpha: float = 0.5,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha}")
        rng = np.random.default_rng(seed)
        self.alpha = alpha
        dims = [num_features] + [hidden] * (num_layers - 1) + [num_classes]
        self.self_layers: List[Linear] = [Linear(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        self.out_layers: List[Linear] = [Linear(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        self.in_layers: List[Linear] = [Linear(dims[i], dims[i + 1], rng=rng) for i in range(num_layers)]
        self.dropout = Dropout(dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        forward_adj = row_normalized(add_self_loops(graph.adjacency))
        backward_adj = row_normalized(add_self_loops(graph.adjacency.T.tocsr()))
        return {
            "x": Tensor(graph.features),
            "out_adj": forward_adj,
            "in_adj": backward_adj,
        }

    def forward(self, cache: Dict[str, object]) -> Tensor:
        x = cache["x"]
        out_adj, in_adj = cache["out_adj"], cache["in_adj"]
        num_layers = len(self.self_layers)
        for index in range(num_layers):
            x = self.dropout(x)
            out_message = self.out_layers[index](sparse_matmul(out_adj, x))
            in_message = self.in_layers[index](sparse_matmul(in_adj, x))
            x = self.self_layers[index](x) + out_message * self.alpha + in_message * (1.0 - self.alpha)
            if index < num_layers - 1:
                x = x.relu()
        return x
