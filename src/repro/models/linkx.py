"""LINKX (Lim et al., 2021) — separate encoders for topology and features.

``Z = MLP_f( W [ MLP_A(A) ‖ MLP_X(X) ] + MLP_A(A) + MLP_X(X) )``

The adjacency rows themselves are embedded by a linear map, so the model
sidesteps message passing entirely — the design the paper discusses as
robust to edge sparsity but unable to recover from feature sparsity
(Fig. 7 analysis).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.transforms import to_undirected
from ..nn import MLP, Linear, Tensor, concatenate, sparse_matmul
from .base import NodeClassifier


class LINKX(NodeClassifier):
    """Decoupled adjacency + feature encoder for non-homophilous graphs."""

    directed = False

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        rng = np.random.default_rng(seed)
        self.hidden = hidden
        # The adjacency encoder is a linear map from R^n; its input size is
        # graph dependent, so it is created lazily in ``preprocess``.
        self._adjacency_encoder: Linear = None
        self._num_nodes: int = None
        self._rng = rng
        self.feature_encoder = MLP(num_features, hidden, hidden, num_layers=1, dropout=dropout, rng=rng)
        self.combiner = Linear(2 * hidden, hidden, rng=rng)
        self.final = MLP(hidden, hidden, num_classes, num_layers=2, dropout=dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        undirected = to_undirected(graph)
        if self._adjacency_encoder is None or self._num_nodes != graph.num_nodes:
            self._num_nodes = graph.num_nodes
            self._adjacency_encoder = Linear(graph.num_nodes, self.hidden, rng=self._rng)
        return {
            "x": Tensor(graph.features),
            "adj": undirected.adjacency.tocsr(),
        }

    def forward(self, cache: Dict[str, object]) -> Tensor:
        # Embed adjacency rows: A @ W_A, computed as a sparse-dense product.
        adjacency_embedding = sparse_matmul(cache["adj"], self._adjacency_encoder.weight)
        if self._adjacency_encoder.bias is not None:
            adjacency_embedding = adjacency_embedding + self._adjacency_encoder.bias
        feature_embedding = self.feature_encoder(cache["x"])
        combined = self.combiner(concatenate([adjacency_embedding, feature_embedding], axis=1))
        combined = (combined + adjacency_embedding + feature_embedding).relu()
        return self.final(combined)
