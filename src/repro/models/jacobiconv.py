"""JacobiConv (Wang & Zhang, 2022) — Jacobi-polynomial spectral filter.

The propagation matrix ``Ã = D^{-1/2} A D^{-1/2}`` has spectrum in
``[-1, 1]``; JacobiConv expands the filter in the Jacobi polynomial basis
``P_k^{(a,b)}(Ã)`` with learnable per-order coefficients.  The Jacobi basis
generalises Chebyshev (a = b = -1/2) and adapts better to the uneven
spectral density of real graphs, which is why the paper finds it among the
strongest undirected spectral baselines.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.operators import symmetric_normalized_adjacency
from ..graph.transforms import to_undirected
from ..nn import MLP, Parameter, Tensor, sparse_matmul
from .base import NodeClassifier


class JacobiConv(NodeClassifier):
    """Spectral GNN with a learnable Jacobi-polynomial filter."""

    directed = False

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        poly_order: int = 4,
        a: float = 1.0,
        b: float = 1.0,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if poly_order < 1:
            raise ValueError(f"poly_order must be >= 1, got {poly_order}")
        rng = np.random.default_rng(seed)
        self.poly_order = poly_order
        self.a = a
        self.b = b
        self.mlp = MLP(num_features, hidden, num_classes, num_layers=2, dropout=dropout, rng=rng)
        decay = np.array([1.0 / (k + 1) for k in range(poly_order + 1)])
        self.alphas = Parameter(decay)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        return {
            "x": Tensor(graph.features),
            "adj": symmetric_normalized_adjacency(to_undirected(graph).adjacency, self_loops=False),
        }

    def _jacobi_bases(self, adjacency, hidden: Tensor) -> List[Tensor]:
        """Evaluate P_k^{(a,b)}(Ã) · hidden via the three-term recurrence."""
        a, b = self.a, self.b
        bases: List[Tensor] = [hidden]
        if self.poly_order >= 1:
            first = sparse_matmul(adjacency, hidden) * ((a + b + 2.0) / 2.0) + hidden * ((a - b) / 2.0)
            bases.append(first)
        for k in range(2, self.poly_order + 1):
            c0 = 2.0 * k * (k + a + b) * (2.0 * k + a + b - 2.0)
            c1 = (2.0 * k + a + b - 1.0) * (2.0 * k + a + b) * (2.0 * k + a + b - 2.0)
            c2 = (2.0 * k + a + b - 1.0) * (a ** 2 - b ** 2)
            c3 = 2.0 * (k + a - 1.0) * (k + b - 1.0) * (2.0 * k + a + b)
            term = sparse_matmul(adjacency, bases[-1]) * (c1 / c0) + bases[-1] * (c2 / c0)
            term = term - bases[-2] * (c3 / c0)
            bases.append(term)
        return bases

    def forward(self, cache: Dict[str, object]) -> Tensor:
        hidden = self.mlp(cache["x"])
        bases = self._jacobi_bases(cache["adj"], hidden)
        output = None
        for k, basis in enumerate(bases):
            term = basis * self.alphas[k : k + 1]
            output = term if output is None else output + term
        return output
