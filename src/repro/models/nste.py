"""NSTE (Kollias et al., 2022) — node-specific source/target encodings.

NSTE is inspired by the 1-WL test: every node keeps two coupled roles, a
*source* embedding (how it behaves as an edge origin) and a *target*
embedding (how it behaves as an edge destination).  Each layer updates both
roles from the opposite role of the neighbours:

``S^(l) = σ( W_s [ S^(l-1) ‖ Â  T^(l-1) ] )``
``T^(l) = σ( W_t [ T^(l-1) ‖ Âᵀ S^(l-1) ] )``

and the final prediction reads the concatenation of both roles.  The paper
characterises NSTE (together with DIMPA) as a tightly coupled architecture
with recursive computation costs — the foil to ADPA's decoupled design.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.operators import add_self_loops, row_normalized
from ..nn import Dropout, Linear, Tensor, concatenate, sparse_matmul
from .base import NodeClassifier


class NSTE(NodeClassifier):
    """Directed GNN with separate source/target node embeddings."""

    directed = True

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        rng = np.random.default_rng(seed)
        self.num_layers = num_layers
        self.input_source = Linear(num_features, hidden, rng=rng)
        self.input_target = Linear(num_features, hidden, rng=rng)
        self.source_layers: List[Linear] = [Linear(2 * hidden, hidden, rng=rng) for _ in range(num_layers)]
        self.target_layers: List[Linear] = [Linear(2 * hidden, hidden, rng=rng) for _ in range(num_layers)]
        self.readout = Linear(2 * hidden, num_classes, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        return {
            "x": Tensor(graph.features),
            "out_adj": row_normalized(add_self_loops(graph.adjacency)),
            "in_adj": row_normalized(add_self_loops(graph.adjacency.T.tocsr())),
        }

    def forward(self, cache: Dict[str, object]) -> Tensor:
        x = self.dropout(cache["x"])
        out_adj, in_adj = cache["out_adj"], cache["in_adj"]
        source = self.input_source(x).relu()
        target = self.input_target(x).relu()
        for layer_index in range(self.num_layers):
            source_messages = sparse_matmul(out_adj, target)
            target_messages = sparse_matmul(in_adj, source)
            new_source = self.source_layers[layer_index](
                concatenate([self.dropout(source), source_messages], axis=1)
            ).relu()
            new_target = self.target_layers[layer_index](
                concatenate([self.dropout(target), target_messages], axis=1)
            ).relu()
            source, target = new_source, new_target
        return self.readout(concatenate([source, target], axis=1))
