"""GCNII (Chen et al., 2020) — deep GCN with initial residual and identity mapping.

Layer ``l`` computes

``X^(l) = σ( ((1-α) Ã X^(l-1) + α X^(0)) ((1-β_l) I + β_l W^(l)) )``

with ``β_l = log(λ / l + 1)``.  The initial residual + identity mapping is
what lets GCNII stay competitive at larger depth, and the paper lists it
among the strongest undirected homophilous baselines.
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.operators import symmetric_normalized_adjacency
from ..graph.transforms import to_undirected
from ..nn import Dropout, Linear, Tensor, sparse_matmul
from .base import NodeClassifier


class GCNII(NodeClassifier):
    """Simple and deep graph convolutional network."""

    directed = False

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        num_layers: int = 4,
        alpha: float = 0.1,
        lam: float = 0.5,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        rng = np.random.default_rng(seed)
        self.alpha = alpha
        self.lam = lam
        self.input_proj = Linear(num_features, hidden, rng=rng)
        self.convs: List[Linear] = [Linear(hidden, hidden, rng=rng) for _ in range(num_layers)]
        self.output_proj = Linear(hidden, num_classes, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        return {
            "x": Tensor(graph.features),
            "adj": symmetric_normalized_adjacency(to_undirected(graph).adjacency),
        }

    def forward(self, cache: Dict[str, object]) -> Tensor:
        adjacency = cache["adj"]
        x0 = self.input_proj(self.dropout(cache["x"])).relu()
        x = x0
        for layer_index, conv in enumerate(self.convs, start=1):
            beta = math.log(self.lam / layer_index + 1.0)
            x = self.dropout(x)
            support = sparse_matmul(adjacency, x) * (1.0 - self.alpha) + x0 * self.alpha
            x = (support * (1.0 - beta) + conv(support) * beta).relu()
        return self.output_proj(self.dropout(x))
