"""Graph-agnostic MLP baseline.

The weakest baseline in every table of the paper: it ignores the topology
entirely and classifies nodes from their feature vectors alone.  It also
doubles as a sanity check for the training harness — on feature-informative
synthetic datasets it must beat random guessing by a wide margin.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..graph.digraph import DirectedGraph
from ..nn import MLP, Tensor
from .base import NodeClassifier


class MLPClassifier(NodeClassifier):
    """Plain multi-layer perceptron on raw node features."""

    directed = False

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        num_layers: int = 2,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        rng = np.random.default_rng(seed)
        self.mlp = MLP(
            in_features=num_features,
            hidden_features=hidden,
            out_features=num_classes,
            num_layers=num_layers,
            dropout=dropout,
            rng=rng,
        )

    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        return {"x": Tensor(graph.features)}

    def update_preprocess(self, old_graph, new_graph, delta, cache):
        # Structure-free: the cache is the feature matrix, so any delta is
        # absorbed by rebuilding the (zero-cost) wrapper around it.
        return {"x": Tensor(new_graph.features)}

    def forward(self, cache: Dict[str, object]) -> Tensor:
        return self.mlp(cache["x"])
