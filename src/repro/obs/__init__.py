"""Observability layer: stats protocol, latency histograms, trace spans.

Everything the serving stack uses to *see* itself lives here, dependency
free, so any component (and any future subsystem) can opt in:

* :mod:`repro.obs.stats` — the ``Stats``/``StatsSource`` snapshot protocol
  (moved here from :mod:`repro.serving.stats`, which re-exports it);
* :mod:`repro.obs.histogram` — bounded log-bucketed
  :class:`LatencyHistogram` with mergeable snapshots and p50/p95/p99
  readout, replacing unbounded latency lists;
* :mod:`repro.obs.spans` — per-request :class:`RequestTrace` stage spans
  (queue / cache / forward / deliver) and the bounded :class:`TraceBuffer`
  ring of recent traces;
* :mod:`repro.obs.prometheus` — text exposition of any snapshot
  (``/metrics``) plus the strict parser the tests validate it with.
"""

from .histogram import (
    BUCKET_BOUNDS_MS,
    BUCKET_COUNT,
    HistogramStats,
    LatencyHistogram,
    bucket_index,
)
from .prometheus import (
    COUNTER_FIELDS,
    PrometheusParseError,
    escape_help,
    escape_label_value,
    format_value,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
)
from .spans import DEFAULT_TRACE_BUFFER, RequestTrace, TraceBuffer
from .stats import FLOAT_DIGITS, Stats, StatsSource

__all__ = [
    "Stats",
    "StatsSource",
    "FLOAT_DIGITS",
    "LatencyHistogram",
    "HistogramStats",
    "BUCKET_BOUNDS_MS",
    "BUCKET_COUNT",
    "bucket_index",
    "RequestTrace",
    "TraceBuffer",
    "DEFAULT_TRACE_BUFFER",
    "render_prometheus",
    "parse_prometheus",
    "PrometheusParseError",
    "COUNTER_FIELDS",
    "escape_label_value",
    "escape_help",
    "format_value",
    "sanitize_metric_name",
]
