"""Per-request trace spans: where did this request's latency go?

A mean latency says a request was slow; a trace says *why*.  Every
:class:`repro.serving.engine.InferenceTicket` carries a
:class:`RequestTrace` from the moment it is submitted.  The engine worker
marks the stage boundaries as the request moves through the pipeline:

``queue``
    submission → the worker pulls the request's micro-batch off the queue
    (includes the coalescing window);
``cache``
    logit-cache lookup plus — on a miss — the operator-cache preprocess;
``forward``
    the compiled trace replay or eager forward (≈0 on a memoised hit);
``deliver``
    fan-out of the logit rows into the ticket and callback firing.

Spans are computed as differences of consecutive marks on one monotonic
clock, and the trace's ``total_ms`` is *defined* as their sum, so the
per-stage timings always account exactly for the end-to-end figure — the
property the tail-latency benchmark asserts.

Completed traces land in a bounded :class:`TraceBuffer` ring per engine;
the HTTP front door exposes the merged recent traces at ``/traces`` so a
slow request can be debugged after the fact without any external tracing
infrastructure.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

#: default number of completed request traces each engine keeps around.
DEFAULT_TRACE_BUFFER = 256


class RequestTrace:
    """Ordered stage marks on one monotonic clock, plus small metadata.

    Cheap enough to attach to every request: recording a mark appends one
    tuple, no clock math happens until :meth:`spans` is asked for.
    """

    __slots__ = ("started_at", "wall_time", "marks", "meta")

    def __init__(self, started_at: Optional[float] = None) -> None:
        self.started_at = time.perf_counter() if started_at is None else started_at
        #: wall-clock birth time (the monotonic marks only order spans).
        self.wall_time = time.time()
        self.marks: List[Tuple[str, float]] = []
        self.meta: Dict[str, object] = {}

    def mark(self, stage: str, at: Optional[float] = None) -> None:
        """Close the current stage at ``at`` (default: now).

        One shared timestamp may be passed for every ticket of a batch so
        their spans stay comparable.
        """
        self.marks.append((stage, time.perf_counter() if at is None else at))

    def annotate(self, key: str, value: object) -> None:
        """Attach a metadata entry (node count, shard, error, ...)."""
        self.meta[key] = value

    def spans(self) -> Dict[str, float]:
        """Stage → duration in ms, in recorded order.

        Durations are differences of consecutive marks starting from
        ``started_at``; a stage recorded twice folds into one entry.
        """
        out: Dict[str, float] = {}
        previous = self.started_at
        for stage, at in self.marks:
            out[stage] = out.get(stage, 0.0) + 1e3 * (at - previous)
            previous = at
        return out

    @property
    def total_ms(self) -> float:
        """End-to-end duration, by definition the sum of the spans."""
        return sum(self.spans().values())

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (what the ring buffer and ``/traces`` store)."""
        spans = self.spans()
        payload: Dict[str, object] = {
            "started_at": self.started_at,
            "wall_time": self.wall_time,
            "spans": {stage: round(value, 6) for stage, value in spans.items()},
            "total_ms": round(sum(spans.values()), 6),
        }
        if self.meta:
            payload["meta"] = dict(self.meta)
        return payload


class TraceBuffer:
    """Bounded, thread-safe ring of recently completed trace dicts.

    The engine worker appends; HTTP/stats readers snapshot concurrently.
    Old traces fall off the far end, so memory stays constant no matter
    how long the server runs.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_BUFFER) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "deque[Dict[str, object]]" = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def append(self, trace: Dict[str, object]) -> None:
        with self._lock:
            self._entries.append(trace)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Most-recent-first list of buffered traces (up to ``limit``)."""
        with self._lock:
            entries = list(self._entries)
        entries.reverse()
        return entries if limit is None else entries[: max(0, limit)]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
