"""Prometheus text exposition (and a strict parser) for stats snapshots.

:func:`render_prometheus` turns any :meth:`repro.obs.Stats.as_dict`
snapshot into `text exposition format 0.0.4
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ without
any dependency — the ``/metrics`` endpoint of
:class:`repro.serving.http.HttpServer` is this function applied to the
router snapshot plus the HTTP server's own counters.

The walker is generic so that *every* counter and histogram a component
adds to its stats dataclass shows up in ``/metrics`` automatically:

* numeric leaves become ``gauge`` samples — except the well-known
  monotonic fields (requests, hits, rejected, ...), which become
  ``counter`` samples with the conventional ``_total`` suffix;
* a nested :class:`repro.obs.histogram.HistogramStats` dict becomes a full
  ``histogram`` family (``_bucket{le=...}`` cumulative series, ``_sum``,
  ``_count``) using the stable bucket layout of
  :data:`repro.obs.histogram.BUCKET_BOUNDS_MS`;
* the ``shards`` and ``workers`` mappings become ``shard`` / ``worker``
  label dimensions rather than name components, so per-shard series (and
  per-worker-process series in cluster mode) aggregate the Prometheus way;
* strings and ``None`` are skipped (they belong in ``/stats``, not in a
  numeric time series).

:func:`parse_prometheus` is the matching strict parser: it validates line
grammar, label escaping and histogram invariants (cumulative buckets,
terminal ``+Inf`` equal to ``_count``), and is what the test-suite and
``bench_http`` use to assert the exposition is well-formed.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Tuple

from .histogram import BUCKET_BOUNDS_MS, BUCKET_COUNT

#: snapshot fields that are monotonically increasing event counts; they
#: are exported as Prometheus counters with the ``_total`` suffix.
COUNTER_FIELDS = frozenset(
    {
        "requests",
        "batches",
        "forwards",
        "hits",
        "misses",
        "evictions",
        "submitted",
        "rejected",
        "compiles",
        "fallbacks",
        "connections",
        "shed",
    }
)

#: mappings whose keys are instance names, not field names: the key becomes
#: a label value instead of a metric-name component.  ``workers`` nests
#: *outside* ``shards`` in cluster snapshots, so aggregated series from N
#: worker processes carry a ``worker`` label and never collide on shard
#: name alone; ``hosts`` labels the cross-machine rollup by hostname.
LABEL_DIMENSIONS = {
    "shards": ("shard", "shard"),
    "workers": ("worker", "worker"),
    "hosts": ("host", "host"),
}

#: keys identifying a HistogramStats.as_dict() payload.
_HISTOGRAM_KEYS = frozenset({"count", "sum_ms", "counts"})

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)(?:\s+(-?\d+))?$"
)


class PrometheusParseError(ValueError):
    """The text is not valid Prometheus exposition format 0.0.4."""


def sanitize_metric_name(name: str) -> str:
    """Coerce an arbitrary snapshot path into a legal metric name."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not cleaned or not re.match(r"[a-zA-Z_:]", cleaned):
        cleaned = "_" + cleaned
    return cleaned


def escape_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def escape_help(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n")


def format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{key}="{escape_label_value(str(value))}"' for key, value in labels.items()
    )
    return "{" + rendered + "}"


class _Family:
    __slots__ = ("name", "type", "help", "samples")

    def __init__(self, name: str, mtype: str, help_text: str) -> None:
        self.name = name
        self.type = mtype
        self.help = help_text
        self.samples: List[Tuple[str, Dict[str, str], float]] = []


def _is_histogram(value: Mapping) -> bool:
    return _HISTOGRAM_KEYS.issubset(value.keys())


def render_prometheus(
    snapshot: Mapping[str, object], prefix: str = "repro"
) -> str:
    """Render a stats snapshot as Prometheus text exposition.

    ``prefix`` namespaces every family (e.g. ``repro_router``); nested
    component dicts extend the name, the ``shards`` mapping becomes a
    ``shard`` label, histogram payloads expand into bucket series.
    """
    families: "Dict[str, _Family]" = {}

    def family(name: str, mtype: str, help_text: str) -> _Family:
        existing = families.get(name)
        if existing is None:
            existing = families[name] = _Family(name, mtype, help_text)
        return existing

    def emit_histogram(name: str, labels: Dict[str, str], payload: Mapping) -> None:
        counts = payload.get("counts") or ()
        if len(counts) != BUCKET_COUNT:  # foreign dict that merely looks alike
            return
        base = sanitize_metric_name(f"{name}_ms")
        hist = family(base, "histogram", f"log-bucketed latency histogram {base}")
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += int(bucket_count)
            bound = (
                format_value(BUCKET_BOUNDS_MS[index])
                if index < len(BUCKET_BOUNDS_MS)
                else "+Inf"
            )
            hist.samples.append(
                (f"{base}_bucket", {**labels, "le": bound}, cumulative)
            )
        hist.samples.append((f"{base}_sum", dict(labels), float(payload["sum_ms"])))
        hist.samples.append((f"{base}_count", dict(labels), int(payload["count"])))

    def walk(value: object, path: Tuple[str, ...], labels: Dict[str, str]) -> None:
        if value is None or isinstance(value, str):
            return
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, (int, float)):
            leaf = path[-1] if path else "value"
            name = sanitize_metric_name("_".join((prefix,) + path))
            if leaf in COUNTER_FIELDS:
                counter = family(
                    f"{name}_total", "counter", f"monotonic event count {name}"
                )
                counter.samples.append((f"{name}_total", dict(labels), value))
            else:
                gauge = family(name, "gauge", f"instantaneous value {name}")
                gauge.samples.append((name, dict(labels), value))
            return
        if isinstance(value, Mapping):
            if _is_histogram(value):
                emit_histogram("_".join((prefix,) + path), labels, value)
                return
            for key, child in value.items():
                key = str(key)
                if key in LABEL_DIMENSIONS and isinstance(child, Mapping):
                    part, label_name = LABEL_DIMENSIONS[key]
                    for instance, sub in child.items():
                        walk(sub, path + (part,), {**labels, label_name: str(instance)})
                else:
                    walk(child, path + (key,), labels)

    walk(snapshot, (), {})

    lines: List[str] = []
    for fam in families.values():
        lines.append(f"# HELP {fam.name} {escape_help(fam.help)}")
        lines.append(f"# TYPE {fam.name} {fam.type}")
        for sample_name, labels, value in fam.samples:
            lines.append(
                f"{sample_name}{_format_labels(labels)} {format_value(value)}"
            )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------- #
# Strict parser (tests + bench validation)
# ---------------------------------------------------------------------- #
def _parse_labels(raw: str, line: str) -> Dict[str, str]:
    """Parse ``{k="v",...}`` with escape handling; raises on bad grammar."""
    labels: Dict[str, str] = {}
    body = raw[1:-1]
    position = 0
    while position < len(body):
        match = re.match(r'([a-zA-Z_][a-zA-Z0-9_]*)="', body[position:])
        if match is None:
            raise PrometheusParseError(f"bad label pair at {position}: {line!r}")
        key = match.group(1)
        position += match.end()
        value_chars: List[str] = []
        while True:
            if position >= len(body):
                raise PrometheusParseError(f"unterminated label value: {line!r}")
            char = body[position]
            if char == "\\":
                if position + 1 >= len(body):
                    raise PrometheusParseError(f"dangling escape: {line!r}")
                escape = body[position + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(escape, "\\" + escape)
                )
                position += 2
            elif char == '"':
                position += 1
                break
            else:
                value_chars.append(char)
                position += 1
        labels[key] = "".join(value_chars)
        if position < len(body):
            if body[position] != ",":
                raise PrometheusParseError(f"expected ',' between labels: {line!r}")
            position += 1
    return labels


def _parse_number(token: str, line: str) -> float:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    if token == "NaN":
        return math.nan
    try:
        return float(token)
    except ValueError:
        raise PrometheusParseError(f"bad sample value {token!r}: {line!r}") from None


def parse_prometheus(text: str) -> Dict[str, Dict[str, object]]:
    """Parse and validate Prometheus text exposition.

    Returns ``{family_name: {"type": ..., "help": ..., "samples":
    [(sample_name, labels, value), ...]}}``.  Raises
    :class:`PrometheusParseError` on any malformed line, unknown metric
    type, or histogram whose buckets are not cumulative / not terminated
    by ``+Inf`` matching ``_count``.
    """
    families: Dict[str, Dict[str, object]] = {}

    def family(name: str) -> Dict[str, object]:
        return families.setdefault(
            name, {"type": None, "help": None, "samples": []}
        )

    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # arbitrary comments are legal
            name = parts[2]
            if not _NAME_RE.match(name):
                raise PrometheusParseError(f"bad metric name in comment: {line!r}")
            if parts[1] == "TYPE":
                mtype = parts[3].strip() if len(parts) > 3 else ""
                if mtype not in ("counter", "gauge", "histogram", "summary", "untyped"):
                    raise PrometheusParseError(f"unknown metric type: {line!r}")
                family(name)["type"] = mtype
            else:
                family(name)["help"] = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise PrometheusParseError(f"malformed sample line: {line!r}")
        sample_name, raw_labels, raw_value = match.group(1), match.group(2), match.group(3)
        labels = _parse_labels(raw_labels, line) if raw_labels else {}
        value = _parse_number(raw_value, line)
        base = re.sub(r"_(bucket|sum|count|total)$", "", sample_name)
        target = base if base in families else sample_name
        family(target)["samples"].append((sample_name, labels, value))

    _validate_histograms(families)
    return families


def _labels_without(labels: Mapping[str, str], key: str) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted((k, v) for k, v in labels.items() if k != key))


def _validate_histograms(families: Mapping[str, Dict[str, object]]) -> None:
    for name, fam in families.items():
        if fam["type"] != "histogram":
            continue
        buckets: Dict[Tuple, List[Tuple[float, float]]] = {}
        counts: Dict[Tuple, float] = {}
        for sample_name, labels, value in fam["samples"]:  # type: ignore[misc]
            series = _labels_without(labels, "le")
            if sample_name == f"{name}_bucket":
                if "le" not in labels:
                    raise PrometheusParseError(f"bucket without le label in {name}")
                bound = _parse_number(labels["le"], f"{name}_bucket le")
                buckets.setdefault(series, []).append((bound, value))
            elif sample_name == f"{name}_count":
                counts[series] = value
        for series, pairs in buckets.items():
            ordered = sorted(pairs, key=lambda pair: pair[0])
            cumulative: Optional[float] = None
            for bound, value in ordered:
                if cumulative is not None and value < cumulative:
                    raise PrometheusParseError(
                        f"histogram {name} buckets are not cumulative"
                    )
                cumulative = value
            if not ordered or not math.isinf(ordered[-1][0]):
                raise PrometheusParseError(f"histogram {name} lacks a +Inf bucket")
            if series in counts and ordered[-1][1] != counts[series]:
                raise PrometheusParseError(
                    f"histogram {name} +Inf bucket disagrees with _count"
                )
