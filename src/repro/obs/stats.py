"""One stats protocol for every observable component.

Before this module, each serving layer hand-rolled its own counters
snapshot: :class:`~repro.serving.cache.CacheStats` for the LRUs,
``ServerStats`` for the engine, ``RouterStats`` for the front door — three
``as_dict()`` implementations that drifted in rounding and nesting.  They
now share one contract:

* every snapshot is a frozen-ish dataclass deriving from :class:`Stats`;
* :meth:`Stats.as_dict` is generic — it walks the dataclass fields,
  recurses into nested :class:`Stats` values (and dicts of them), rounds
  floats and appends the ``derived`` properties (computed rates like
  ``hit_rate``), so a new counter is one field, not a field plus a dict
  entry to forget;
* every stats-bearing component (``LRUCache``, ``OperatorCache``,
  ``TraceCache``, ``InferenceServer``, ``ShardRouter``, ``HttpServer``)
  exposes ``snapshot() -> dict`` ≡ ``stats().as_dict()``, which is the
  shape the ``/stats`` endpoint and the benchmarks read.

The protocol lives in :mod:`repro.obs` (the observability layer) and is
re-exported by :mod:`repro.serving.stats` for existing import sites.
"""

from __future__ import annotations

import dataclasses
from typing import ClassVar, Dict, Tuple

#: floats in snapshots are rounded to this many digits — enough for
#: latency-in-ms / rate readouts, stable across platforms in JSON diffs.
FLOAT_DIGITS = 4


def _convert(value):
    if isinstance(value, Stats):
        return value.as_dict()
    if isinstance(value, dict):
        return {key: _convert(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        # Histogram bucket counts (and any future sequence field) become
        # plain lists, matching what a JSON round trip would produce.
        return [_convert(entry) for entry in value]
    if isinstance(value, float):
        return round(value, FLOAT_DIGITS)
    return value


class Stats:
    """Base class of every serving counters snapshot.

    Sub-classes are dataclasses; ``derived`` lists property names (computed
    rates) that ride along in :meth:`as_dict` next to the stored fields.
    """

    derived: ClassVar[Tuple[str, ...]] = ()

    def as_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {}
        for field in dataclasses.fields(self):
            out[field.name] = _convert(getattr(self, field.name))
        for name in self.derived:
            out[name] = _convert(getattr(self, name))
        return out


class StatsSource:
    """Mixin for components owning counters: ``snapshot()`` in one place.

    Sub-classes implement ``stats() -> Stats``; ``snapshot()`` is the
    JSON-ready dict every consumer reads, so the wire shape cannot drift
    from the typed one.
    """

    def stats(self) -> Stats:  # pragma: no cover - abstract
        raise NotImplementedError

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready counters, ``stats().as_dict()`` by definition."""
        return self.stats().as_dict()
