"""Streaming latency histograms with fixed log-spaced buckets.

The serving layer used to keep every completed request's latency in an
unbounded Python list, which grows forever under sustained traffic and can
only answer ``mean``/``max``.  :class:`LatencyHistogram` replaces it with a
fixed-size accumulator:

* **bounded** — one integer per bucket, ``O(1)`` per :meth:`record`, no
  allocation on the hot path, regardless of how many requests it has seen;
* **log-spaced** — :data:`BUCKET_BOUNDS_MS` covers 1 µs to 100 s with ten
  buckets per decade (each bucket ~26 % wider than the last), so the same
  layout resolves a 50 µs memoised hit and a 2 s cold preprocess;
* **mergeable** — per-shard histograms sum bucket-wise into a router-wide
  one (:meth:`HistogramStats.merged`), the property Prometheus relies on
  for cross-instance aggregation;
* **quantile readout** — p50/p95/p99 by cumulative walk with linear
  interpolation inside the winning bucket, clamped to the exact observed
  ``min``/``max`` (which are tracked precisely, as is the running sum, so
  ``mean_ms``/``max_ms`` stay exact rather than bucketed).

The bucket layout is part of the snapshot stability contract: the bounds
are a pure function of the module constants below, so ``BENCH_*.json``
diffs and scraped ``/metrics`` series stay comparable across runs.  Any
change to the layout must bump the constants deliberately.
"""

from __future__ import annotations

import math
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence, Tuple

from .stats import Stats, StatsSource

#: decades spanned by the finite buckets: 10^-3 ms (1 µs) .. 10^5 ms (100 s).
LOW_EXPONENT = -3
DECADES = 8

#: log-resolution: each bucket's upper bound is 10^(1/10) ≈ 1.26x the last,
#: bounding the relative quantile error at ~26 % of the true value.
BUCKETS_PER_DECADE = 10

#: inclusive upper bounds (milliseconds) of the finite buckets; one
#: overflow bucket (+Inf) rides after them, so a histogram stores
#: ``len(BUCKET_BOUNDS_MS) + 1`` counts.
BUCKET_BOUNDS_MS: Tuple[float, ...] = tuple(
    10.0 ** (LOW_EXPONENT + index / BUCKETS_PER_DECADE)
    for index in range(DECADES * BUCKETS_PER_DECADE + 1)
)

#: total bucket count including the overflow bucket.
BUCKET_COUNT = len(BUCKET_BOUNDS_MS) + 1

_EMPTY_COUNTS: Tuple[int, ...] = (0,) * BUCKET_COUNT


def bucket_index(value_ms: float) -> int:
    """Index of the bucket holding ``value_ms`` (last index = overflow).

    Bucket upper bounds are inclusive, mirroring Prometheus ``le``
    semantics; non-positive values land in bucket 0.
    """
    if value_ms <= BUCKET_BOUNDS_MS[0]:
        return 0
    return bisect_left(BUCKET_BOUNDS_MS, value_ms)


@dataclass
class HistogramStats(Stats):
    """Point-in-time histogram snapshot (see :class:`repro.obs.Stats`).

    ``counts`` always has :data:`BUCKET_COUNT` entries in bucket order, so
    snapshots merge and diff positionally; ``sum_ms``/``min_ms``/``max_ms``
    are exact observed values, not bucket bounds.
    """

    derived = ("mean_ms", "p50_ms", "p95_ms", "p99_ms")

    count: int = 0
    sum_ms: float = 0.0
    min_ms: float = 0.0
    max_ms: float = 0.0
    counts: Tuple[int, ...] = _EMPTY_COUNTS

    @property
    def mean_ms(self) -> float:
        return self.sum_ms / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated q-quantile in ms (linear within the winning bucket)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            below = cumulative
            cumulative += bucket_count
            if cumulative >= rank:
                lower = BUCKET_BOUNDS_MS[index - 1] if index > 0 else 0.0
                upper = (
                    BUCKET_BOUNDS_MS[index]
                    if index < len(BUCKET_BOUNDS_MS)
                    else max(self.max_ms, lower)
                )
                estimate = lower + (upper - lower) * ((rank - below) / bucket_count)
                return min(max(estimate, self.min_ms), self.max_ms)
        return self.max_ms  # pragma: no cover - cumulative always reaches count

    @property
    def p50_ms(self) -> float:
        return self.quantile(0.50)

    @property
    def p95_ms(self) -> float:
        return self.quantile(0.95)

    @property
    def p99_ms(self) -> float:
        return self.quantile(0.99)

    def cumulative_buckets(self) -> Tuple[Tuple[float, int], ...]:
        """Prometheus-style ``(le_bound_ms, cumulative_count)`` pairs.

        The final pair carries ``math.inf`` and always equals ``count``.
        """
        pairs = []
        running = 0
        for index, bucket_count in enumerate(self.counts):
            running += bucket_count
            bound = BUCKET_BOUNDS_MS[index] if index < len(BUCKET_BOUNDS_MS) else math.inf
            pairs.append((bound, running))
        return tuple(pairs)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "HistogramStats":
        """Rebuild a snapshot from its :meth:`as_dict` form.

        This is the cross-process half of the merge story: worker processes
        ship their snapshots as JSON (``Stats.as_dict`` output), and the
        supervisor reconstructs them here before calling :meth:`merged`.
        Derived fields (mean/quantiles) in the payload are ignored — they
        are recomputed from the counts.  A payload whose ``counts`` length
        does not match :data:`BUCKET_COUNT` is rejected loudly, because
        silently merging histograms with different bucket layouts would
        corrupt every quantile.
        """
        counts = tuple(int(entry) for entry in payload.get("counts", ()))
        if len(counts) != BUCKET_COUNT:
            raise ValueError(
                f"histogram payload has {len(counts)} buckets, expected {BUCKET_COUNT}"
            )
        return cls(
            count=int(payload.get("count", 0)),
            sum_ms=float(payload.get("sum_ms", 0.0)),
            min_ms=float(payload.get("min_ms", 0.0)),
            max_ms=float(payload.get("max_ms", 0.0)),
            counts=counts,
        )

    @classmethod
    def merged(cls, parts: Iterable["HistogramStats"]) -> "HistogramStats":
        """Bucket-wise sum of several snapshots (e.g. one per shard)."""
        populated = [part for part in parts if part.count]
        if not populated:
            return cls()
        counts = tuple(sum(column) for column in zip(*(part.counts for part in populated)))
        return cls(
            count=sum(part.count for part in populated),
            sum_ms=sum(part.sum_ms for part in populated),
            min_ms=min(part.min_ms for part in populated),
            max_ms=max(part.max_ms for part in populated),
            counts=counts,
        )


@dataclass
class _HistogramState:
    """Mutable accumulator behind the lock (kept out of the public type)."""

    counts: list = field(default_factory=lambda: [0] * BUCKET_COUNT)
    count: int = 0
    sum_ms: float = 0.0
    min_ms: float = math.inf
    max_ms: float = 0.0


class LatencyHistogram(StatsSource):
    """Thread-safe streaming histogram of latencies in milliseconds.

    Records are O(1) and bounded in memory; :meth:`stats` returns an
    immutable :class:`HistogramStats` snapshot that embeds anywhere the
    :class:`repro.obs.Stats` protocol reaches (``ServerStats``,
    ``RouterStats``, cache stats, ``/metrics``).
    """

    def __init__(self) -> None:
        self._state = _HistogramState()
        self._lock = threading.Lock()

    def record(self, value_ms: float) -> None:
        """Add one observation (milliseconds; non-finite values ignored)."""
        if not math.isfinite(value_ms):
            return
        index = bucket_index(value_ms)
        with self._lock:
            state = self._state
            state.counts[index] += 1
            state.count += 1
            state.sum_ms += value_ms
            if value_ms < state.min_ms:
                state.min_ms = value_ms
            if value_ms > state.max_ms:
                state.max_ms = value_ms

    def record_seconds(self, value_seconds: float) -> None:
        self.record(1e3 * value_seconds)

    def extend(self, values_ms: Sequence[float]) -> None:
        for value in values_ms:
            self.record(value)

    def __len__(self) -> int:
        with self._lock:
            return self._state.count

    def clear(self) -> None:
        with self._lock:
            self._state = _HistogramState()

    def stats(self) -> HistogramStats:
        with self._lock:
            state = self._state
            return HistogramStats(
                count=state.count,
                sum_ms=state.sum_ms,
                min_ms=state.min_ms if state.count else 0.0,
                max_ms=state.max_ms,
                counts=tuple(state.counts),
            )
