"""Correlation between directed-pattern operators and node profiles (Sec. III-B).

The paper models a directed-pattern operator ``G_d`` and the node profiles
``N`` as random variables and measures their Pearson correlation
``r(G_d, N)`` (Eq. 4-7).  The concrete quantity the implementation needs is
"how strongly does being connected under pattern ``G_d`` predict sharing a
node profile".  We therefore compute, over the population of ordered node
pairs ``(u, v)``:

* ``X(u, v) = G_d(u, v) ∈ {0, 1}`` — the pattern indicator, and
* ``Z(u, v) = 1[profile(u) == profile(v)]`` — the profile-agreement
  indicator (labels by default, feature-cluster ids optionally),

and return their Pearson correlation.  Both variables are binary, so every
moment can be evaluated from sparse matrices without materialising the
``n × n`` pair space:

``E[XZ]`` is the fraction of pattern edges joining same-profile nodes,
``E[X]`` is the pattern density and ``E[Z] = Σ_c p_c²`` follows from the
profile distribution.  The coefficient of determination is ``R² = r²``.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np
import scipy.sparse as sp

from ..graph.digraph import DirectedGraph
from ..graph.operators import directed_pattern_operators


def _profile_vector(graph: DirectedGraph, profile: Union[str, np.ndarray]) -> np.ndarray:
    """Resolve the node-profile vector used as ``N``.

    ``"labels"`` uses the class labels directly (the paper's efficient
    implementation choice, Sec. III-C).  ``"features"`` discretises the
    feature matrix into clusters by assigning each node to its nearest
    class-agnostic k-means-style centroid seeded from quantiles; this keeps
    the option of label-free guidance available.  An explicit integer array
    can also be supplied.
    """
    if isinstance(profile, np.ndarray):
        return np.asarray(profile, dtype=np.int64)
    if profile == "labels":
        return graph.labels
    if profile == "features":
        return _feature_clusters(graph.features, num_clusters=max(graph.num_classes, 2))
    raise ValueError(f"unknown profile {profile!r}; expected 'labels', 'features' or an array")


def _feature_clusters(features: np.ndarray, num_clusters: int, num_iterations: int = 10) -> np.ndarray:
    """Lightweight k-means used to derive discrete profiles from features."""
    rng = np.random.default_rng(0)
    n = features.shape[0]
    centroids = features[rng.choice(n, size=min(num_clusters, n), replace=False)]
    assignment = np.zeros(n, dtype=np.int64)
    for _ in range(num_iterations):
        distances = ((features[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
        assignment = distances.argmin(axis=1)
        for cluster in range(centroids.shape[0]):
            members = features[assignment == cluster]
            if members.size:
                centroids[cluster] = members.mean(axis=0)
    return assignment


def pattern_profile_correlation(
    pattern: sp.spmatrix,
    profiles: np.ndarray,
) -> float:
    """Pearson correlation ``r(G_d, N)`` for one pattern matrix.

    Computed over the ``n * (n - 1)`` ordered node pairs (self-pairs are
    excluded, matching the self-loop-free pattern matrices).
    """
    pattern = sp.csr_matrix(pattern)
    profiles = np.asarray(profiles, dtype=np.int64)
    n = pattern.shape[0]
    if n < 2:
        return 0.0
    total_pairs = n * (n - 1)

    coo = pattern.tocoo()
    off_diagonal = coo.row != coo.col
    rows, cols = coo.row[off_diagonal], coo.col[off_diagonal]
    num_pattern_pairs = rows.size
    if num_pattern_pairs == 0 or num_pattern_pairs == total_pairs:
        return 0.0

    # Moments of the pattern indicator X.
    mean_x = num_pattern_pairs / total_pairs
    var_x = mean_x * (1.0 - mean_x)

    # Moments of the profile-agreement indicator Z over all ordered pairs.
    counts = np.bincount(profiles)
    same_profile_pairs = float(np.sum(counts * (counts - 1)))
    mean_z = same_profile_pairs / total_pairs
    var_z = mean_z * (1.0 - mean_z)
    if var_x <= 0 or var_z <= 0:
        return 0.0

    # Cross moment E[XZ]: fraction of pairs that are pattern-connected AND agree.
    agreeing_pattern_pairs = float(np.sum(profiles[rows] == profiles[cols]))
    mean_xz = agreeing_pattern_pairs / total_pairs

    covariance = mean_xz - mean_x * mean_z
    return float(covariance / np.sqrt(var_x * var_z))


def pattern_correlations(
    graph: DirectedGraph,
    order: int = 2,
    profile: Union[str, np.ndarray] = "labels",
    patterns: Optional[Dict[str, sp.spmatrix]] = None,
) -> Dict[str, float]:
    """Correlation ``r(G_d, N)`` for every k-order DP operator of the graph."""
    profiles = _profile_vector(graph, profile)
    if patterns is None:
        patterns = directed_pattern_operators(graph.adjacency, order=order, binarize=True)
    return {
        name: pattern_profile_correlation(matrix, profiles)
        for name, matrix in patterns.items()
    }


def pattern_r_squared(
    graph: DirectedGraph,
    order: int = 2,
    profile: Union[str, np.ndarray] = "labels",
    patterns: Optional[Dict[str, sp.spmatrix]] = None,
) -> Dict[str, float]:
    """Coefficients of determination ``R²(G_d, N)`` per DP operator."""
    correlations = pattern_correlations(graph, order=order, profile=profile, patterns=patterns)
    return {name: value ** 2 for name, value in correlations.items()}
