"""AMUD: Adaptive Modeling of graphs as Undirected or Directed (paper Sec. III)."""

from .correlation import (
    pattern_correlations,
    pattern_profile_correlation,
    pattern_r_squared,
)
from .guidance import (
    AmudDecision,
    DEFAULT_THRESHOLD,
    amud_decide,
    amud_score,
    apply_amud,
    guidance_score,
)

__all__ = [
    "pattern_profile_correlation",
    "pattern_correlations",
    "pattern_r_squared",
    "AmudDecision",
    "DEFAULT_THRESHOLD",
    "guidance_score",
    "amud_score",
    "amud_decide",
    "apply_amud",
]
