"""AMUD guidance score and modeling decision (Sec. III-C, Eq. 8, Alg. 1 lines 1-9).

Given the per-pattern coefficients of determination ``R²(G_d, N)``, AMUD
computes the guidance score

``S = α * sqrt( Σ_{i<j} (R²_i − R²_j)² / C )``

where the sum runs over pairs of distinct DP operators, ``C`` is the number
of pairs over which the spread is averaged (the paper uses ``C(4, 2) = 6``,
the pairs among the four 2-order composite operators) and
``α = 1 / max_i R²_i`` rescales the sparsity-driven small magnitudes.
``S > θ`` (θ = 0.5 by default) means the directed topology carries
profile-relevant structure that an undirected transformation would destroy,
so the graph should stay directed; otherwise it should be undirected.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.transforms import to_undirected
from .correlation import pattern_r_squared

#: Default decision threshold θ from the paper.
DEFAULT_THRESHOLD = 0.5

#: Number of operator pairs the squared differences are averaged over, the
#: paper's ``C(4, 2)`` normaliser (the pairs among the 2-order composites).
DEFAULT_PAIR_NORMALIZER = 6.0


def _pattern_order(name: str) -> int:
    """Word length of a DP operator name, e.g. ``"A"``→1, ``"AAt"``→2."""
    return name.replace("At", "B").count("A") + name.replace("At", "B").count("B")


@dataclass
class AmudDecision:
    """Outcome of running AMUD on one graph."""

    score: float
    keep_directed: bool
    threshold: float
    r_squared: Dict[str, float] = field(default_factory=dict)
    correlations: Dict[str, float] = field(default_factory=dict)

    @property
    def modeling(self) -> str:
        """``"directed"`` (AMDirected) or ``"undirected"`` (AMUndirected)."""
        return "directed" if self.keep_directed else "undirected"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AmudDecision(score={self.score:.3f}, modeling={self.modeling!r}, "
            f"threshold={self.threshold})"
        )


def guidance_score(
    r_squared: Dict[str, float],
    pair_normalizer: Optional[float] = DEFAULT_PAIR_NORMALIZER,
) -> float:
    """Evaluate Eq. (8) from a dict of per-pattern R² values.

    The squared differences are taken between DP operators of the *same*
    order (``A`` vs ``Aᵀ``, and among ``AA, AᵀAᵀ, AAᵀ, AᵀA``, …): only those
    contrasts isolate the effect of edge direction.  Mixing orders would
    conflate directionality with the natural decay of correlation at longer
    ranges, which is not what the guidance is about.
    """
    values = list(r_squared.values())
    if len(values) < 2:
        return 0.0
    max_value = max(values)
    if max_value <= 0:
        return 0.0

    # Apply the α = 1/max rescale *before* differencing.  Dividing first is
    # algebraically identical but numerically robust: for subnormal R²
    # values the squared differences underflow to 0 while 1/max overflows
    # to inf, and the old ``alpha * spread`` product became inf·0 = nan.
    by_order: Dict[int, list] = {}
    for name, value in r_squared.items():
        by_order.setdefault(_pattern_order(name), []).append(value / max_value)
    squared_differences = []
    for group in by_order.values():
        squared_differences.extend(
            (a - b) ** 2 for a, b in itertools.combinations(group, 2)
        )
    if not squared_differences:
        return 0.0
    if pair_normalizer is None:
        pair_normalizer = float(len(squared_differences))
    return float(math.sqrt(sum(squared_differences) / pair_normalizer))


def amud_score(
    graph: DirectedGraph,
    order: int = 2,
    profile: Union[str, np.ndarray] = "labels",
    pair_normalizer: Optional[float] = DEFAULT_PAIR_NORMALIZER,
) -> float:
    """Compute the AMUD guidance score ``S`` for a graph."""
    r_squared = pattern_r_squared(graph, order=order, profile=profile)
    return guidance_score(r_squared, pair_normalizer=pair_normalizer)


def amud_decide(
    graph: DirectedGraph,
    threshold: float = DEFAULT_THRESHOLD,
    order: int = 2,
    profile: Union[str, np.ndarray] = "labels",
    pair_normalizer: Optional[float] = DEFAULT_PAIR_NORMALIZER,
) -> AmudDecision:
    """Run the full AMUD guidance (Alg. 1 lines 1-9) and return the decision."""
    from .correlation import pattern_correlations

    correlations = pattern_correlations(graph, order=order, profile=profile)
    r_squared = {name: value ** 2 for name, value in correlations.items()}
    score = guidance_score(r_squared, pair_normalizer=pair_normalizer)
    # A graph that is already undirected carries no usable directed signal.
    keep_directed = bool(score > threshold) and graph.is_directed()
    return AmudDecision(
        score=score,
        keep_directed=keep_directed,
        threshold=threshold,
        r_squared=r_squared,
        correlations=correlations,
    )


def apply_amud(
    graph: DirectedGraph,
    threshold: float = DEFAULT_THRESHOLD,
    order: int = 2,
    profile: Union[str, np.ndarray] = "labels",
) -> tuple:
    """Run AMUD and return ``(modeled_graph, decision)``.

    ``modeled_graph`` is the original graph when the decision is to keep
    directed edges and its coarse undirected transformation otherwise — the
    two outputs named AMDirected / AMUndirected in Fig. 1.
    """
    decision = amud_decide(graph, threshold=threshold, order=order, profile=profile)
    if decision.keep_directed:
        return graph, decision
    return to_undirected(graph), decision
