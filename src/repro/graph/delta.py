"""Live graph mutation: :class:`GraphDelta` and its incremental application.

A :class:`GraphDelta` is a batch of edits against one
:class:`~repro.graph.digraph.DirectedGraph` — edge inserts/deletes,
feature-row replacements, label updates and split-mask flips.
:func:`apply_delta` (also exposed as ``DirectedGraph.apply_delta``)
returns the mutated graph *with its content fingerprint maintained
incrementally*: only the touched adjacency/feature rows are re-hashed
against the canonicalised baseline and recombined, which is bit-identical
to a full rehash by construction (the digest is built from per-row
sub-digests, see :mod:`repro.fingerprint`) at a fraction of the cost.

The adjacency edit itself is CSR row surgery: untouched row segments are
bulk-copied, touched rows rebuilt (removals applied first, then inserts,
last-wins on duplicates, columns re-sorted), so the result is already in
canonical form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..fingerprint import (
    _array_digest_bytes,
    csr_row_digest,
    dense_row_digest,
    fingerprint_state,
)
from .digraph import DirectedGraph

EdgeLike = Union[Tuple[int, int], Sequence[int]]

#: mask aliases accepted by ``set_masks`` → DirectedGraph attribute names.
_MASK_ATTRS = {"train": "train_mask", "val": "val_mask", "test": "test_mask"}


@dataclass(frozen=True)
class GraphDelta:
    """A batch of live edits to apply against one graph.

    Parameters
    ----------
    add_edges:
        ``(m, 2)`` array-like of directed ``(source, target)`` pairs to
        insert (or re-weight when the edge already exists).
    add_weights:
        Optional weights for ``add_edges`` (scalar or ``(m,)``); defaults
        to 1.0.  Zero weights are rejected — use ``remove_edges``.
    remove_edges:
        ``(m, 2)`` array-like of directed pairs to delete.  Removing an
        absent edge is a no-op.  Removals are applied before inserts, so a
        pair present in both ends up inserted.
    set_features:
        ``{node: row}`` feature-row replacements.
    set_labels:
        ``{node: label}`` label updates.
    set_masks:
        ``{"train"|"val"|"test": {node: bool}}`` split-mask flips.
    """

    add_edges: Optional[np.ndarray] = None
    add_weights: Optional[np.ndarray] = None
    remove_edges: Optional[np.ndarray] = None
    set_features: Mapping[int, np.ndarray] = field(default_factory=dict)
    set_labels: Mapping[int, int] = field(default_factory=dict)
    set_masks: Mapping[str, Mapping[int, bool]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "add_edges", _as_edge_array(self.add_edges, "add_edges"))
        object.__setattr__(
            self, "remove_edges", _as_edge_array(self.remove_edges, "remove_edges")
        )
        if self.add_edges is None:
            if self.add_weights is not None:
                raise ValueError("add_weights given without add_edges")
            weights = None
        else:
            weights = np.broadcast_to(
                np.asarray(
                    1.0 if self.add_weights is None else self.add_weights,
                    dtype=np.float64,
                ),
                (self.add_edges.shape[0],),
            ).copy()
            if np.any(weights == 0.0):
                raise ValueError(
                    "zero-weight edge insert would store an explicit zero; "
                    "use remove_edges to delete edges"
                )
        object.__setattr__(self, "add_weights", weights)
        object.__setattr__(
            self,
            "set_features",
            {
                int(node): np.asarray(row, dtype=np.float64).ravel()
                for node, row in dict(self.set_features).items()
            },
        )
        object.__setattr__(
            self,
            "set_labels",
            {int(node): int(label) for node, label in dict(self.set_labels).items()},
        )
        masks: Dict[str, Dict[int, bool]] = {}
        for raw_name, flips in dict(self.set_masks).items():
            name = str(raw_name)
            key = name[: -len("_mask")] if name.endswith("_mask") else name
            if key not in _MASK_ATTRS:
                raise ValueError(
                    f"unknown mask {raw_name!r}; expected one of {sorted(_MASK_ATTRS)}"
                )
            masks[key] = {int(node): bool(value) for node, value in dict(flips).items()}
        object.__setattr__(self, "set_masks", masks)

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #
    @property
    def is_empty(self) -> bool:
        return (
            self.add_edges is None
            and self.remove_edges is None
            and not self.set_features
            and not self.set_labels
            and not self.set_masks
        )

    def edge_rows(self) -> np.ndarray:
        """Sorted unique source rows whose adjacency row this delta edits."""
        rows = [
            edges[:, 0]
            for edges in (self.add_edges, self.remove_edges)
            if edges is not None
        ]
        if not rows:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(rows))

    def edge_endpoints(self) -> np.ndarray:
        """Sorted unique node ids appearing as either endpoint of an edge edit."""
        nodes = [
            edges.ravel()
            for edges in (self.add_edges, self.remove_edges)
            if edges is not None
        ]
        if not nodes:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(nodes))

    def feature_rows(self) -> np.ndarray:
        """Sorted unique feature rows this delta replaces."""
        return np.array(sorted(self.set_features), dtype=np.int64)

    def touches_topology(self) -> bool:
        return self.add_edges is not None or self.remove_edges is not None

    def validate(self, graph: DirectedGraph) -> None:
        """Raise ``ValueError`` if any edit is out of bounds for ``graph``."""
        n = graph.num_nodes
        endpoints = self.edge_endpoints()
        if endpoints.size and (endpoints[0] < 0 or endpoints[-1] >= n):
            raise ValueError(f"edge endpoint out of range for a {n}-node graph")
        for node, row in self.set_features.items():
            if not 0 <= node < n:
                raise ValueError(f"feature row {node} out of range for a {n}-node graph")
            if row.shape[0] != graph.num_features:
                raise ValueError(
                    f"feature row for node {node} has {row.shape[0]} values, "
                    f"graph has {graph.num_features} features"
                )
        for node, label in self.set_labels.items():
            if not 0 <= node < n:
                raise ValueError(f"label node {node} out of range for a {n}-node graph")
            if label < 0:
                raise ValueError(f"label for node {node} must be non-negative")
        for key, flips in self.set_masks.items():
            if getattr(graph, _MASK_ATTRS[key]) is None:
                raise ValueError(
                    f"cannot flip {key!r} mask: graph {graph.name!r} has no such split"
                )
            for node in flips:
                if not 0 <= node < n:
                    raise ValueError(f"mask node {node} out of range for a {n}-node graph")

    def describe(self) -> str:
        parts = []
        if self.add_edges is not None:
            parts.append(f"+{self.add_edges.shape[0]} edges")
        if self.remove_edges is not None:
            parts.append(f"-{self.remove_edges.shape[0]} edges")
        if self.set_features:
            parts.append(f"{len(self.set_features)} feature rows")
        if self.set_labels:
            parts.append(f"{len(self.set_labels)} labels")
        if self.set_masks:
            parts.append(f"{sum(len(f) for f in self.set_masks.values())} mask flips")
        return "GraphDelta(" + (", ".join(parts) if parts else "empty") + ")"


def _as_edge_array(edges, name: str) -> Optional[np.ndarray]:
    if edges is None:
        return None
    array = np.asarray(edges, dtype=np.int64)
    if array.size == 0:
        return None
    if array.ndim == 1 and array.shape[0] == 2:
        array = array[None, :]
    if array.ndim != 2 or array.shape[1] != 2:
        raise ValueError(f"{name} must be an (m, 2) array of (source, target) pairs")
    return array


# ------------------------------------------------------------------ #
# Application
# ------------------------------------------------------------------ #
def _edited_adjacency(
    adjacency: sp.csr_matrix, delta: GraphDelta
) -> Tuple[sp.csr_matrix, np.ndarray]:
    """CSR row surgery: return (new canonical adjacency, edited row ids)."""
    indptr, indices, data = adjacency.indptr, adjacency.indices, adjacency.data
    n = adjacency.shape[0]

    removals: Dict[int, set] = {}
    if delta.remove_edges is not None:
        for u, v in delta.remove_edges:
            removals.setdefault(int(u), set()).add(int(v))
    additions: Dict[int, Dict[int, float]] = {}
    if delta.add_edges is not None:
        for (u, v), w in zip(delta.add_edges, delta.add_weights):
            additions.setdefault(int(u), {})[int(v)] = float(w)  # last wins

    touched = np.unique(np.array(sorted(set(removals) | set(additions)), dtype=np.int64))
    new_rows: Dict[int, Tuple[np.ndarray, np.ndarray]] = {}
    lengths = np.diff(indptr)
    for row in touched:
        start, end = indptr[row], indptr[row + 1]
        cols, vals = indices[start:end], data[start:end]
        removed = removals.get(int(row))
        if removed:
            keep = np.isin(cols, np.fromiter(removed, np.int64, len(removed)), invert=True)
            cols, vals = cols[keep], vals[keep]
        added = additions.get(int(row))
        if added:
            add_cols = np.fromiter(added.keys(), np.int64, len(added))
            add_vals = np.fromiter(added.values(), np.float64, len(added))
            keep = np.isin(cols, add_cols, invert=True)  # re-weight existing edges
            cols = np.concatenate([cols[keep], add_cols])
            vals = np.concatenate([vals[keep], add_vals])
            order = np.argsort(cols, kind="stable")
            cols, vals = cols[order], vals[order]
        new_rows[int(row)] = (
            np.ascontiguousarray(cols, dtype=np.int64),
            np.ascontiguousarray(vals, dtype=np.float64),
        )
        lengths[row] = cols.size

    new_indptr = np.empty(n + 1, dtype=np.int64)
    new_indptr[0] = 0
    np.cumsum(lengths, out=new_indptr[1:])
    new_indices = np.empty(new_indptr[-1], dtype=np.int64)
    new_data = np.empty(new_indptr[-1], dtype=np.float64)
    previous = 0
    for row in touched:
        row = int(row)
        # Bulk-copy the untouched block [previous, row), then the new row.
        new_indices[new_indptr[previous] : new_indptr[row]] = indices[
            indptr[previous] : indptr[row]
        ]
        new_data[new_indptr[previous] : new_indptr[row]] = data[
            indptr[previous] : indptr[row]
        ]
        cols, vals = new_rows[row]
        new_indices[new_indptr[row] : new_indptr[row + 1]] = cols
        new_data[new_indptr[row] : new_indptr[row + 1]] = vals
        previous = row + 1
    new_indices[new_indptr[previous] :] = indices[indptr[previous] :]
    new_data[new_indptr[previous] :] = data[indptr[previous] :]
    return (
        sp.csr_matrix((new_data, new_indices, new_indptr), shape=adjacency.shape),
        touched,
    )


def apply_delta(
    graph: DirectedGraph, delta: GraphDelta, *, validate: bool = False
) -> DirectedGraph:
    """Apply ``delta`` to ``graph``, maintaining the fingerprint incrementally.

    Returns a new :class:`DirectedGraph` (the input is never mutated) whose
    cached fingerprint state was produced by re-hashing only the touched
    adjacency/feature rows and the touched whole arrays against the
    canonicalised baseline.  With ``validate=True`` the incremental digest
    is checked against a full rehash of the mutated arrays (bit-identity
    guard; used by the test-suite and the delta benchmark).
    """
    delta.validate(graph)
    state = graph.fingerprint_state().copy()
    adjacency = graph.canonical_adjacency()

    if delta.touches_topology():
        adjacency, edited_rows = _edited_adjacency(adjacency, delta)
    else:
        edited_rows = np.empty(0, dtype=np.int64)

    features = graph.features
    if delta.set_features:
        features = np.ascontiguousarray(features).copy()
        for node, row in delta.set_features.items():
            features[node] = row

    labels = graph.labels
    if delta.set_labels:
        labels = labels.copy()
        for node, label in delta.set_labels.items():
            labels[node] = label

    masks = {name: getattr(graph, name) for name in _MASK_ATTRS.values()}
    for key, flips in delta.set_masks.items():
        attr = _MASK_ATTRS[key]
        mask = masks[attr].copy()
        for node, value in flips.items():
            mask[node] = value
        masks[attr] = mask

    updated = DirectedGraph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        name=graph.name,
        meta=dict(graph.meta),
        **masks,
    )

    # Incremental fingerprint: re-hash only what the delta touched.
    indptr, indices, data = adjacency.indptr, adjacency.indices, adjacency.data
    for row in edited_rows:
        start, end = indptr[row], indptr[row + 1]
        state.adjacency_rows[row] = csr_row_digest(indices[start:end], data[start:end])
    if delta.set_features:
        contiguous = np.ascontiguousarray(updated.features)
        for node in delta.set_features:
            state.feature_rows[node] = dense_row_digest(contiguous[node])
    if delta.set_labels:
        state.label_digest = _array_digest_bytes("labels", updated.labels)
    for key in delta.set_masks:
        attr = _MASK_ATTRS[key]
        state.mask_digests[attr] = _array_digest_bytes(attr, getattr(updated, attr))

    incremental = state.digest()
    if validate:
        full = fingerprint_state(updated).digest()
        if incremental != full:
            raise RuntimeError(
                f"incremental fingerprint {incremental} diverged from full rehash {full}"
            )
    object.__setattr__(updated, "_fingerprint_state", state)
    object.__setattr__(updated, "_fingerprint_cache", incremental)
    # Row surgery preserves canonical form, so chained deltas skip the
    # canonicalisation pass entirely.
    object.__setattr__(updated, "_canonical_adjacency", adjacency)
    return updated
