"""Synthetic directed-graph generators.

The original paper evaluates on 16 public benchmarks.  Those datasets are
not available offline, so the reproduction generates *calibrated* synthetic
stand-ins with a directed stochastic block model (DSBM) whose parameters
control exactly the quantities the paper's analysis revolves around:

``homophily``
    probability that an edge connects two nodes of the same class, which
    drives the classic edge/adjusted homophily measures (Table I/II);
``directional_asymmetry``
    how strongly heterophilous edges follow a *directional* class pattern
    (class ``c`` points to class ``c+1 mod C``).  This is the knob that
    produces the entanglement the paper studies: a high value means the
    2-order DP operators ``AAᵀ`` / ``AᵀA`` recover homophily that the plain
    undirected view destroys, which yields a high AMUD score;
``feature_signal``
    informativeness of node features about the class, which calibrates how
    well feature-only models (MLP, LINKX) can do.

The generator is deterministic given a seed, so every benchmark and test in
the repository reproduces bit-identical datasets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
import scipy.sparse as sp

from .digraph import DirectedGraph


@dataclass
class DSBMConfig:
    """Parameters of the directed stochastic block model generator."""

    num_nodes: int = 1000
    num_classes: int = 5
    avg_degree: float = 5.0
    feature_dim: int = 64
    homophily: float = 0.7
    directional_asymmetry: float = 0.0
    feature_signal: float = 1.0
    feature_noise: float = 1.0
    class_imbalance: float = 0.0
    #: how directional heterophilous edges are oriented: ``"cyclic"`` sends
    #: class ``c`` to class ``c+1 mod C``; ``"hierarchy"`` orients every
    #: directional edge from the lower class id to the higher one (needed to
    #: express directed structure in binary-class graphs such as Genius).
    asymmetry_mode: str = "cyclic"
    name: str = "dsbm"

    def __post_init__(self) -> None:
        if self.num_nodes < self.num_classes:
            raise ValueError("need at least one node per class")
        if not 0.0 <= self.homophily <= 1.0:
            raise ValueError(f"homophily must be in [0, 1], got {self.homophily}")
        if not 0.0 <= self.directional_asymmetry <= 1.0:
            raise ValueError(
                f"directional_asymmetry must be in [0, 1], got {self.directional_asymmetry}"
            )
        if self.avg_degree <= 0:
            raise ValueError(f"avg_degree must be positive, got {self.avg_degree}")
        if self.feature_dim < 1:
            raise ValueError(f"feature_dim must be >= 1, got {self.feature_dim}")
        if self.asymmetry_mode not in ("cyclic", "hierarchy"):
            raise ValueError(
                f"asymmetry_mode must be 'cyclic' or 'hierarchy', got {self.asymmetry_mode!r}"
            )


def _sample_labels(config: DSBMConfig, rng: np.random.Generator) -> np.ndarray:
    """Draw node labels, optionally with a geometric class imbalance."""
    if config.class_imbalance <= 0:
        proportions = np.full(config.num_classes, 1.0 / config.num_classes)
    else:
        raw = np.array(
            [(1.0 + config.class_imbalance) ** -i for i in range(config.num_classes)]
        )
        proportions = raw / raw.sum()
    labels = rng.choice(config.num_classes, size=config.num_nodes, p=proportions)
    # Guarantee every class appears at least twice so splits always work.
    for cls in range(config.num_classes):
        if np.sum(labels == cls) < 2:
            spare = rng.choice(config.num_nodes, size=2, replace=False)
            labels[spare] = cls
    return labels


def _sample_edges(
    config: DSBMConfig, labels: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Sample directed edges respecting homophily and directional asymmetry.

    For each edge we draw a source node, then decide whether the edge is
    homophilous.  Homophilous edges pick a same-class target (direction is
    arbitrary).  Heterophilous edges either follow the cyclic class pattern
    ``class(source) -> class(source) + 1`` (with probability
    ``directional_asymmetry``) or pick a uniformly random different class.
    """
    num_nodes = config.num_nodes
    num_classes = config.num_classes
    num_edges = int(round(config.avg_degree * num_nodes))
    nodes_by_class = [np.flatnonzero(labels == cls) for cls in range(num_classes)]

    sources = rng.integers(0, num_nodes, size=num_edges)
    is_homophilous = rng.random(num_edges) < config.homophily
    follows_cycle = rng.random(num_edges) < config.directional_asymmetry

    targets = np.empty(num_edges, dtype=np.int64)
    for edge_index in range(num_edges):
        source = sources[edge_index]
        source_class = labels[source]
        directional = False
        if is_homophilous[edge_index]:
            target_class = source_class
        elif follows_cycle[edge_index]:
            directional = True
            if config.asymmetry_mode == "cyclic":
                target_class = (source_class + 1) % num_classes
            else:
                offset = rng.integers(1, num_classes)
                target_class = (source_class + offset) % num_classes
        else:
            offset = rng.integers(1, num_classes)
            target_class = (source_class + offset) % num_classes
        candidates = nodes_by_class[target_class]
        target = candidates[rng.integers(0, candidates.size)]
        if target == source:
            target = candidates[rng.integers(0, candidates.size)]
        if (
            directional
            and config.asymmetry_mode == "hierarchy"
            and labels[target] < labels[source]
        ):
            # Orient every directional heterophilous edge from the lower
            # class id to the higher one (a global class hierarchy).
            source, target = target, source
            sources[edge_index] = source
        targets[edge_index] = target

    edges = np.stack([sources, targets], axis=1)
    # Drop self-loops and duplicates so the adjacency is a simple digraph.
    edges = edges[edges[:, 0] != edges[:, 1]]
    edges = np.unique(edges, axis=0)
    return edges


def _sample_features(
    config: DSBMConfig, labels: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Gaussian mixture features: class mean * signal + isotropic noise."""
    class_means = rng.normal(0.0, 1.0, size=(config.num_classes, config.feature_dim))
    noise = rng.normal(0.0, config.feature_noise, size=(config.num_nodes, config.feature_dim))
    return config.feature_signal * class_means[labels] + noise


def directed_sbm(config: DSBMConfig, seed: int = 0) -> DirectedGraph:
    """Generate a :class:`DirectedGraph` from a :class:`DSBMConfig`."""
    rng = np.random.default_rng(seed)
    labels = _sample_labels(config, rng)
    edges = _sample_edges(config, labels, rng)
    features = _sample_features(config, labels, rng)
    adjacency = sp.csr_matrix(
        (np.ones(edges.shape[0]), (edges[:, 0], edges[:, 1])),
        shape=(config.num_nodes, config.num_nodes),
    )
    meta = {
        "generator": "directed_sbm",
        "seed": seed,
        "homophily": config.homophily,
        "directional_asymmetry": config.directional_asymmetry,
        "feature_signal": config.feature_signal,
        "avg_degree": config.avg_degree,
    }
    return DirectedGraph(
        adjacency=adjacency,
        features=features,
        labels=labels,
        name=config.name,
        meta=meta,
    )


def homophilous_digraph(
    num_nodes: int = 1000,
    num_classes: int = 5,
    seed: int = 0,
    **overrides,
) -> DirectedGraph:
    """Convenience constructor for a homophilous, weakly directional digraph."""
    config = DSBMConfig(
        num_nodes=num_nodes,
        num_classes=num_classes,
        homophily=overrides.pop("homophily", 0.75),
        directional_asymmetry=overrides.pop("directional_asymmetry", 0.1),
        name=overrides.pop("name", "homophilous"),
        **overrides,
    )
    return directed_sbm(config, seed=seed)


def heterophilous_digraph(
    num_nodes: int = 1000,
    num_classes: int = 5,
    seed: int = 0,
    **overrides,
) -> DirectedGraph:
    """Convenience constructor for a heterophilous digraph with strong directionality."""
    config = DSBMConfig(
        num_nodes=num_nodes,
        num_classes=num_classes,
        homophily=overrides.pop("homophily", 0.15),
        directional_asymmetry=overrides.pop("directional_asymmetry", 0.9),
        name=overrides.pop("name", "heterophilous"),
        **overrides,
    )
    return directed_sbm(config, seed=seed)
