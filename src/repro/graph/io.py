"""Persistence for :class:`DirectedGraph` objects.

Graphs (adjacency, features, labels, splits and metadata) are stored in a
single compressed ``.npz`` file so that expensive generator outputs or
externally converted datasets can be cached on disk and reloaded exactly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np
import scipy.sparse as sp

from .digraph import DirectedGraph

PathLike = Union[str, Path]

#: format marker stored inside every file, bumped on layout changes.
FORMAT_VERSION = 1


def save_graph(graph: DirectedGraph, path: PathLike) -> Path:
    """Write ``graph`` to ``path`` (a ``.npz`` file; the suffix is enforced)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    path.parent.mkdir(parents=True, exist_ok=True)

    adjacency = graph.adjacency.tocsr()
    arrays = {
        "format_version": np.array(FORMAT_VERSION),
        "adj_data": adjacency.data,
        "adj_indices": adjacency.indices,
        "adj_indptr": adjacency.indptr,
        "adj_shape": np.array(adjacency.shape),
        "features": graph.features,
        "labels": graph.labels,
        "name": np.array(graph.name),
        "meta_json": np.array(json.dumps(graph.meta, default=str)),
    }
    for mask_name in ("train_mask", "val_mask", "test_mask"):
        mask = getattr(graph, mask_name)
        if mask is not None:
            arrays[mask_name] = mask
    np.savez_compressed(path, **arrays)
    return path


def load_graph(path: PathLike) -> DirectedGraph:
    """Load a graph previously written by :func:`save_graph`."""
    path = Path(path)
    if not path.exists():
        raise FileNotFoundError(f"no graph file at {path}")
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"unsupported graph file version {version}; expected {FORMAT_VERSION}"
            )
        adjacency = sp.csr_matrix(
            (data["adj_data"], data["adj_indices"], data["adj_indptr"]),
            shape=tuple(data["adj_shape"]),
        )
        masks = {}
        for mask_name in ("train_mask", "val_mask", "test_mask"):
            if mask_name in data:
                masks[mask_name] = data[mask_name].astype(bool)
        return DirectedGraph(
            adjacency=adjacency,
            features=data["features"],
            labels=data["labels"],
            name=str(data["name"]),
            meta=json.loads(str(data["meta_json"])),
            **masks,
        )
