"""Graph transformations used by the data-engineering experiments.

The paper's experiments repeatedly move graphs between representations:

* *coarse undirected transformation* (``to_undirected``) — the ambiguous
  data-engineering step AMUD replaces with a principled decision;
* self-loop handling and feature row-normalisation;
* the three sparsity injectors of Fig. 7 (feature / edge / label sparsity).

Every transform returns a **new** :class:`DirectedGraph`, leaving the input
untouched, so experiment sweeps can reuse a cached dataset safely.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
import scipy.sparse as sp

from .digraph import DirectedGraph


def to_undirected(graph: DirectedGraph) -> DirectedGraph:
    """Coarse undirected transformation: add the reverse of every edge."""
    symmetric = graph.adjacency + graph.adjacency.T
    symmetric = sp.csr_matrix(symmetric)
    symmetric.data = np.ones_like(symmetric.data)
    return graph.with_(adjacency=symmetric, meta={**graph.meta, "undirected_transform": True})


def remove_self_loops(graph: DirectedGraph) -> DirectedGraph:
    """Drop diagonal entries from the adjacency."""
    adjacency = graph.adjacency.tolil()
    adjacency.setdiag(0)
    adjacency = adjacency.tocsr()
    adjacency.eliminate_zeros()
    return graph.with_(adjacency=adjacency)


def add_self_loops(graph: DirectedGraph) -> DirectedGraph:
    """Add a self-loop to every node (idempotent thanks to binarisation)."""
    n = graph.num_nodes
    adjacency = sp.csr_matrix(graph.adjacency + sp.identity(n, format="csr"))
    adjacency.data = np.ones_like(adjacency.data)
    return graph.with_(adjacency=adjacency)


def row_normalize_features(graph: DirectedGraph) -> DirectedGraph:
    """Scale each node's feature vector to unit L1 norm (standard for citation data)."""
    features = graph.features.copy()
    norms = np.abs(features).sum(axis=1, keepdims=True)
    norms[norms == 0] = 1.0
    return graph.with_(features=features / norms)


def standardize_features(graph: DirectedGraph, eps: float = 1e-8) -> DirectedGraph:
    """Zero-mean / unit-variance feature columns."""
    features = graph.features.copy()
    mean = features.mean(axis=0, keepdims=True)
    std = features.std(axis=0, keepdims=True)
    return graph.with_(features=(features - mean) / (std + eps))


# ---------------------------------------------------------------------- #
# Sparsity injectors (Fig. 7)
# ---------------------------------------------------------------------- #
def sparsify_features(
    graph: DirectedGraph,
    missing_rate: float,
    rng: Optional[np.random.Generator] = None,
    protect_train: bool = True,
) -> DirectedGraph:
    """Zero out the feature vectors of a random fraction of nodes.

    Mirrors the paper's feature-sparsity setting: "the feature
    representation of unlabeled nodes is partially missing", so training
    nodes keep their features when ``protect_train`` is set and a train
    mask exists.
    """
    if not 0.0 <= missing_rate <= 1.0:
        raise ValueError(f"missing_rate must be in [0, 1], got {missing_rate}")
    rng = rng if rng is not None else np.random.default_rng()
    features = graph.features.copy()
    candidates = np.arange(graph.num_nodes)
    if protect_train and graph.train_mask is not None:
        candidates = candidates[~graph.train_mask]
    num_missing = int(round(missing_rate * candidates.size))
    if num_missing > 0:
        missing = rng.choice(candidates, size=num_missing, replace=False)
        features[missing] = 0.0
    meta = {**graph.meta, "feature_missing_rate": missing_rate}
    return graph.with_(features=features, meta=meta)


def sparsify_edges(
    graph: DirectedGraph,
    drop_rate: float,
    rng: Optional[np.random.Generator] = None,
) -> DirectedGraph:
    """Randomly remove a fraction of directed edges (Fig. 7 edge sparsity)."""
    if not 0.0 <= drop_rate <= 1.0:
        raise ValueError(f"drop_rate must be in [0, 1], got {drop_rate}")
    rng = rng if rng is not None else np.random.default_rng()
    coo = graph.adjacency.tocoo()
    num_edges = coo.nnz
    keep_count = num_edges - int(round(drop_rate * num_edges))
    keep = rng.choice(num_edges, size=keep_count, replace=False)
    adjacency = sp.csr_matrix(
        (np.ones(keep_count), (coo.row[keep], coo.col[keep])),
        shape=graph.adjacency.shape,
    )
    meta = {**graph.meta, "edge_drop_rate": drop_rate}
    return graph.with_(adjacency=adjacency, meta=meta)


def sparsify_labels(
    graph: DirectedGraph,
    labels_per_class: int,
    rng: Optional[np.random.Generator] = None,
) -> DirectedGraph:
    """Shrink the training set to ``labels_per_class`` nodes per class.

    The validation and test masks are preserved; only the training mask
    shrinks, reproducing the paper's label-sparsity sweep.
    """
    if labels_per_class < 1:
        raise ValueError(f"labels_per_class must be >= 1, got {labels_per_class}")
    if graph.train_mask is None:
        raise ValueError("graph has no train mask to sparsify")
    rng = rng if rng is not None else np.random.default_rng()
    new_train = np.zeros(graph.num_nodes, dtype=bool)
    train_indices = np.flatnonzero(graph.train_mask)
    for cls in range(graph.num_classes):
        cls_train = train_indices[graph.labels[train_indices] == cls]
        if cls_train.size == 0:
            continue
        chosen = rng.choice(cls_train, size=min(labels_per_class, cls_train.size), replace=False)
        new_train[chosen] = True
    meta = {**graph.meta, "labels_per_class": labels_per_class}
    return graph.with_(train_mask=new_train, meta=meta)


def largest_connected_component(graph: DirectedGraph) -> DirectedGraph:
    """Restrict the graph to its largest weakly connected component."""
    import networkx as nx

    nx_graph = nx.from_scipy_sparse_array(graph.adjacency, create_using=nx.DiGraph)
    components = list(nx.weakly_connected_components(nx_graph))
    if not components:
        return graph.copy()
    largest = np.array(sorted(max(components, key=len)))
    adjacency = graph.adjacency[largest][:, largest]
    return DirectedGraph(
        adjacency=adjacency,
        features=graph.features[largest],
        labels=graph.labels[largest],
        train_mask=None if graph.train_mask is None else graph.train_mask[largest],
        val_mask=None if graph.val_mask is None else graph.val_mask[largest],
        test_mask=None if graph.test_mask is None else graph.test_mask[largest],
        name=graph.name,
        meta={**graph.meta, "largest_component": True},
    )
