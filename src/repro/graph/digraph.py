"""The :class:`DirectedGraph` container used throughout the reproduction.

A :class:`DirectedGraph` bundles everything the semi-supervised node
classification paradigm needs (Sec. II-A of the paper):

* a sparse, possibly asymmetric adjacency matrix ``A_d``;
* a dense node feature matrix ``X``;
* integer node labels ``Y``;
* boolean train / validation / test masks.

The class is deliberately immutable-ish: transformations such as
``to_undirected`` return new graphs (see :mod:`repro.graph.transforms`),
which keeps experiment code free of aliasing surprises.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..fingerprint import GraphFingerprint, fingerprint_state

if False:  # pragma: no cover - import cycle guard, typing only
    from .delta import GraphDelta


@dataclass
class DirectedGraph:
    """A directed attributed graph with semi-supervised splits.

    Parameters
    ----------
    adjacency:
        ``(n, n)`` sparse matrix where ``adjacency[u, v] = 1`` iff the edge
        ``u -> v`` exists.  Stored as CSR; weights are allowed but every
        generator in this repository produces binary adjacencies.
    features:
        ``(n, f)`` dense node feature matrix ``X``.
    labels:
        ``(n,)`` integer class labels ``Y``.
    train_mask / val_mask / test_mask:
        Boolean masks over nodes.  They may be ``None`` for graphs that have
        not been split yet.
    name:
        Human-readable dataset name (used in benchmark reports).
    meta:
        Free-form metadata (e.g. generator parameters), carried along by
        transforms so experiment reports can cite provenance.
    """

    adjacency: sp.spmatrix
    features: np.ndarray
    labels: np.ndarray
    train_mask: Optional[np.ndarray] = None
    val_mask: Optional[np.ndarray] = None
    test_mask: Optional[np.ndarray] = None
    name: str = "graph"
    meta: Dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.adjacency = sp.csr_matrix(self.adjacency, dtype=np.float64)
        self.features = np.asarray(self.features, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        n = self.adjacency.shape[0]
        if self.adjacency.shape[0] != self.adjacency.shape[1]:
            raise ValueError("adjacency matrix must be square")
        if self.features.shape[0] != n:
            raise ValueError(
                f"feature matrix has {self.features.shape[0]} rows but the graph has {n} nodes"
            )
        if self.labels.shape[0] != n:
            raise ValueError(
                f"label vector has {self.labels.shape[0]} entries but the graph has {n} nodes"
            )
        for mask_name in ("train_mask", "val_mask", "test_mask"):
            mask = getattr(self, mask_name)
            if mask is not None:
                mask = np.asarray(mask, dtype=bool)
                if mask.shape[0] != n:
                    raise ValueError(f"{mask_name} has wrong length {mask.shape[0]} != {n}")
                setattr(self, mask_name, mask)
        # Pin the class count at construction so mutations or subgraphs
        # that drop the highest class cannot silently shrink logit shapes.
        # ``meta["num_classes"]`` overrides (and is carried by every
        # transform); labels outside the pinned range still grow it.
        derived = int(self.labels.max()) + 1 if self.labels.size else 0
        pinned = max(int(self.meta.get("num_classes", derived)), derived)
        if pinned != self.meta.get("num_classes"):
            self.meta = {**self.meta, "num_classes": pinned}
        self._num_classes = pinned

    # -------------------------------------------------------------- #
    # Basic properties
    # -------------------------------------------------------------- #
    @property
    def num_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def num_edges(self) -> int:
        """Number of stored (directed) edges, self-loops included if present."""
        return int(self.adjacency.nnz)

    @property
    def num_features(self) -> int:
        return self.features.shape[1]

    @property
    def num_classes(self) -> int:
        """Class count pinned at construction (see ``__post_init__``).

        Stable under mutations/subgraphs that drop the highest class, so
        logit shapes cannot silently shrink; overridable via
        ``meta["num_classes"]``.
        """
        return self._num_classes

    @property
    def has_splits(self) -> bool:
        return self.train_mask is not None and self.val_mask is not None and self.test_mask is not None

    def is_directed(self) -> bool:
        """True if the adjacency matrix is not symmetric."""
        difference = self.adjacency - self.adjacency.T
        return bool(np.abs(difference.data).sum() > 0)

    def in_degrees(self) -> np.ndarray:
        return np.asarray(self.adjacency.sum(axis=0)).ravel()

    def out_degrees(self) -> np.ndarray:
        return np.asarray(self.adjacency.sum(axis=1)).ravel()

    def edge_list(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return (sources, targets) arrays of the stored edges."""
        coo = self.adjacency.tocoo()
        return coo.row.copy(), coo.col.copy()

    def label_distribution(self) -> np.ndarray:
        """Fraction of nodes in each class."""
        counts = np.bincount(self.labels, minlength=self.num_classes)
        return counts / max(self.labels.size, 1)

    def fingerprint(self) -> str:
        """Content hash of the graph (CSR structure, features, labels, splits).

        Two graphs with identical arrays share a fingerprint regardless of
        ``name``/``meta``, which is what makes the serving-layer operator
        cache (:mod:`repro.serving.cache`) safe: any array change — an edge,
        a weight, a feature value, a split flip — yields a new key.  Graphs
        are treated as immutable after construction, so the digest is cached
        on first use; call :meth:`with_` / :meth:`copy` rather than mutating
        arrays in place.
        """
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is None:
            cached = self.fingerprint_state().digest()
            object.__setattr__(self, "_fingerprint_cache", cached)
        return cached

    def fingerprint_state(self) -> GraphFingerprint:
        """Per-row fingerprint state backing :meth:`fingerprint`.

        Computed lazily and cached; :meth:`apply_delta` derives the mutated
        graph's state from it by re-hashing only the touched rows.
        """
        state = getattr(self, "_fingerprint_state", None)
        if state is None:
            state = fingerprint_state(self, adjacency=self.canonical_adjacency())
            object.__setattr__(self, "_fingerprint_state", state)
        return state

    def canonical_adjacency(self) -> sp.csr_matrix:
        """The canonicalised (sorted, deduplicated, int64/float64) CSR.

        Cached on first use; :meth:`apply_delta` edits this form directly so
        chained live updates skip re-canonicalisation.
        """
        from ..fingerprint import canonical_csr

        cached = getattr(self, "_canonical_adjacency", None)
        if cached is None:
            cached = canonical_csr(self.adjacency)
            object.__setattr__(self, "_canonical_adjacency", cached)
        return cached

    def apply_delta(self, delta: "GraphDelta", *, validate: bool = False) -> "DirectedGraph":
        """Apply a live :class:`~repro.graph.delta.GraphDelta`.

        Returns the mutated graph (this one is untouched) with its content
        fingerprint maintained incrementally — only the touched rows/arrays
        are re-hashed.  See :func:`repro.graph.delta.apply_delta`.
        """
        from .delta import apply_delta as _apply_delta

        return _apply_delta(self, delta, validate=validate)

    # -------------------------------------------------------------- #
    # Derived views
    # -------------------------------------------------------------- #
    def with_(self, **changes) -> "DirectedGraph":
        """Return a copy with the given fields replaced (dataclass ``replace``)."""
        return replace(self, **changes)

    def copy(self) -> "DirectedGraph":
        return DirectedGraph(
            adjacency=self.adjacency.copy(),
            features=self.features.copy(),
            labels=self.labels.copy(),
            train_mask=None if self.train_mask is None else self.train_mask.copy(),
            val_mask=None if self.val_mask is None else self.val_mask.copy(),
            test_mask=None if self.test_mask is None else self.test_mask.copy(),
            name=self.name,
            meta=dict(self.meta),
        )

    def summary(self) -> Dict[str, object]:
        """Compact statistics used by the Table II benchmark."""
        return {
            "name": self.name,
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "features": self.num_features,
            "classes": self.num_classes,
            "directed": self.is_directed(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DirectedGraph(name={self.name!r}, n={self.num_nodes}, m={self.num_edges}, "
            f"f={self.num_features}, c={self.num_classes}, directed={self.is_directed()})"
        )


def from_edge_list(
    edges: np.ndarray,
    num_nodes: int,
    features: np.ndarray,
    labels: np.ndarray,
    **kwargs,
) -> DirectedGraph:
    """Build a :class:`DirectedGraph` from an ``(m, 2)`` array of directed edges."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise ValueError("edges must be an (m, 2) array of (source, target) pairs")
    data = np.ones(edges.shape[0])
    adjacency = sp.csr_matrix(
        (data, (edges[:, 0], edges[:, 1])), shape=(num_nodes, num_nodes)
    )
    # Collapse duplicate edges to binary weights.
    adjacency.data = np.ones_like(adjacency.data)
    return DirectedGraph(adjacency=adjacency, features=features, labels=labels, **kwargs)
