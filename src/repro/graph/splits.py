"""Train / validation / test split utilities.

The paper uses two split conventions:

* *planetoid-style* fixed counts (e.g. 20 labelled nodes per class for the
  citation networks), implemented by :func:`per_class_split`;
* *percentage* splits (e.g. 48%/32%/20% for the WebKB and wiki networks,
  50%/25%/25% for the heterophily benchmark suite), implemented by
  :func:`ratio_split`.

Both return new graphs with boolean masks attached and are deterministic
given a seed.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .digraph import DirectedGraph


def per_class_split(
    graph: DirectedGraph,
    train_per_class: int = 20,
    num_val: int = 500,
    num_test: Optional[int] = None,
    seed: int = 0,
) -> DirectedGraph:
    """Planetoid-style split: fixed labelled nodes per class, then val/test pools."""
    if train_per_class < 1:
        raise ValueError(f"train_per_class must be >= 1, got {train_per_class}")
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    train_mask = np.zeros(n, dtype=bool)
    for cls in range(graph.num_classes):
        members = np.flatnonzero(graph.labels == cls)
        if members.size == 0:
            continue
        chosen = rng.choice(members, size=min(train_per_class, members.size), replace=False)
        train_mask[chosen] = True

    remaining = np.flatnonzero(~train_mask)
    remaining = rng.permutation(remaining)
    num_val = min(num_val, remaining.size)
    val_indices = remaining[:num_val]
    rest = remaining[num_val:]
    if num_test is not None:
        rest = rest[: min(num_test, rest.size)]
    val_mask = np.zeros(n, dtype=bool)
    val_mask[val_indices] = True
    test_mask = np.zeros(n, dtype=bool)
    test_mask[rest] = True
    return graph.with_(train_mask=train_mask, val_mask=val_mask, test_mask=test_mask)


def ratio_split(
    graph: DirectedGraph,
    train_ratio: float = 0.48,
    val_ratio: float = 0.32,
    seed: int = 0,
    stratified: bool = True,
) -> DirectedGraph:
    """Percentage split; the remainder after train+val becomes the test set."""
    if train_ratio <= 0 or val_ratio < 0 or train_ratio + val_ratio >= 1.0:
        raise ValueError(
            f"invalid ratios train={train_ratio}, val={val_ratio}; they must be positive "
            "and sum to less than 1"
        )
    rng = np.random.default_rng(seed)
    n = graph.num_nodes
    train_mask = np.zeros(n, dtype=bool)
    val_mask = np.zeros(n, dtype=bool)
    test_mask = np.zeros(n, dtype=bool)

    if stratified:
        groups = [np.flatnonzero(graph.labels == cls) for cls in range(graph.num_classes)]
    else:
        groups = [np.arange(n)]

    for members in groups:
        if members.size == 0:
            continue
        members = rng.permutation(members)
        num_train = max(1, int(round(train_ratio * members.size)))
        num_val = int(round(val_ratio * members.size))
        num_train = min(num_train, members.size - 1)
        num_val = min(num_val, members.size - num_train)
        train_mask[members[:num_train]] = True
        val_mask[members[num_train : num_train + num_val]] = True
        test_mask[members[num_train + num_val :]] = True

    return graph.with_(train_mask=train_mask, val_mask=val_mask, test_mask=test_mask)


def split_counts(graph: DirectedGraph) -> Tuple[int, int, int]:
    """Return (train, val, test) node counts; raises if the graph is unsplit."""
    if not graph.has_splits:
        raise ValueError(f"graph {graph.name!r} has no splits attached")
    return (
        int(graph.train_mask.sum()),
        int(graph.val_mask.sum()),
        int(graph.test_mask.sum()),
    )


def validate_splits(graph: DirectedGraph) -> None:
    """Check that masks are disjoint and that training covers every class."""
    if not graph.has_splits:
        raise ValueError(f"graph {graph.name!r} has no splits attached")
    overlap = (
        (graph.train_mask & graph.val_mask)
        | (graph.train_mask & graph.test_mask)
        | (graph.val_mask & graph.test_mask)
    )
    if overlap.any():
        raise ValueError("train/val/test masks overlap")
    train_classes = set(np.unique(graph.labels[graph.train_mask]).tolist())
    all_classes = set(range(graph.num_classes))
    missing = all_classes - train_classes
    if missing:
        raise ValueError(f"training set is missing classes {sorted(missing)}")
