"""Graph substrate: containers, operators, transforms, generators and splits."""

from .delta import GraphDelta, apply_delta
from .digraph import DirectedGraph, from_edge_list
from .generators import DSBMConfig, directed_sbm, heterophilous_digraph, homophilous_digraph
from .io import load_graph, save_graph
from .operators import (
    add_self_loops,
    directed_pattern_operators,
    magnetic_laplacian,
    normalized_adjacency,
    normalized_laplacian,
    num_patterns_for_order,
    personalized_pagerank_adjacency,
    propagation_operators,
    row_normalized,
    second_order_patterns,
    symmetric_normalized_adjacency,
    SECOND_ORDER_PATTERN_NAMES,
)
from .splits import per_class_split, ratio_split, split_counts, validate_splits
from .transforms import (
    add_self_loops as add_graph_self_loops,
    largest_connected_component,
    remove_self_loops,
    row_normalize_features,
    sparsify_edges,
    sparsify_features,
    sparsify_labels,
    standardize_features,
    to_undirected,
)

__all__ = [
    "DirectedGraph",
    "GraphDelta",
    "apply_delta",
    "from_edge_list",
    "save_graph",
    "load_graph",
    "DSBMConfig",
    "directed_sbm",
    "homophilous_digraph",
    "heterophilous_digraph",
    "add_self_loops",
    "normalized_adjacency",
    "symmetric_normalized_adjacency",
    "normalized_laplacian",
    "row_normalized",
    "directed_pattern_operators",
    "second_order_patterns",
    "propagation_operators",
    "num_patterns_for_order",
    "magnetic_laplacian",
    "personalized_pagerank_adjacency",
    "SECOND_ORDER_PATTERN_NAMES",
    "per_class_split",
    "ratio_split",
    "split_counts",
    "validate_splits",
    "to_undirected",
    "remove_self_loops",
    "add_graph_self_loops",
    "row_normalize_features",
    "standardize_features",
    "sparsify_features",
    "sparsify_edges",
    "sparsify_labels",
    "largest_connected_component",
]
