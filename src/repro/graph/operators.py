"""Graph propagation operators.

This module implements every matrix operator the paper manipulates:

* the normalized (undirected) adjacency family of Eq. (1):
  random-walk ``A D^-1``, symmetric ``D^-1/2 A D^-1/2`` and reverse
  transition ``D^-1 A``, all with optional self-loops;
* the *directed pattern* (DP) operators of Sec. IV-B: for order 1 the set
  ``{A, Aᵀ}``, for order 2 additionally ``{AA, AᵀAᵀ, AAᵀ, AᵀA}``, and so on
  for higher orders (``k = 2¹ + … + 2ᴺ`` operators for an N-hop
  neighbourhood);
* the row-normalisation used by ADPA's weight-free propagation; and
* the magnetic Laplacian used by the MagNet baseline.

All operators are returned as ``scipy.sparse.csr_matrix`` so they can be
cached once per dataset and reused by every model (the decoupled design the
paper's complexity analysis relies on).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Sequence, Tuple

import numpy as np
import scipy.sparse as sp


# ---------------------------------------------------------------------- #
# Normalised adjacency family (Eq. 1)
# ---------------------------------------------------------------------- #
def add_self_loops(adjacency: sp.spmatrix, weight: float = 1.0) -> sp.csr_matrix:
    """Return ``A + weight * I`` as CSR."""
    n = adjacency.shape[0]
    return (sp.csr_matrix(adjacency) + weight * sp.identity(n, format="csr")).tocsr()


def _safe_inverse_power(degrees: np.ndarray, power: float) -> np.ndarray:
    """Compute ``degrees ** -power`` treating zero degrees as zero."""
    inverse = np.zeros_like(degrees, dtype=np.float64)
    positive = degrees > 0
    inverse[positive] = np.power(degrees[positive], -power)
    return inverse


def normalized_adjacency(
    adjacency: sp.spmatrix,
    r: float = 0.5,
    self_loops: bool = True,
) -> sp.csr_matrix:
    """Generalised normalisation ``D^{r-1} A D^{-r}`` from Eq. (1).

    ``r = 0.5`` gives the symmetric GCN normalisation, ``r = 1`` the
    random-walk (row-stochastic) normalisation ``D^{-1} A`` applied from the
    left, and ``r = 0`` the reverse-transition normalisation ``A D^{-1}``.
    For directed inputs the out-degree is used on the right and the
    in-degree on the left, which reduces to the usual formula for
    undirected graphs.
    """
    if not 0.0 <= r <= 1.0:
        raise ValueError(f"convolution coefficient r must lie in [0, 1], got {r}")
    matrix = add_self_loops(adjacency) if self_loops else sp.csr_matrix(adjacency)
    out_degrees = np.asarray(matrix.sum(axis=1)).ravel()
    in_degrees = np.asarray(matrix.sum(axis=0)).ravel()
    left = sp.diags(_safe_inverse_power(out_degrees, 1.0 - r))
    right = sp.diags(_safe_inverse_power(in_degrees, r))
    return (left @ matrix @ right).tocsr()


def symmetric_normalized_adjacency(adjacency: sp.spmatrix, self_loops: bool = True) -> sp.csr_matrix:
    """``D^{-1/2} (A + I) D^{-1/2}`` — the GCN propagation matrix."""
    return normalized_adjacency(adjacency, r=0.5, self_loops=self_loops)


def row_normalized(matrix: sp.spmatrix) -> sp.csr_matrix:
    """Row-stochastic normalisation ``D^{-1} M`` (zero rows stay zero)."""
    matrix = sp.csr_matrix(matrix)
    row_sums = np.asarray(matrix.sum(axis=1)).ravel()
    inverse = _safe_inverse_power(row_sums, 1.0)
    return (sp.diags(inverse) @ matrix).tocsr()


def normalized_laplacian(adjacency: sp.spmatrix, self_loops: bool = True) -> sp.csr_matrix:
    """``I - D^{-1/2} A D^{-1/2}``, used by the spectral baselines."""
    n = adjacency.shape[0]
    return (sp.identity(n, format="csr") - symmetric_normalized_adjacency(adjacency, self_loops)).tocsr()


# ---------------------------------------------------------------------- #
# Directed pattern (DP) operators — Sec. IV-B
# ---------------------------------------------------------------------- #
#: Names of the six 2-order DP operators in the order used by the paper's
#: Fig. 4: A, Aᵀ, AA, AᵀAᵀ, AAᵀ, AᵀA.
SECOND_ORDER_PATTERN_NAMES: Tuple[str, ...] = ("A", "At", "AA", "AtAt", "AAt", "AtA")


def _binarize(matrix: sp.spmatrix, remove_self_loops: bool = True) -> sp.csr_matrix:
    """Clip weights to {0, 1} and optionally drop the diagonal.

    Composite patterns such as ``AA`` count paths; the paper treats the DP
    operator as a reachability indicator (``G_d(u, v) = 1`` if u, v are
    high-order neighbours), so we binarise before normalisation.
    """
    matrix = sp.csr_matrix(matrix)
    matrix.data = np.ones_like(matrix.data)
    if remove_self_loops:
        matrix = matrix.tolil()
        matrix.setdiag(0)
        matrix = matrix.tocsr()
        matrix.eliminate_zeros()
    return matrix


def directed_pattern_operators(
    adjacency: sp.spmatrix,
    order: int = 2,
    binarize: bool = True,
) -> Dict[str, sp.csr_matrix]:
    """Generate the k-order DP operator dictionary.

    Parameters
    ----------
    adjacency:
        The (possibly asymmetric) adjacency ``A_d``.
    order:
        Maximum composition length N.  The number of returned operators is
        ``2 + 4 + 8 + … = 2¹ + … + 2ᴺ`` (the paper's ``k``): each pattern is
        a word over the alphabet ``{A, Aᵀ}`` of length ≤ N.
    binarize:
        Whether to binarise composite patterns into reachability indicators.

    Returns
    -------
    dict
        Ordered mapping from pattern name (e.g. ``"AAt"``) to CSR matrix.
        First-order patterns come first, then second order, and so on, so
        truncating the dict by prefix reproduces lower-order ablations.
    """
    if order < 1:
        raise ValueError(f"DP order must be >= 1, got {order}")
    base = {"A": sp.csr_matrix(adjacency), "At": sp.csr_matrix(adjacency).T.tocsr()}
    operators: Dict[str, sp.csr_matrix] = {}
    for length in range(1, order + 1):
        for word in itertools.product(("A", "At"), repeat=length):
            name = "".join(word)
            matrix = base[word[0]].copy()
            for symbol in word[1:]:
                matrix = (matrix @ base[symbol]).tocsr()
            if binarize:
                matrix = _binarize(matrix, remove_self_loops=(length > 1))
            operators[name] = matrix
    return operators


def second_order_patterns(adjacency: sp.spmatrix, binarize: bool = True) -> Dict[str, sp.csr_matrix]:
    """The six DP operators used by AMUD and the default ADPA configuration."""
    return directed_pattern_operators(adjacency, order=2, binarize=binarize)


def num_patterns_for_order(order: int) -> int:
    """The paper's ``k`` for an N-hop neighbourhood: ``2 + 4 + … + 2ᴺ``."""
    if order < 1:
        raise ValueError(f"DP order must be >= 1, got {order}")
    return sum(2 ** i for i in range(1, order + 1))


def propagation_operators(
    adjacency: sp.spmatrix,
    order: int = 2,
    self_loops: bool = True,
) -> Dict[str, sp.csr_matrix]:
    """Row-normalised DP operators ready for weight-free feature propagation.

    Each DP operator is augmented with self-loops (so a node always keeps a
    share of its own signal) and row-normalised, which keeps propagated
    features on the same scale regardless of degree — the stability trick
    ADPA shares with SGC/SIGN-style decoupled models.
    """
    operators = directed_pattern_operators(adjacency, order=order, binarize=True)
    prepared: Dict[str, sp.csr_matrix] = {}
    for name, matrix in operators.items():
        if self_loops:
            matrix = add_self_loops(matrix)
        prepared[name] = row_normalized(matrix)
    return prepared


# ---------------------------------------------------------------------- #
# Directed spectral operators
# ---------------------------------------------------------------------- #
def magnetic_laplacian(
    adjacency: sp.spmatrix,
    q: float = 0.25,
    normalized: bool = True,
) -> Tuple[sp.csr_matrix, sp.csr_matrix]:
    """The q-parameterised magnetic Laplacian used by MagNet.

    Returns the real and imaginary parts ``(L_re, L_im)`` of the complex
    Hermitian Laplacian ``L = I - D_s^{-1/2} H D_s^{-1/2}`` where
    ``H = A_s ⊙ exp(i 2π q (A - Aᵀ))``, ``A_s`` is the symmetrised adjacency
    and ``D_s`` its degree matrix.  Splitting into real/imaginary parts lets
    the MagNet baseline run on the real-valued autograd substrate.
    """
    adjacency = sp.csr_matrix(adjacency)
    symmetric = ((adjacency + adjacency.T) > 0).astype(np.float64) * 0.5 * 2.0
    symmetric = sp.csr_matrix(symmetric)
    theta = 2.0 * np.pi * q * (adjacency - adjacency.T)
    theta = sp.csr_matrix(theta)
    # Hadamard product with the symmetrised support.
    cos_part = symmetric.multiply(_elementwise_cos(theta, symmetric))
    sin_part = symmetric.multiply(_elementwise_sin(theta, symmetric))
    degrees = np.asarray(symmetric.sum(axis=1)).ravel()
    n = adjacency.shape[0]
    if normalized:
        d_inv_sqrt = sp.diags(_safe_inverse_power(degrees, 0.5))
        norm_cos = d_inv_sqrt @ cos_part @ d_inv_sqrt
        norm_sin = d_inv_sqrt @ sin_part @ d_inv_sqrt
        laplacian_re = sp.identity(n, format="csr") - norm_cos
        laplacian_im = -norm_sin
    else:
        degree_matrix = sp.diags(degrees)
        laplacian_re = degree_matrix - cos_part
        laplacian_im = -sin_part
    return sp.csr_matrix(laplacian_re), sp.csr_matrix(laplacian_im)


def _elementwise_cos(theta: sp.spmatrix, support: sp.spmatrix) -> sp.csr_matrix:
    """cos(theta) evaluated on the support pattern (cos(0)=1 on support)."""
    support = sp.csr_matrix(support)
    theta = sp.csr_matrix(theta)
    result = support.copy()
    result.data = np.ones_like(result.data)
    theta_dense_on_support = np.asarray(theta[support.nonzero()]).ravel()
    result.data = np.cos(theta_dense_on_support)
    return result


def _elementwise_sin(theta: sp.spmatrix, support: sp.spmatrix) -> sp.csr_matrix:
    """sin(theta) evaluated on the support pattern."""
    support = sp.csr_matrix(support)
    theta = sp.csr_matrix(theta)
    result = support.copy()
    theta_dense_on_support = np.asarray(theta[support.nonzero()]).ravel()
    result.data = np.sin(theta_dense_on_support)
    return result


def personalized_pagerank_adjacency(
    adjacency: sp.spmatrix,
    alpha: float = 0.1,
    num_iterations: int = 10,
) -> sp.csr_matrix:
    """Approximate PPR-based symmetric digraph adjacency (DiGCN, Eq. 3 family).

    Follows DiGCN's construction: the random-walk transition matrix of the
    digraph is combined with a teleport term, the stationary distribution is
    estimated by power iteration, and a symmetric Laplacian-like operator
    ``(Π^{1/2} P Π^{-1/2} + Π^{-1/2} Pᵀ Π^{1/2}) / 2`` is returned.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"teleport probability alpha must be in (0, 1), got {alpha}")
    transition = row_normalized(add_self_loops(adjacency))
    n = adjacency.shape[0]
    pi = np.full(n, 1.0 / n)
    dense_transition = transition
    for _ in range(num_iterations):
        pi = (1 - alpha) * (dense_transition.T @ pi) + alpha / n
        total = pi.sum()
        if total > 0:
            pi = pi / total
    pi = np.maximum(pi, 1e-12)
    pi_sqrt = sp.diags(np.sqrt(pi))
    pi_inv_sqrt = sp.diags(1.0 / np.sqrt(pi))
    symmetric = 0.5 * (pi_sqrt @ dense_transition @ pi_inv_sqrt + pi_inv_sqrt @ dense_transition.T @ pi_sqrt)
    return sp.csr_matrix(symmetric)
