"""Weight initialisation schemes.

Every initializer takes an explicit :class:`numpy.random.Generator` so that
model construction is fully deterministic given a seed — a requirement for
the repeated-trial experiment harness.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def glorot_uniform(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Xavier/Glorot uniform initialisation, the default for GCN-style layers."""
    fan_in, fan_out = shape[0], shape[1]
    limit = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def kaiming_uniform(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming uniform initialisation, suited to ReLU networks."""
    fan_in = shape[0]
    limit = math.sqrt(6.0 / fan_in)
    return rng.uniform(-limit, limit, size=shape)


def normal(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Small-variance Gaussian initialisation for attention vectors."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
