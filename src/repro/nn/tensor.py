"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the numerical substrate of the reproduction: every model in
:mod:`repro.models` and :mod:`repro.adpa` is trained end-to-end through the
:class:`Tensor` class defined here.  The design mirrors the familiar
PyTorch semantics at a much smaller scale:

* a :class:`Tensor` wraps a ``numpy.ndarray`` and remembers how it was
  produced (parent tensors plus a backward closure);
* calling :meth:`Tensor.backward` on a scalar runs a topological sweep over
  the recorded graph and accumulates gradients into every tensor created
  with ``requires_grad=True``;
* constant sparse matrices (``scipy.sparse``) participate through
  :func:`sparse_matmul`, which propagates gradients only to the dense
  operand — exactly what graph propagation needs, because adjacency
  matrices are never trained.

Broadcasting is supported for elementwise operations; gradients are summed
back to the original shapes with :func:`_unbroadcast`.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np
import scipy.sparse as sp

ArrayLike = Union[np.ndarray, float, int, Sequence]


# ---------------------------------------------------------------------- #
# Trace recording hook
# ---------------------------------------------------------------------- #
# Every operation that produces a Tensor carries op metadata (a stable op
# name plus the non-tensor attributes needed to recompute it).  A recorder
# installed via :func:`set_active_tracer` observes each construction, which
# is how :mod:`repro.serving.trace` turns one eager forward pass into a
# flat, grad-free numpy program that replays without building Tensors or a
# backward tape.  The hook is thread-local so a server worker tracing a
# forward never observes tensors created by concurrent training threads.
_trace_state = threading.local()


def set_active_tracer(tracer) -> None:
    """Install ``tracer`` (or ``None``) for the calling thread.

    ``tracer`` is duck-typed: it needs a ``record(out, op, parents, attrs)``
    method, called for every Tensor an operation creates on this thread.
    """
    _trace_state.tracer = tracer


def active_tracer():
    return getattr(_trace_state, "tracer", None)


def _record_trace(out: "Tensor", op: Optional[str], parents: Sequence["Tensor"], attrs) -> None:
    tracer = getattr(_trace_state, "tracer", None)
    if tracer is not None:
        tracer.record(out, op, parents, attrs or {})


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    """Coerce ``value`` into a float ndarray without copying when possible."""
    if isinstance(value, np.ndarray):
        if value.dtype == dtype:
            return value
        return value.astype(dtype)
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` so that it matches ``shape`` after a broadcasted op."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were expanded from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable multi-dimensional array.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64`` ndarray.
    requires_grad:
        Whether gradients should be accumulated for this tensor.
    parents:
        Tensors this one was computed from (autograd graph edges).
    backward_fn:
        Closure mapping the output gradient to per-parent contributions.
    name:
        Optional label used in error messages and debugging.
    """

    __slots__ = ("data", "requires_grad", "grad", "_parents", "_backward_fn", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        parents: Sequence["Tensor"] = (),
        backward_fn: Optional[Callable[[np.ndarray], Sequence[Optional[np.ndarray]]]] = None,
        name: str = "",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents: Tuple[Tensor, ...] = tuple(parents)
        self._backward_fn = backward_fn
        self.name = name

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying ndarray (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut off from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}{label})"

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _ensure(value: Union["Tensor", ArrayLike]) -> "Tensor":
        if isinstance(value, Tensor):
            return value
        return Tensor(value)

    def _make(
        self,
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward_fn: Callable[[np.ndarray], Sequence[Optional[np.ndarray]]],
        op: Optional[str] = None,
        attrs: Optional[dict] = None,
    ) -> "Tensor":
        requires_grad = any(p.requires_grad for p in parents)
        if not requires_grad:
            out = Tensor(data, requires_grad=False)
        else:
            out = Tensor(data, requires_grad=True, parents=parents, backward_fn=backward_fn)
        _record_trace(out, op, parents, attrs)
        return out

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data + other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad, self.shape),
                _unbroadcast(grad, other.shape),
            )

        return self._make(out_data, (self, other), backward, op="add")

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (-grad,)

        return self._make(-self.data, (self,), backward, op="neg")

    def __sub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self + (-self._ensure(other))

    def __rsub__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._ensure(other) + (-self)

    def __mul__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data * other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad * other.data, self.shape),
                _unbroadcast(grad * self.data, other.shape),
            )

        return self._make(out_data, (self, other), backward, op="mul")

    __rmul__ = __mul__

    def __truediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data / other.data

        def backward(grad: np.ndarray):
            return (
                _unbroadcast(grad / other.data, self.shape),
                _unbroadcast(-grad * self.data / (other.data ** 2), other.shape),
            )

        return self._make(out_data, (self, other), backward, op="div")

    def __rtruediv__(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        return self._ensure(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        out_data = self.data ** exponent

        def backward(grad: np.ndarray):
            return (grad * exponent * self.data ** (exponent - 1),)

        return self._make(out_data, (self,), backward, op="pow", attrs={"exponent": exponent})

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other: Union["Tensor", ArrayLike]) -> "Tensor":
        other = self._ensure(other)
        out_data = self.data @ other.data

        def backward(grad: np.ndarray):
            grad_self = grad @ other.data.T if self.requires_grad else None
            grad_other = self.data.T @ grad if other.requires_grad else None
            return (grad_self, grad_other)

        return self._make(out_data, (self, other), backward, op="matmul")

    __matmul__ = matmul

    def transpose(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (grad.T,)

        return self._make(self.data.T, (self,), backward, op="transpose")

    def reshape(self, *shape: int) -> "Tensor":
        original_shape = self.shape

        def backward(grad: np.ndarray):
            return (grad.reshape(original_shape),)

        return self._make(
            self.data.reshape(*shape), (self,), backward,
            op="reshape", attrs={"shape": tuple(shape)},
        )

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(grad: np.ndarray):
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            return (full,)

        return self._make(out_data, (self,), backward, op="getitem", attrs={"index": index})

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            grad = np.asarray(grad)
            if axis is None:
                return (np.broadcast_to(grad, self.shape).copy(),)
            expanded = grad if keepdims else np.expand_dims(grad, axis)
            return (np.broadcast_to(expanded, self.shape).copy(),)

        return self._make(
            out_data, (self,), backward,
            op="sum", attrs={"axis": axis, "keepdims": keepdims},
        )

    def mean(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: Optional[int] = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray):
            grad = np.asarray(grad)
            if axis is None:
                mask = (self.data == out_data).astype(self.data.dtype)
                mask /= mask.sum()
                return (mask * grad,)
            expanded_out = out_data if keepdims else np.expand_dims(out_data, axis)
            expanded_grad = grad if keepdims else np.expand_dims(grad, axis)
            mask = (self.data == expanded_out).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            return (mask * expanded_grad,)

        return self._make(
            out_data, (self,), backward,
            op="max", attrs={"axis": axis, "keepdims": keepdims},
        )

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward(grad: np.ndarray):
            return (grad * out_data,)

        return self._make(out_data, (self,), backward, op="exp")

    def log(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (grad / self.data,)

        return self._make(np.log(self.data), (self,), backward, op="log")

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        def backward(grad: np.ndarray):
            return (grad * np.sign(self.data),)

        return self._make(np.abs(self.data), (self,), backward, op="abs")

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward(grad: np.ndarray):
            return (grad * mask,)

        return self._make(self.data * mask, (self,), backward, op="relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        positive = self.data > 0
        scale = np.where(positive, 1.0, negative_slope)

        def backward(grad: np.ndarray):
            return (grad * scale,)

        return self._make(
            self.data * scale, (self,), backward,
            op="leaky_relu", attrs={"negative_slope": negative_slope},
        )

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray):
            return (grad * out_data * (1.0 - out_data),)

        return self._make(out_data, (self,), backward, op="sigmoid")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad: np.ndarray):
            return (grad * (1.0 - out_data ** 2),)

        return self._make(out_data, (self,), backward, op="tanh")

    def elu(self, alpha: float = 1.0) -> "Tensor":
        positive = self.data > 0
        exp_part = alpha * (np.exp(np.minimum(self.data, 0.0)) - 1.0)
        out_data = np.where(positive, self.data, exp_part)

        def backward(grad: np.ndarray):
            local = np.where(positive, 1.0, exp_part + alpha)
            return (grad * local,)

        return self._make(out_data, (self,), backward, op="elu", attrs={"alpha": alpha})

    # ------------------------------------------------------------------ #
    # Softmax family (implemented here so they stay numerically stable)
    # ------------------------------------------------------------------ #
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        exp = np.exp(shifted)
        out_data = exp / exp.sum(axis=axis, keepdims=True)

        def backward(grad: np.ndarray):
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            return (out_data * (grad - dot),)

        return self._make(out_data, (self,), backward, op="softmax", attrs={"axis": axis})

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - log_sum
        softmax = np.exp(out_data)

        def backward(grad: np.ndarray):
            return (grad - softmax * grad.sum(axis=axis, keepdims=True),)

        return self._make(out_data, (self,), backward, op="log_softmax", attrs={"axis": axis})

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Run reverse-mode differentiation from this tensor.

        ``grad`` defaults to ``1`` and therefore requires a scalar output,
        matching the usual loss-driven training loop.
        """
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)

        topo_order: List[Tensor] = []
        visited = set()

        def visit(node: Tensor) -> None:
            if id(node) in visited or not node.requires_grad:
                return
            visited.add(id(node))
            for parent in node._parents:
                visit(parent)
            topo_order.append(node)

        visit(self)

        grads = {id(self): np.asarray(grad, dtype=self.data.dtype)}
        for node in reversed(topo_order):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node._backward_fn is None or not node._parents:
                node.grad = node_grad if node.grad is None else node.grad + node_grad
                continue
            parent_grads = node._backward_fn(node_grad)
            for parent, parent_grad in zip(node._parents, parent_grads):
                if parent_grad is None or not parent.requires_grad:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + parent_grad
                else:
                    grads[key] = parent_grad
        # Leaves that are the output itself (no parents) were handled above.


# ---------------------------------------------------------------------- #
# Free functions operating on tensors
# ---------------------------------------------------------------------- #
def concatenate(tensors: Sequence[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [Tensor._ensure(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    boundaries = np.cumsum(sizes)[:-1]

    def backward(grad: np.ndarray):
        pieces = np.split(grad, boundaries, axis=axis)
        return tuple(pieces)

    requires_grad = any(t.requires_grad for t in tensors)
    if not requires_grad:
        out = Tensor(out_data)
    else:
        out = Tensor(out_data, requires_grad=True, parents=tensors, backward_fn=backward)
    _record_trace(out, "concatenate", tensors, {"axis": axis})
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [Tensor._ensure(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray):
        pieces = np.split(grad, len(tensors), axis=axis)
        return tuple(np.squeeze(piece, axis=axis) for piece in pieces)

    requires_grad = any(t.requires_grad for t in tensors)
    if not requires_grad:
        out = Tensor(out_data)
    else:
        out = Tensor(out_data, requires_grad=True, parents=tensors, backward_fn=backward)
    _record_trace(out, "stack", tensors, {"axis": axis})
    return out


def sparse_matmul(matrix: sp.spmatrix, tensor: Tensor) -> Tensor:
    """Multiply a constant sparse matrix by a dense differentiable tensor.

    The sparse operand is treated as a constant (graph structure never
    receives gradients), which keeps graph propagation cheap: the backward
    pass is a single transposed sparse multiplication.
    """
    if not sp.issparse(matrix):
        raise TypeError("sparse_matmul expects a scipy sparse matrix as the first operand")
    matrix = matrix.tocsr()
    out_data = matrix @ tensor.data

    def backward(grad: np.ndarray):
        return (matrix.T @ grad,)

    if not tensor.requires_grad:
        out = Tensor(out_data)
    else:
        out = Tensor(out_data, requires_grad=True, parents=(tensor,), backward_fn=backward)
    _record_trace(out, "sparse_matmul", (tensor,), {"matrix": matrix})
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Elementwise select between two tensors based on a boolean mask."""
    a = Tensor._ensure(a)
    b = Tensor._ensure(b)
    condition = np.asarray(condition, dtype=bool)
    out_data = np.where(condition, a.data, b.data)

    def backward(grad: np.ndarray):
        return (
            _unbroadcast(grad * condition, a.shape),
            _unbroadcast(grad * (~condition), b.shape),
        )

    requires_grad = a.requires_grad or b.requires_grad
    if not requires_grad:
        out = Tensor(out_data)
    else:
        out = Tensor(out_data, requires_grad=True, parents=(a, b), backward_fn=backward)
    _record_trace(out, "where", (a, b), {"condition": condition})
    return out


def as_tensor(value: Union[Tensor, ArrayLike], requires_grad: bool = False) -> Tensor:
    """Convert ``value`` to a :class:`Tensor`, reusing it when already one."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


def zeros(shape: Iterable[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(tuple(shape)), requires_grad=requires_grad)


def ones(shape: Iterable[int], requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(tuple(shape)), requires_grad=requires_grad)
