"""Functional (stateless) neural-network operations.

These helpers mirror ``torch.nn.functional`` for the small subset needed by
the reproduced models: activations, dropout, normalisation and losses all
expressed on :class:`repro.nn.tensor.Tensor`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .tensor import Tensor, as_tensor


def relu(x: Tensor) -> Tensor:
    return as_tensor(x).relu()


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    return as_tensor(x).leaky_relu(negative_slope)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    return as_tensor(x).elu(alpha)


def sigmoid(x: Tensor) -> Tensor:
    return as_tensor(x).sigmoid()


def tanh(x: Tensor) -> Tensor:
    return as_tensor(x).tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return as_tensor(x).softmax(axis=axis)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return as_tensor(x).log_softmax(axis=axis)


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)`` at train time."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    rng = rng if rng is not None else np.random.default_rng()
    keep = (rng.random(x.shape) >= p).astype(x.data.dtype) / (1.0 - p)
    return x * Tensor(keep)


def nll_loss(log_probs: Tensor, targets: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
    """Negative log-likelihood over (optionally masked) rows.

    Parameters
    ----------
    log_probs:
        ``(n, c)`` log-probabilities (output of :func:`log_softmax`).
    targets:
        ``(n,)`` integer class labels.
    mask:
        Optional boolean/index mask selecting the supervised rows.
    """
    targets = np.asarray(targets)
    n = log_probs.shape[0]
    if mask is None:
        rows = np.arange(n)
    else:
        mask = np.asarray(mask)
        rows = np.flatnonzero(mask) if mask.dtype == bool else mask
    picked = log_probs[(rows, targets[rows])]
    return -picked.mean()


def cross_entropy(logits: Tensor, targets: np.ndarray, mask: Optional[np.ndarray] = None) -> Tensor:
    """Softmax cross-entropy on raw logits."""
    return nll_loss(log_softmax(logits, axis=-1), targets, mask)


def binary_cross_entropy_with_logits(
    logits: Tensor, targets: np.ndarray, mask: Optional[np.ndarray] = None
) -> Tensor:
    """Numerically stable binary cross-entropy on raw logits."""
    targets = np.asarray(targets, dtype=np.float64)
    x = logits
    # log(1 + exp(-|x|)) + max(x, 0) - x * y
    abs_x = x.abs()
    loss = (abs_x * -1.0).exp().__add__(1.0).log() + x.relu() - x * Tensor(targets)
    if mask is not None:
        mask = np.asarray(mask)
        rows = np.flatnonzero(mask) if mask.dtype == bool else mask
        loss = loss[rows]
    return loss.mean()


def l2_regularization(parameters) -> Tensor:
    """Sum of squared parameter entries, used for explicit weight decay."""
    total: Optional[Tensor] = None
    for param in parameters:
        term = (param * param).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total
