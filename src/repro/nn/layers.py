"""Neural-network modules (stateful layers) built on the autograd tensor.

The module system intentionally mirrors the PyTorch conventions used by the
original paper's code base so that model definitions in
:mod:`repro.models` read like their published counterparts:

* :class:`Module` tracks parameters and sub-modules recursively;
* :class:`Linear`, :class:`MLP`, :class:`Dropout`, :class:`LayerNorm` and
  :class:`BatchNorm` cover every layer used by the reproduced models;
* training/eval mode is toggled with :meth:`Module.train` /
  :meth:`Module.eval`, which controls dropout and batch-norm statistics.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor


class Parameter(Tensor):
    """A tensor registered as trainable state of a :class:`Module`."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models.

    Sub-classes assign :class:`Parameter` and :class:`Module` instances as
    attributes; :meth:`parameters` discovers them recursively.
    """

    def __init__(self) -> None:
        self.training = True
        self._buffer_names: List[str] = []

    # -------------------------------------------------------------- #
    # Parameter / module discovery
    # -------------------------------------------------------------- #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple]:
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full_name, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full_name}.")
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Parameter):
                        yield f"{full_name}.{index}", item
                    elif isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full_name}.{index}.")

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    # -------------------------------------------------------------- #
    # Buffers: non-trainable ndarray state (e.g. batch-norm statistics)
    # that must survive a state-dict round trip for inference to be
    # reproducible after reload.
    # -------------------------------------------------------------- #
    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register ``value`` as persistent, non-trainable state.

        The attribute stays a plain ndarray and may be reassigned freely
        (running statistics do this every training step); only the *name*
        is recorded, so :meth:`named_buffers` always sees the live value.
        """
        setattr(self, name, np.asarray(value))
        if name not in self._buffer_names:
            self._buffer_names.append(name)

    def named_buffers(self, prefix: str = "") -> Iterator[tuple]:
        for name, (owner, attr) in self._buffer_owners(prefix).items():
            yield name, getattr(owner, attr)

    def modules(self) -> Iterator["Module"]:
        yield self
        for value in vars(self).items():
            pass
        for value in vars(self).values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    # -------------------------------------------------------------- #
    # Mode switching
    # -------------------------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # -------------------------------------------------------------- #
    # State dict (plain ndarray copies: early stopping + serving
    # artifacts).  Copies preserve each array's dtype so an export /
    # reload round trip through ``.npz`` is bit-exact.
    # -------------------------------------------------------------- #
    def state_dict(self) -> Dict[str, np.ndarray]:
        state = {name: param.data.copy() for name, param in self.named_parameters()}
        state.update({name: np.array(buffer, copy=True) for name, buffer in self.named_buffers()})
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffer_owners = self._buffer_owners()
        missing = set(state) - set(params) - set(buffer_owners)
        if missing:
            raise KeyError(f"state dict contains unknown parameters: {sorted(missing)}")
        for name, value in state.items():
            if name in params:
                params[name].data = np.array(value, dtype=params[name].data.dtype)
            else:
                owner, attr = buffer_owners[name]
                current = getattr(owner, attr)
                setattr(owner, attr, np.array(value, dtype=current.dtype))

    def _buffer_owners(self, prefix: str = "") -> Dict[str, tuple]:
        """Map dotted buffer names to ``(owning module, attribute)`` pairs."""
        owners: Dict[str, tuple] = {}
        for name in getattr(self, "_buffer_names", ()):
            owners[f"{prefix}{name}"] = (self, name)
        for name, value in vars(self).items():
            full_name = f"{prefix}{name}"
            if isinstance(value, Module):
                owners.update(value._buffer_owners(prefix=f"{full_name}."))
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        owners.update(item._buffer_owners(prefix=f"{full_name}.{index}."))
        return owners

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -------------------------------------------------------------- #
    # Call protocol
    # -------------------------------------------------------------- #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def num_parameters(self) -> int:
        """Total number of trainable scalars in this module."""
        return sum(param.size for param in self.parameters())


class Linear(Module):
    """Affine map ``y = x W + b`` with Glorot-initialised weights."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.glorot_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Dropout(Module):
    """Inverted dropout; a no-op in eval mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.p = p
        self.rng = rng if rng is not None else np.random.default_rng()

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.training, self.rng)


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normalised = centered / ((variance + self.eps) ** 0.5)
        return normalised * self.gamma + self.beta


class BatchNorm(Module):
    """Batch normalisation over the node dimension (axis 0).

    Used by LINKX/GloGNN-style models; keeps running statistics for eval.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(init.ones((num_features,)))
        self.beta = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            batch_mean = x.data.mean(axis=0)
            batch_var = x.data.var(axis=0)
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * batch_mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * batch_var
            mean, var = batch_mean, batch_var
        else:
            mean, var = self.running_mean, self.running_var
        normalised = (x - Tensor(mean)) / Tensor(np.sqrt(var + self.eps))
        return normalised * self.gamma + self.beta


class Sequential(Module):
    """Run sub-modules in order; accepts any number of modules."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class MLP(Module):
    """Multi-layer perceptron with configurable depth, dropout and norm.

    This is the classifier head used throughout the reproduction (Alg. 1
    line 15 of the paper), and also serves as the standalone ``MLP``
    baseline.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        out_features: int,
        num_layers: int = 2,
        dropout: float = 0.5,
        activation: str = "relu",
        batch_norm: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if num_layers < 1:
            raise ValueError("MLP requires at least one layer")
        rng = rng if rng is not None else np.random.default_rng()
        self.activation = activation
        self.dropout = Dropout(dropout, rng=rng)
        self.linears: List[Linear] = []
        self.norms: List[Module] = []
        dims = self._layer_dims(in_features, hidden_features, out_features, num_layers)
        for layer_index in range(num_layers):
            self.linears.append(Linear(dims[layer_index], dims[layer_index + 1], rng=rng))
            if batch_norm and layer_index < num_layers - 1:
                self.norms.append(BatchNorm(dims[layer_index + 1]))

    @staticmethod
    def _layer_dims(in_features: int, hidden: int, out_features: int, num_layers: int) -> List[int]:
        if num_layers == 1:
            return [in_features, out_features]
        return [in_features] + [hidden] * (num_layers - 1) + [out_features]

    def _activate(self, x: Tensor) -> Tensor:
        if self.activation == "relu":
            return x.relu()
        if self.activation == "elu":
            return x.elu()
        if self.activation == "tanh":
            return x.tanh()
        if self.activation == "leaky_relu":
            return x.leaky_relu()
        raise ValueError(f"unknown activation {self.activation!r}")

    def forward(self, x: Tensor) -> Tensor:
        for layer_index, linear in enumerate(self.linears):
            x = self.dropout(x)
            x = linear(x)
            is_last = layer_index == len(self.linears) - 1
            if not is_last:
                if self.norms:
                    x = self.norms[layer_index](x)
                x = self._activate(x)
        return x
