"""Minimal NumPy-based neural-network substrate (autograd, layers, optimisers).

This package replaces PyTorch for the reproduction: every model is a
composition of :class:`repro.nn.Module` objects whose parameters are
:class:`repro.nn.Tensor` instances trained through reverse-mode autograd.
"""

from . import functional
from .tensor import Tensor, as_tensor, concatenate, sparse_matmul, stack, where, zeros, ones
from .layers import (
    BatchNorm,
    Dropout,
    LayerNorm,
    Linear,
    MLP,
    Module,
    Parameter,
    Sequential,
)
from .optim import Adam, Optimizer, SGD

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "sparse_matmul",
    "where",
    "zeros",
    "ones",
    "functional",
    "Module",
    "Parameter",
    "Linear",
    "MLP",
    "Dropout",
    "LayerNorm",
    "BatchNorm",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
]
