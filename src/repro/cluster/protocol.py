"""Typed, versioned JSON-lines protocol between supervisor and workers.

One message per line, UTF-8 JSON, over the worker's stdin/stdout pipes —
no sockets to leak, no ports to collide, and a dead pipe *is* the death
signal (the supervisor's reader sees EOF the instant a worker exits).

Requests and responses are plain dicts with a mandatory version field::

    {"v": 1, "id": 7, "op": "predict", "args": {...}}            # request
    {"v": 1, "id": 7, "ok": true,  "result": {...}}              # success
    {"v": 1, "id": 7, "ok": false, "error": "...",
     "error_type": "UnknownShard"}                               # failure

``id`` correlates a response to its request, so a caller can pipeline
several requests down one pipe; ``error_type`` carries the exception class
name so the supervisor can map failures back to typed errors (overload,
unknown shard) instead of string-matching.  A version mismatch — an old
worker binary behind a new supervisor, or vice versa — is rejected loudly
with :class:`ProtocolError` rather than misinterpreted.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping, Optional

#: bumped whenever the message schema changes; both ends must agree.
PROTOCOL_VERSION = 1

#: cap on one encoded message line; a worker reading an absurd line is
#: better off dying loudly than allocating without bound.
MAX_MESSAGE_BYTES = 64 << 20


#: how many bytes of an offending line ride inside a ProtocolError — long
#: enough to recognise the garbage (an HTTP request? a stack trace?),
#: short enough that a log line stays a log line.
PREVIEW_BYTES = 200


class ProtocolError(RuntimeError):
    """A message violated the wire protocol (bad JSON, wrong version)."""


def _preview(line: bytes) -> str:
    """A log-safe description of the offending line: length + truncated repr.

    Sockets deliver garbage more creatively than pipes do (a port scanner,
    a mis-pointed curl, a truncated frame after a reset), so every
    rejection must be debuggable from the error text alone.
    """
    shown = line[:PREVIEW_BYTES]
    suffix = "" if len(line) <= PREVIEW_BYTES else f"… (+{len(line) - PREVIEW_BYTES} more bytes)"
    return f"{len(line)}-byte line {shown!r}{suffix}"


def encode_message(message: Mapping[str, Any]) -> bytes:
    """One protocol message as a newline-terminated JSON line."""
    raw = (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")
    if len(raw) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(raw)} bytes exceeds the {MAX_MESSAGE_BYTES}-byte cap"
        )
    return raw


def decode_message(line: bytes) -> Dict[str, Any]:
    """Parse and validate one line; raises :class:`ProtocolError` loudly."""
    if len(line) > MAX_MESSAGE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the {MAX_MESSAGE_BYTES}-byte cap: "
            f"{_preview(line)}"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(
            f"message is not valid JSON ({error}): {_preview(line)}"
        ) from None
    if not isinstance(message, dict):
        raise ProtocolError(
            f"message must be a JSON object, got {type(message).__name__}: "
            f"{_preview(line)}"
        )
    version = message.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: got {version!r}, "
            f"this end speaks {PROTOCOL_VERSION}: {_preview(line)}"
        )
    return message


def request(request_id: int, op: str, args: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "id": int(request_id), "op": str(op), "args": dict(args or {})}


def response_ok(request_id: int, result: Any) -> Dict[str, Any]:
    return {"v": PROTOCOL_VERSION, "id": int(request_id), "ok": True, "result": result}


def response_error(request_id: int, error: str, error_type: str) -> Dict[str, Any]:
    return {
        "v": PROTOCOL_VERSION,
        "id": int(request_id),
        "ok": False,
        "error": str(error),
        "error_type": str(error_type),
    }
