"""repro.cluster — multi-process and multi-machine workers.

Everything here is pure stdlib process plumbing over the rest of the
system; no new dependency.  Supervisor and workers speak a typed,
versioned JSON-lines protocol over either stdin/stdout pipes (local
forks) or handshake-verified TCP sockets (cross-machine connect-back).

Four capabilities:

* :class:`WorkerPool` — spawn N ``python -m repro.cluster.worker``
  processes and drive them through one typed call interface with
  heartbeats, task timeouts, restart-on-crash and retry-on-death
  (:mod:`repro.cluster.pool`, :mod:`repro.cluster.worker`,
  :mod:`repro.cluster.protocol`);
* **cross-machine workers** — the same frames over TCP: the pool binds a
  :class:`WorkerListener` (``listen="HOST:PORT"``, shared ``secret``) and
  ``python -m repro.cluster.worker --connect HOST:PORT --secret-file F``
  workers dial in through a mutual protocol-version + HMAC handshake;
  :func:`ssh_worker_command` launches that command on a remote host
  (:mod:`repro.cluster.net`);
* **distributed sweeps** — ``repro experiment --shard i/N`` runs the
  deterministic shard ``i`` of a :class:`repro.api.SweepSpec` and ``repro
  merge-reports`` reassembles the shards into a report byte-identical to
  the serial run (:mod:`repro.cluster.sweeps`);
* **multi-process serving** — ``repro serve --workers N`` puts a parent
  HTTP front door over N router workers (local, remote, or a mix), with
  worker- and host-labelled aggregated metrics and 503 shedding while
  the fleet is mid-restart (:mod:`repro.cluster.serve`).
"""

from .net import (
    CONNECT_PLACEHOLDER,
    HandshakeError,
    PipeTransport,
    TcpTransport,
    Transport,
    TransportClosed,
    WorkerListener,
    parse_hostport,
    read_secret,
    ssh_worker_command,
    worker_connect_command,
)
from .pool import (
    ClusterUnavailable,
    PoolStats,
    RemoteError,
    TaskTimeout,
    WorkerDied,
    WorkerError,
    WorkerPool,
)
from .protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
)
from .serve import ClusterHttpServer, serve_cluster
from .sweeps import (
    ShardReport,
    merge_shard_files,
    merge_shard_reports,
    run_sweep_shard,
    spec_hash,
)

__all__ = [
    "WorkerPool",
    "PoolStats",
    "WorkerError",
    "WorkerDied",
    "TaskTimeout",
    "ClusterUnavailable",
    "RemoteError",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "MAX_MESSAGE_BYTES",
    "encode_message",
    "decode_message",
    "Transport",
    "PipeTransport",
    "TcpTransport",
    "TransportClosed",
    "HandshakeError",
    "WorkerListener",
    "CONNECT_PLACEHOLDER",
    "parse_hostport",
    "read_secret",
    "worker_connect_command",
    "ssh_worker_command",
    "ClusterHttpServer",
    "serve_cluster",
    "ShardReport",
    "spec_hash",
    "run_sweep_shard",
    "merge_shard_reports",
    "merge_shard_files",
]
