"""repro.cluster — multi-process workers for sweeps and GIL-free serving.

Everything here is pure stdlib process plumbing over the rest of the
system; no new dependency, no sockets between supervisor and workers
(stdin/stdout pipes carry a typed, versioned JSON-lines protocol).

Three capabilities:

* :class:`WorkerPool` — spawn N ``python -m repro.cluster.worker``
  processes and drive them through one typed call interface with
  heartbeats, task timeouts, restart-on-crash and retry-on-death
  (:mod:`repro.cluster.pool`, :mod:`repro.cluster.worker`,
  :mod:`repro.cluster.protocol`);
* **distributed sweeps** — ``repro experiment --shard i/N`` runs the
  deterministic shard ``i`` of a :class:`repro.api.SweepSpec` and ``repro
  merge-reports`` reassembles the shards into a report byte-identical to
  the serial run (:mod:`repro.cluster.sweeps`);
* **multi-process serving** — ``repro serve --workers N`` puts a parent
  HTTP front door over N router workers sharing one spilled cache
  directory, with worker-labelled aggregated metrics and 503 shedding
  while the fleet is mid-restart (:mod:`repro.cluster.serve`).
"""

from .pool import (
    ClusterUnavailable,
    PoolStats,
    RemoteError,
    TaskTimeout,
    WorkerDied,
    WorkerError,
    WorkerPool,
)
from .protocol import (
    MAX_MESSAGE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
)
from .serve import ClusterHttpServer, serve_cluster
from .sweeps import (
    ShardReport,
    merge_shard_files,
    merge_shard_reports,
    run_sweep_shard,
    spec_hash,
)

__all__ = [
    "WorkerPool",
    "PoolStats",
    "WorkerError",
    "WorkerDied",
    "TaskTimeout",
    "ClusterUnavailable",
    "RemoteError",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "MAX_MESSAGE_BYTES",
    "encode_message",
    "decode_message",
    "ClusterHttpServer",
    "serve_cluster",
    "ShardReport",
    "spec_hash",
    "run_sweep_shard",
    "merge_shard_reports",
    "merge_shard_files",
]
