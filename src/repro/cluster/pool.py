"""The :class:`WorkerPool` supervisor: N worker processes, one contract.

The pool spawns ``count`` copies of ``python -m repro.cluster.worker``,
speaks the versioned JSON-lines protocol over their stdin/stdout pipes,
and turns a fleet of crashable processes into one dependable callable:

* **dispatch** — :meth:`WorkerPool.call` round-robins ops across healthy
  workers and returns the result (or raises the worker's typed error);
* **heartbeats** — an idle worker is pinged every ``heartbeat_interval``
  seconds; a worker that stops answering is killed and restarted;
* **task timeouts** — an op that exceeds its deadline gets its worker
  killed (the worker is single-threaded; the op *is* the worker) and
  raises :class:`TaskTimeout`;
* **restart-on-crash** — a worker that dies (crash, kill, OOM) is
  respawned with its ``init_ops`` replayed (e.g. re-``load`` its serving
  artifacts), up to ``max_restarts`` times; in-flight calls on the dead
  worker fail with :class:`WorkerDied` and — because every op this system
  sends is a deterministic, idempotent function of its arguments —
  :meth:`call` transparently retries them on a surviving worker.  One
  dying worker degrades throughput; it does not fail a single request.
* **shedding** — when *no* worker is healthy (all mid-restart or dead),
  :meth:`call` raises :class:`ClusterUnavailable`, which the serving
  front door maps to a 503.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from concurrent.futures import Future, TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs.stats import Stats, StatsSource
from .protocol import ProtocolError, decode_message, encode_message, request

#: default bound on one op round trip (generous: a sweep shard trains).
DEFAULT_TASK_TIMEOUT = 300.0

#: default idle-worker heartbeat cadence.
DEFAULT_HEARTBEAT_INTERVAL = 2.0

#: how long an idle worker may take to answer a ping before it is
#: declared wedged and restarted.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0

#: default respawn budget per worker slot.
DEFAULT_MAX_RESTARTS = 3

#: how long a respawned worker may take to replay its init ops.
DEFAULT_INIT_TIMEOUT = 300.0


class WorkerError(RuntimeError):
    """Base class for everything the pool can raise about a task."""


class WorkerDied(WorkerError):
    """The worker exited (crash or kill) before answering the op."""


class TaskTimeout(WorkerError):
    """The op outlived its deadline; its worker was killed and restarted."""


class ClusterUnavailable(WorkerError):
    """No healthy worker exists right now (all dead or mid-restart)."""


class RemoteError(WorkerError):
    """The op raised inside the worker; ``error_type`` names the class."""

    def __init__(self, message: str, error_type: str) -> None:
        super().__init__(message)
        self.error_type = error_type


@dataclass
class PoolStats(Stats):
    """Supervisor counters plus one entry per worker slot."""

    count: int = 0
    healthy: int = 0
    tasks: int = 0
    retries: int = 0
    failures: int = 0
    restarts: int = 0
    workers: Dict[str, Dict[str, object]] = field(default_factory=dict)


class _Worker:
    """One worker slot: a process, its pipes, and its reader thread."""

    def __init__(self, pool: "WorkerPool", index: int) -> None:
        self.pool = pool
        self.index = index
        self.name = f"w{index}"
        self.lock = threading.Lock()  # guards writes + pending bookkeeping
        self.process: Optional[subprocess.Popen] = None
        self.reader: Optional[threading.Thread] = None
        self.pending: Dict[int, Future] = {}
        self.healthy = False
        self.retired = False  # out of restart budget; never respawned
        self.restarts = 0
        self.tasks_done = 0
        self.last_active = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def spawn(self) -> None:
        """Start the process and its reader; replay the pool's init ops."""
        env = dict(os.environ)
        package_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH", "")
        if package_root not in existing.split(os.pathsep):
            env["PYTHONPATH"] = (
                package_root + (os.pathsep + existing if existing else "")
            )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cluster.worker", "--worker-id", self.name],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # worker tracebacks surface on the parent's stderr
            env=env,
            bufsize=0,
        )
        with self.lock:
            self.process = process
            self.pending = {}
        reader = threading.Thread(
            target=self._read_loop,
            args=(process,),
            name=f"repro-cluster-reader-{self.name}",
            daemon=True,
        )
        self.reader = reader
        reader.start()
        for op, args in self.pool.init_ops:
            future = self.send(op, args)
            future.result(timeout=self.pool.init_timeout)
        self.last_active = time.monotonic()
        self.healthy = True

    def kill(self) -> None:
        """Force the process down; the reader thread handles the fallout.

        Health is cleared *before* the signal lands so callers polling
        ``healthy_workers()`` never see a doomed worker as routable in the
        window between the SIGKILL and the reader thread observing EOF.
        """
        self.healthy = False
        with self.lock:
            process = self.process
        if process is not None and process.poll() is None:
            process.kill()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Polite stop: ask, wait, then kill."""
        self.healthy = False
        with self.lock:
            process = self.process
        if process is None:
            return
        if process.poll() is None:
            try:
                future = self.send("shutdown", {})
                future.result(timeout=timeout)
            except (WorkerError, FutureTimeout, OSError):
                pass
            try:
                process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=timeout)

    # ------------------------------------------------------------------ #
    # I/O
    # ------------------------------------------------------------------ #
    def send(self, op: str, args: Mapping[str, Any]) -> "Future[Any]":
        """Write one request; the reader resolves the returned future."""
        future: "Future[Any]" = Future()
        with self.lock:
            process = self.process
            if process is None or process.poll() is not None or process.stdin is None:
                raise WorkerDied(f"worker {self.name} is not running")
            request_id = self.pool._next_id()
            self.pending[request_id] = future
            try:
                process.stdin.write(encode_message(request(request_id, op, args)))
                process.stdin.flush()
            except (BrokenPipeError, OSError):
                self.pending.pop(request_id, None)
                raise WorkerDied(f"worker {self.name} pipe is closed") from None
        return future

    def _read_loop(self, process: subprocess.Popen) -> None:
        stdout = process.stdout
        assert stdout is not None
        while True:
            line = stdout.readline()
            if not line:
                break
            try:
                message = decode_message(line)
            except ProtocolError as error:
                # A worker speaking another protocol version (or emitting
                # garbage) cannot be trusted with tasks: fail loudly.
                self.pool._note_protocol_error(self, error)
                break
            request_id = int(message.get("id", -1))
            with self.lock:
                future = self.pending.pop(request_id, None)
                self.tasks_done += 1
                self.last_active = time.monotonic()
            if future is None:
                continue  # response for a request a timeout already failed
            if message.get("ok"):
                future.set_result(message.get("result"))
            else:
                future.set_exception(
                    RemoteError(
                        str(message.get("error", "")),
                        str(message.get("error_type", "RemoteError")),
                    )
                )
        # EOF: the worker exited (clean shutdown, crash, or kill).
        self.healthy = False
        with self.lock:
            doomed = list(self.pending.values())
            self.pending = {}
        for future in doomed:
            if not future.done():
                future.set_exception(
                    WorkerDied(f"worker {self.name} died with the op in flight")
                )
        self.pool._on_worker_exit(self, process)

    def describe(self) -> Dict[str, object]:
        with self.lock:
            process = self.process
            pending = len(self.pending)
        return {
            "name": self.name,
            "pid": process.pid if process is not None else None,
            "alive": process is not None and process.poll() is None,
            "healthy": self.healthy,
            "retired": self.retired,
            "restarts": self.restarts,
            "tasks_done": self.tasks_done,
            "pending": pending,
        }


class WorkerPool(StatsSource):
    """Supervise N worker processes behind one typed call interface.

    ``init_ops`` is a list of ``(op, args)`` pairs replayed into every
    fresh worker — at first spawn and after every restart — which is how
    serving workers re-``load`` their artifacts after a crash.  The pool
    is a context manager; ``stop()`` shuts workers down politely and
    kills stragglers.
    """

    def __init__(
        self,
        count: int,
        *,
        init_ops: Optional[Sequence[Tuple[str, Mapping[str, Any]]]] = None,
        task_timeout: float = DEFAULT_TASK_TIMEOUT,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        init_timeout: float = DEFAULT_INIT_TIMEOUT,
    ) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {heartbeat_interval}"
            )
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.count = count
        self.init_ops: List[Tuple[str, Dict[str, Any]]] = [
            (str(op), dict(args)) for op, args in (init_ops or [])
        ]
        self.task_timeout = task_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_restarts = max_restarts
        self.init_timeout = init_timeout
        self._workers = [_Worker(self, index) for index in range(count)]
        self._lock = threading.Lock()
        self._id_counter = 0
        self._rr = 0
        self._tasks = 0
        self._retries = 0
        self._failures = 0
        self._restarts = 0
        self._started = False
        self._stopping = False
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._heartbeat_wake = threading.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "WorkerPool":
        if self._started:
            raise RuntimeError("pool is already started")
        self._started = True
        self._stopping = False
        try:
            for worker in self._workers:
                worker.spawn()
        except BaseException:
            self._stopping = True
            for worker in self._workers:
                worker.kill()
            raise
        self._heartbeat_wake.clear()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-cluster-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stopping = True
        self._heartbeat_wake.set()
        thread = self._heartbeat_thread
        if thread is not None:
            thread.join(timeout)
            self._heartbeat_thread = None
        for worker in self._workers:
            worker.shutdown(timeout=min(timeout, 5.0))
        self._started = False

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def call(
        self,
        op: str,
        args: Optional[Mapping[str, Any]] = None,
        *,
        timeout: Optional[float] = None,
        retries: int = 2,
        worker: Optional[str] = None,
    ) -> Any:
        """Run one op and return its result.

        Dispatch is round-robin over healthy workers (or pinned with
        ``worker=``).  :class:`WorkerDied` failures are retried on another
        worker up to ``retries`` times — safe because every op in this
        system is an idempotent function of its arguments — so an induced
        crash degrades latency, never correctness.  Raises
        :class:`TaskTimeout` (after killing the wedged worker),
        :class:`RemoteError` for in-worker exceptions, and
        :class:`ClusterUnavailable` when no worker is healthy.
        """
        args = dict(args or {})
        deadline = self.task_timeout if timeout is None else timeout
        attempts = max(1, retries + 1)
        last_death: Optional[WorkerDied] = None
        for attempt in range(attempts):
            target = self._pick(worker)
            with self._lock:
                self._tasks += 1
                if attempt:
                    self._retries += 1
            try:
                future = target.send(op, args)
            except WorkerDied as error:
                last_death = error
                continue
            try:
                return future.result(timeout=deadline)
            except WorkerDied as error:
                last_death = error
                if worker is not None:
                    break  # a pinned call must not silently move hosts
                continue
            except FutureTimeout:
                with self._lock:
                    self._failures += 1
                # The worker is single-threaded: the only way to reclaim
                # it from a wedged op is to kill it (the exit handler
                # respawns it).
                target.kill()
                raise TaskTimeout(
                    f"op {op!r} exceeded {deadline}s on worker {target.name}"
                ) from None
            except RemoteError:
                with self._lock:
                    self._failures += 1
                raise
        with self._lock:
            self._failures += 1
        raise last_death if last_death is not None else ClusterUnavailable(
            "no healthy worker accepted the op"
        )

    def broadcast(
        self,
        op: str,
        args: Optional[Mapping[str, Any]] = None,
        *,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Run one op on every healthy worker; maps worker name → result.

        Workers that die or error mid-op are simply absent from the
        result — a broadcast is an observation, not a transaction.
        """
        args = dict(args or {})
        deadline = self.task_timeout if timeout is None else timeout
        futures: List[Tuple[str, "Future[Any]"]] = []
        for worker in self._workers:
            if not worker.healthy:
                continue
            try:
                futures.append((worker.name, worker.send(op, args)))
            except WorkerDied:
                continue
        results: Dict[str, Any] = {}
        for name, future in futures:
            try:
                results[name] = future.result(timeout=deadline)
            except (WorkerError, FutureTimeout):
                continue
        return results

    def kill_worker(self, name: str) -> bool:
        """SIGKILL one worker by name (crash-recovery tests/benchmarks)."""
        for worker in self._workers:
            if worker.name == name:
                worker.kill()
                return True
        return False

    def healthy_workers(self) -> List[str]:
        return [worker.name for worker in self._workers if worker.healthy]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> PoolStats:
        with self._lock:
            tasks, retries = self._tasks, self._retries
            failures, restarts = self._failures, self._restarts
        described = {worker.name: worker.describe() for worker in self._workers}
        return PoolStats(
            count=self.count,
            healthy=sum(1 for entry in described.values() if entry["healthy"]),
            tasks=tasks,
            retries=retries,
            failures=failures,
            restarts=restarts,
            workers=described,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _next_id(self) -> int:
        with self._lock:
            self._id_counter += 1
            return self._id_counter

    def _pick(self, name: Optional[str]) -> _Worker:
        with self._lock:
            if name is not None:
                for worker in self._workers:
                    if worker.name == name:
                        if not worker.healthy:
                            raise ClusterUnavailable(
                                f"worker {name} is not healthy right now"
                            )
                        return worker
                raise KeyError(f"unknown worker {name!r}")
            for offset in range(len(self._workers)):
                worker = self._workers[(self._rr + offset) % len(self._workers)]
                if worker.healthy:
                    self._rr = (self._rr + offset + 1) % len(self._workers)
                    return worker
        raise ClusterUnavailable(
            "no healthy worker (all dead or mid-restart); retry shortly"
        )

    def _on_worker_exit(self, worker: _Worker, process: subprocess.Popen) -> None:
        """Reader-thread callback when a worker's pipe reaches EOF."""
        if self._stopping:
            return
        with worker.lock:
            if worker.process is not process:
                return  # a stale reader from a previous generation
        if worker.restarts >= self.max_restarts:
            worker.retired = True
            print(
                f"repro.cluster: worker {worker.name} exceeded "
                f"{self.max_restarts} restarts; retiring the slot",
                file=sys.stderr,
            )
            return
        worker.restarts += 1
        with self._lock:
            self._restarts += 1
        threading.Thread(
            target=self._respawn,
            args=(worker,),
            name=f"repro-cluster-respawn-{worker.name}",
            daemon=True,
        ).start()

    def _respawn(self, worker: _Worker) -> None:
        try:
            process = worker.process
            if process is not None:
                process.wait(timeout=10.0)
            if not self._stopping:
                worker.spawn()
        except Exception as error:
            print(
                f"repro.cluster: respawn of worker {worker.name} failed: {error}",
                file=sys.stderr,
            )
            # One more chance through the same path, until the budget runs
            # out; a worker whose init op keeps failing retires loudly.
            if worker.process is not None:
                self._on_worker_exit(worker, worker.process)

    def _note_protocol_error(self, worker: _Worker, error: ProtocolError) -> None:
        print(
            f"repro.cluster: worker {worker.name} protocol error: {error}; "
            "killing the worker",
            file=sys.stderr,
        )
        worker.kill()

    def _heartbeat_loop(self) -> None:
        while not self._heartbeat_wake.wait(timeout=self.heartbeat_interval):
            for worker in self._workers:
                if not worker.healthy or self._stopping:
                    continue
                with worker.lock:
                    busy = bool(worker.pending)
                    idle_for = time.monotonic() - worker.last_active
                if busy or idle_for < self.heartbeat_interval:
                    # Busy workers are covered by task timeouts; pinging a
                    # single-threaded worker mid-op would only queue up.
                    continue
                try:
                    worker.send("ping", {}).result(timeout=self.heartbeat_timeout)
                except (WorkerError, FutureTimeout, OSError):
                    if not self._stopping:
                        worker.kill()  # the exit handler respawns it
