"""The :class:`WorkerPool` supervisor: N worker processes, one contract.

The pool drives ``count`` workers — local ``python -m
repro.cluster.worker`` children over stdin/stdout pipes, cross-machine
workers over handshake-verified TCP sockets, or a mix — and turns a fleet
of crashable processes into one dependable callable:

* **dispatch** — :meth:`WorkerPool.call` round-robins ops across healthy
  workers and returns the result (or raises the worker's typed error);
* **heartbeats** — an idle worker is pinged every ``heartbeat_interval``
  seconds with a *write timeout* on the probe (a wedged peer whose kernel
  buffers filled up stalls that one probe, never the supervision loop); a
  worker that stops answering is killed and restarted;
* **task timeouts** — an op that exceeds its deadline gets its worker
  killed (the worker is single-threaded; the op *is* the worker) and
  raises :class:`TaskTimeout`;
* **restart-on-crash** — a worker that dies (crash, kill, OOM, dropped
  connection) is respawned with its ``init_ops`` replayed (e.g.
  re-``load`` its serving artifacts), up to ``max_restarts`` times;
  in-flight calls on the dead worker fail with :class:`WorkerDied` and —
  because every op this system sends is a deterministic, idempotent
  function of its arguments — :meth:`call` transparently retries them on
  a surviving worker.  One dying worker degrades throughput; it does not
  fail a single request.
* **shedding** — when *no* worker is healthy (all mid-restart or dead),
  :meth:`call` raises :class:`ClusterUnavailable`, which the serving
  front door maps to a 503.

Cross-machine slots register *worker-first*: construct the pool with
``listen="HOST:PORT"`` and a shared ``secret`` and it binds a
:class:`~repro.cluster.net.WorkerListener`; each remote slot is filled by
the next worker that dials in (``python -m repro.cluster.worker
--connect HOST:PORT --secret-file F``) and survives the protocol-version
+ HMAC handshake.  ``spawn_commands`` optionally gives each remote slot
an argv (see :func:`repro.cluster.net.ssh_worker_command`) the pool runs
to *cause* that connect-back — at first spawn and after every crash —
which is what makes remote restarts as transparent as local ones.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from concurrent.futures import Future, TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs.stats import Stats, StatsSource
from .net import (
    CONNECT_PLACEHOLDER,
    PipeTransport,
    TcpTransport,
    Transport,
    TransportClosed,
    WorkerListener,
)
from .protocol import ProtocolError, decode_message, encode_message, request

#: default bound on one op round trip (generous: a sweep shard trains).
DEFAULT_TASK_TIMEOUT = 300.0

#: default idle-worker heartbeat cadence.
DEFAULT_HEARTBEAT_INTERVAL = 2.0

#: how long an idle worker may take to answer a ping before it is
#: declared wedged and restarted.
DEFAULT_HEARTBEAT_TIMEOUT = 10.0

#: default respawn budget per worker slot.
DEFAULT_MAX_RESTARTS = 3

#: how long a respawned worker may take to replay its init ops.
DEFAULT_INIT_TIMEOUT = 300.0

#: how long a remote slot waits for a worker to connect back (first spawn
#: and every respawn) before the attempt counts as a failed restart.
DEFAULT_REGISTER_TIMEOUT = 60.0


class WorkerError(RuntimeError):
    """Base class for everything the pool can raise about a task."""


class WorkerDied(WorkerError):
    """The worker exited (crash or kill) before answering the op."""


class TaskTimeout(WorkerError):
    """The op outlived its deadline; its worker was killed and restarted."""


class ClusterUnavailable(WorkerError):
    """No healthy worker exists right now (all dead or mid-restart)."""


class RemoteError(WorkerError):
    """The op raised inside the worker; ``error_type`` names the class."""

    def __init__(self, message: str, error_type: str) -> None:
        super().__init__(message)
        self.error_type = error_type


@dataclass
class PoolStats(Stats):
    """Supervisor counters plus one entry per worker slot."""

    count: int = 0
    healthy: int = 0
    tasks: int = 0
    retries: int = 0
    failures: int = 0
    restarts: int = 0
    workers: Dict[str, Dict[str, object]] = field(default_factory=dict)


def _worker_env() -> Dict[str, str]:
    """The child environment with this package importable."""
    env = dict(os.environ)
    package_root = str(Path(__file__).resolve().parents[2])
    existing = env.get("PYTHONPATH", "")
    if package_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            package_root + (os.pathsep + existing if existing else "")
        )
    return env


class _PipeLauncher:
    """Default slot launcher: fork a local worker, speak over its pipes."""

    kind = "pipe"

    def launch(self, worker: "_Worker") -> Transport:
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cluster.worker", "--worker-id", worker.name],
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            stderr=None,  # worker tracebacks surface on the parent's stderr
            env=_worker_env(),
            bufsize=0,
        )
        return PipeTransport(process)

    def close(self) -> None:
        pass


class _ConnectLauncher:
    """Remote slot launcher: (optionally spawn, then) await a connect-back.

    With ``command`` set — typically :func:`~repro.cluster.net.ssh_worker_command`
    output, with :data:`~repro.cluster.net.CONNECT_PLACEHOLDER` standing in
    for the listener address — the launcher runs the command and waits for
    the resulting registration; re-launching after a crash re-runs it.
    Without a command the slot is filled by whichever externally-started
    worker dials in next.
    """

    kind = "tcp"

    def __init__(self, pool: "WorkerPool", command: Optional[Sequence[str]] = None) -> None:
        self.pool = pool
        self.command = [str(part) for part in command] if command is not None else None
        self.child: Optional[subprocess.Popen] = None

    def launch(self, worker: "_Worker") -> Transport:
        listener = self.pool.listener
        assert listener is not None
        if self.command is not None:
            self._reap()
            argv = [
                part.replace(CONNECT_PLACEHOLDER, listener.address)
                for part in self.command
            ]
            self.child = subprocess.Popen(
                argv,
                stdin=subprocess.DEVNULL,
                stdout=None,
                stderr=None,  # remote/worker stderr surfaces on the parent's
                env=_worker_env(),
            )
        deadline = time.monotonic() + self.pool.register_timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                self._reap()
                raise TimeoutError(
                    f"no worker connected back for slot {worker.name} within "
                    f"{self.pool.register_timeout}s (listener {listener.address})"
                )
            transport = listener.next_transport(remaining)
            if transport is None:
                continue
            if not transport.is_open():
                transport.close()
                continue  # a stale registration whose socket already died
            return transport

    def _reap(self) -> None:
        child = self.child
        if child is not None and child.poll() is None:
            child.kill()
            try:
                child.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                pass
        self.child = None

    def close(self) -> None:
        self._reap()


class _Worker:
    """One worker slot: a transport, its reader thread, and its launcher."""

    def __init__(self, pool: "WorkerPool", index: int, launcher) -> None:
        self.pool = pool
        self.index = index
        self.name = f"w{index}"
        self.launcher = launcher
        self.lock = threading.Lock()  # guards writes + pending bookkeeping
        self.transport: Optional[Transport] = None
        self.reader: Optional[threading.Thread] = None
        self.pending: Dict[int, Future] = {}
        self.healthy = False
        self.retired = False  # out of restart budget; never respawned
        self.restarts = 0
        self.tasks_done = 0
        self.last_active = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def spawn(self) -> None:
        """Acquire a transport and its reader; replay the pool's init ops."""
        transport = self.launcher.launch(self)
        with self.lock:
            self.transport = transport
            self.pending = {}
        reader = threading.Thread(
            target=self._read_loop,
            args=(transport,),
            name=f"repro-cluster-reader-{self.name}",
            daemon=True,
        )
        self.reader = reader
        reader.start()
        for op, args in self.pool.init_ops:
            future = self.send(op, args)
            future.result(timeout=self.pool.init_timeout)
        self.last_active = time.monotonic()
        self.healthy = True

    def kill(self) -> None:
        """Force the worker down; the reader thread handles the fallout.

        Health is cleared *before* the close lands so callers polling
        ``healthy_workers()`` never see a doomed worker as routable in the
        window between the kill and the reader thread observing EOF.  For
        a pipe worker this is a SIGKILL; for a TCP worker it severs the
        connection (the remote process sees EOF and exits or re-dials).
        """
        self.healthy = False
        with self.lock:
            transport = self.transport
        if transport is not None:
            transport.close()

    def shutdown(self, timeout: float = 5.0) -> None:
        """Polite stop: ask, wait, then kill."""
        self.healthy = False
        with self.lock:
            transport = self.transport
        if transport is None:
            return
        if transport.is_open():
            try:
                future = self.send("shutdown", {})
                future.result(timeout=timeout)
            except (WorkerError, FutureTimeout, OSError):
                pass
            if not transport.wait_closed(timeout):
                transport.close()
                transport.wait_closed(timeout)

    # ------------------------------------------------------------------ #
    # I/O
    # ------------------------------------------------------------------ #
    def send(
        self,
        op: str,
        args: Mapping[str, Any],
        *,
        write_timeout: Optional[float] = None,
    ) -> "Future[Any]":
        """Write one request; the reader resolves the returned future.

        ``write_timeout`` bounds the transport write itself (writability
        checked before writing), so a peer that stopped draining cannot
        park the caller — the heartbeat loop depends on this.
        """
        future: "Future[Any]" = Future()
        with self.lock:
            transport = self.transport
            if transport is None or not transport.is_open():
                raise WorkerDied(f"worker {self.name} is not running")
            request_id = self.pool._next_id()
            self.pending[request_id] = future
            try:
                transport.write(
                    encode_message(request(request_id, op, args)),
                    timeout=write_timeout,
                )
            except TransportClosed as error:
                self.pending.pop(request_id, None)
                raise WorkerDied(
                    f"worker {self.name} transport is closed: {error}"
                ) from None
        return future

    def _read_loop(self, transport: Transport) -> None:
        while True:
            line = transport.readline()
            if not line:
                break
            try:
                message = decode_message(line)
            except ProtocolError as error:
                # A worker speaking another protocol version (or emitting
                # garbage) cannot be trusted with tasks: fail loudly.
                self.pool._note_protocol_error(self, error)
                break
            request_id = int(message.get("id", -1))
            with self.lock:
                future = self.pending.pop(request_id, None)
                self.tasks_done += 1
                self.last_active = time.monotonic()
            if future is None:
                continue  # response for a request a timeout already failed
            if message.get("ok"):
                future.set_result(message.get("result"))
            else:
                future.set_exception(
                    RemoteError(
                        str(message.get("error", "")),
                        str(message.get("error_type", "RemoteError")),
                    )
                )
        # End of stream: the worker exited or the connection dropped.
        self.healthy = False
        transport.close()  # later sends fail fast instead of going nowhere
        with self.lock:
            doomed = list(self.pending.values())
            self.pending = {}
        for future in doomed:
            if not future.done():
                future.set_exception(
                    WorkerDied(f"worker {self.name} died with the op in flight")
                )
        self.pool._on_worker_exit(self, transport)

    def describe(self) -> Dict[str, object]:
        with self.lock:
            transport = self.transport
            pending = len(self.pending)
        entry: Dict[str, object] = {
            "name": self.name,
            "pid": transport.pid if transport is not None else None,
            "alive": transport.is_open() if transport is not None else False,
            "healthy": self.healthy,
            "retired": self.retired,
            "restarts": self.restarts,
            "tasks_done": self.tasks_done,
            "pending": pending,
            "transport": transport.kind if transport is not None else self.launcher.kind,
        }
        if isinstance(transport, TcpTransport):
            entry["peer"] = transport.peer
            entry["host"] = transport.host
            entry["worker_id"] = transport.info.get("worker_id")
        return entry


class WorkerPool(StatsSource):
    """Supervise N worker processes behind one typed call interface.

    ``init_ops`` is a list of ``(op, args)`` pairs replayed into every
    fresh worker — at first spawn and after every restart — which is how
    serving workers re-``load`` their artifacts after a crash.  The pool
    is a context manager; ``stop()`` shuts workers down politely and
    kills stragglers.

    With ``listen="HOST:PORT"`` and a shared ``secret``, ``remote`` of the
    ``count`` slots (default: all of them, or ``len(spawn_commands)``)
    are filled by connect-back TCP workers instead of local forks; the
    resolved listener address is :attr:`listen_address` (useful with port
    ``0``).  Remote workers spill/warm their caches in per-host warm dirs
    — the pool never assumes a shared cache directory across machines.
    """

    def __init__(
        self,
        count: int,
        *,
        init_ops: Optional[Sequence[Tuple[str, Mapping[str, Any]]]] = None,
        task_timeout: float = DEFAULT_TASK_TIMEOUT,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        max_restarts: int = DEFAULT_MAX_RESTARTS,
        init_timeout: float = DEFAULT_INIT_TIMEOUT,
        listen: Optional[str] = None,
        secret: Optional[str] = None,
        remote: Optional[int] = None,
        spawn_commands: Optional[Sequence[Sequence[str]]] = None,
        register_timeout: float = DEFAULT_REGISTER_TIMEOUT,
    ) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if task_timeout <= 0:
            raise ValueError(f"task_timeout must be > 0, got {task_timeout}")
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {heartbeat_interval}"
            )
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        self.count = count
        self.init_ops: List[Tuple[str, Dict[str, Any]]] = [
            (str(op), dict(args)) for op, args in (init_ops or [])
        ]
        self.task_timeout = task_timeout
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.max_restarts = max_restarts
        self.init_timeout = init_timeout
        self.register_timeout = register_timeout

        if listen is None:
            if secret is not None:
                raise ValueError("secret= only makes sense with listen=")
            if remote:
                raise ValueError("remote worker slots require listen=")
            if spawn_commands:
                raise ValueError("spawn_commands require listen=")
            self.listener: Optional[WorkerListener] = None
            remote_count = 0
        else:
            if not secret:
                raise ValueError(
                    "listen= requires a shared secret (secret=...) so only "
                    "handshake-verified workers can register"
                )
            if remote is None:
                remote_count = len(spawn_commands) if spawn_commands else count
            else:
                remote_count = int(remote)
            if not 1 <= remote_count <= count:
                raise ValueError(
                    f"remote worker slots must be in 1..{count}, got {remote_count}"
                )
            if spawn_commands and len(spawn_commands) != remote_count:
                raise ValueError(
                    f"got {len(spawn_commands)} spawn_commands for "
                    f"{remote_count} remote slot(s)"
                )
            self.listener = WorkerListener(listen, secret=secret)
        self.listen_address = self.listener.address if self.listener else None

        launchers: List[Any] = [
            _PipeLauncher() for _ in range(count - remote_count)
        ]
        for index in range(remote_count):
            command = spawn_commands[index] if spawn_commands else None
            launchers.append(_ConnectLauncher(self, command))
        self._workers = [
            _Worker(self, index, launchers[index]) for index in range(count)
        ]
        self._lock = threading.Lock()
        self._id_counter = 0
        self._rr = 0
        self._tasks = 0
        self._retries = 0
        self._failures = 0
        self._restarts = 0
        self._started = False
        self._stopping = False
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._heartbeat_wake = threading.Event()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "WorkerPool":
        if self._started:
            raise RuntimeError("pool is already started")
        self._started = True
        self._stopping = False
        try:
            for worker in self._workers:
                worker.spawn()
        except BaseException:
            self._stopping = True
            for worker in self._workers:
                worker.kill()
                worker.launcher.close()
            if self.listener is not None:
                self.listener.stop()
            raise
        self._heartbeat_wake.clear()
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-cluster-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        self._stopping = True
        self._heartbeat_wake.set()
        thread = self._heartbeat_thread
        if thread is not None:
            thread.join(timeout)
            self._heartbeat_thread = None
        for worker in self._workers:
            worker.shutdown(timeout=min(timeout, 5.0))
        for worker in self._workers:
            worker.launcher.close()
        if self.listener is not None:
            self.listener.stop()
        self._started = False

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    def call(
        self,
        op: str,
        args: Optional[Mapping[str, Any]] = None,
        *,
        timeout: Optional[float] = None,
        retries: int = 2,
        worker: Optional[str] = None,
    ) -> Any:
        """Run one op and return its result.

        Dispatch is round-robin over healthy workers (or pinned with
        ``worker=``).  :class:`WorkerDied` failures are retried on another
        worker up to ``retries`` times — safe because every op in this
        system is an idempotent function of its arguments — so an induced
        crash degrades latency, never correctness.  Raises
        :class:`TaskTimeout` (after killing the wedged worker),
        :class:`RemoteError` for in-worker exceptions, and
        :class:`ClusterUnavailable` when no worker is healthy.
        """
        args = dict(args or {})
        deadline = self.task_timeout if timeout is None else timeout
        attempts = max(1, retries + 1)
        last_death: Optional[WorkerDied] = None
        for attempt in range(attempts):
            target = self._pick(worker)
            with self._lock:
                self._tasks += 1
                if attempt:
                    self._retries += 1
            try:
                future = target.send(op, args)
            except WorkerDied as error:
                last_death = error
                continue
            try:
                return future.result(timeout=deadline)
            except WorkerDied as error:
                last_death = error
                if worker is not None:
                    break  # a pinned call must not silently move hosts
                continue
            except FutureTimeout:
                with self._lock:
                    self._failures += 1
                # The worker is single-threaded: the only way to reclaim
                # it from a wedged op is to kill it (the exit handler
                # respawns it).
                target.kill()
                raise TaskTimeout(
                    f"op {op!r} exceeded {deadline}s on worker {target.name}"
                ) from None
            except RemoteError:
                with self._lock:
                    self._failures += 1
                raise
        with self._lock:
            self._failures += 1
        raise last_death if last_death is not None else ClusterUnavailable(
            "no healthy worker accepted the op"
        )

    def broadcast(
        self,
        op: str,
        args: Optional[Mapping[str, Any]] = None,
        *,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Run one op on every healthy worker; maps worker name → result.

        Workers that die or error mid-op are simply absent from the
        result — a broadcast is an observation, not a transaction.
        """
        args = dict(args or {})
        deadline = self.task_timeout if timeout is None else timeout
        futures: List[Tuple[str, "Future[Any]"]] = []
        for worker in self._workers:
            if not worker.healthy:
                continue
            try:
                futures.append((worker.name, worker.send(op, args)))
            except WorkerDied:
                continue
        results: Dict[str, Any] = {}
        for name, future in futures:
            try:
                results[name] = future.result(timeout=deadline)
            except (WorkerError, FutureTimeout):
                continue
        return results

    def kill_worker(self, name: str) -> bool:
        """Sever one worker by name (crash/disconnect tests and benchmarks).

        A pipe worker is SIGKILLed; a TCP worker's connection is dropped —
        either way the slot goes through the ordinary restart path.
        """
        for worker in self._workers:
            if worker.name == name:
                worker.kill()
                return True
        return False

    def healthy_workers(self) -> List[str]:
        return [worker.name for worker in self._workers if worker.healthy]

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> PoolStats:
        with self._lock:
            tasks, retries = self._tasks, self._retries
            failures, restarts = self._failures, self._restarts
        described = {worker.name: worker.describe() for worker in self._workers}
        return PoolStats(
            count=self.count,
            healthy=sum(1 for entry in described.values() if entry["healthy"]),
            tasks=tasks,
            retries=retries,
            failures=failures,
            restarts=restarts,
            workers=described,
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _next_id(self) -> int:
        with self._lock:
            self._id_counter += 1
            return self._id_counter

    def _pick(self, name: Optional[str]) -> _Worker:
        with self._lock:
            if name is not None:
                for worker in self._workers:
                    if worker.name == name:
                        if not worker.healthy:
                            raise ClusterUnavailable(
                                f"worker {name} is not healthy right now"
                            )
                        return worker
                raise KeyError(f"unknown worker {name!r}")
            for offset in range(len(self._workers)):
                worker = self._workers[(self._rr + offset) % len(self._workers)]
                if worker.healthy:
                    self._rr = (self._rr + offset + 1) % len(self._workers)
                    return worker
        raise ClusterUnavailable(
            "no healthy worker (all dead or mid-restart); retry shortly"
        )

    def _on_worker_exit(self, worker: _Worker, transport: Transport) -> None:
        """Reader-thread callback when a worker's stream ends."""
        if self._stopping:
            return
        with worker.lock:
            if worker.transport is not transport:
                return  # a stale reader from a previous generation
        if worker.restarts >= self.max_restarts:
            worker.retired = True
            print(
                f"repro.cluster: worker {worker.name} exceeded "
                f"{self.max_restarts} restarts; retiring the slot",
                file=sys.stderr,
            )
            return
        worker.restarts += 1
        with self._lock:
            self._restarts += 1
        threading.Thread(
            target=self._respawn,
            args=(worker, transport),
            name=f"repro-cluster-respawn-{worker.name}",
            daemon=True,
        ).start()

    def _respawn(self, worker: _Worker, transport: Transport) -> None:
        try:
            if not transport.wait_closed(10.0):
                raise TimeoutError(
                    f"previous transport of worker {worker.name} did not close"
                )
            if not self._stopping:
                worker.spawn()
        except Exception as error:
            print(
                f"repro.cluster: respawn of worker {worker.name} failed: {error}",
                file=sys.stderr,
            )
            # One more chance through the same path, until the budget runs
            # out; a worker whose init op keeps failing retires loudly.
            current = worker.transport
            if current is not None:
                self._on_worker_exit(worker, current)

    def _note_protocol_error(self, worker: _Worker, error: ProtocolError) -> None:
        print(
            f"repro.cluster: worker {worker.name} protocol error: {error}; "
            "killing the worker",
            file=sys.stderr,
        )
        worker.kill()

    def _heartbeat_loop(self) -> None:
        while not self._heartbeat_wake.wait(timeout=self.heartbeat_interval):
            for worker in self._workers:
                if not worker.healthy or self._stopping:
                    continue
                with worker.lock:
                    busy = bool(worker.pending)
                    idle_for = time.monotonic() - worker.last_active
                if busy or idle_for < self.heartbeat_interval:
                    # Busy workers are covered by task timeouts; pinging a
                    # single-threaded worker mid-op would only queue up.
                    continue
                try:
                    # The write itself carries a timeout: a peer with full
                    # kernel buffers fails this probe instead of wedging
                    # the loop (and with it, every other worker's checks).
                    worker.send(
                        "ping", {}, write_timeout=self.heartbeat_timeout
                    ).result(timeout=self.heartbeat_timeout)
                except (WorkerError, FutureTimeout, OSError):
                    if not self._stopping:
                        worker.kill()  # the exit handler respawns it
