"""Multi-process serving: an HTTP front door over a :class:`WorkerPool`.

``repro serve --workers N`` runs here: N router workers, each a separate
process with its own GIL, all warming from (and spilling into) one shared
operator/trace cache directory, behind a single parent HTTP front door.
The parent load-balances ``/predict`` across healthy workers and
aggregates ``/stats`` and ``/metrics`` across the fleet:

* every ``/predict`` response carries the ``worker`` id that served it;
* ``/metrics`` nests each worker's router snapshot under a ``workers``
  mapping, so every per-shard series carries a ``worker`` label (no
  collisions between N processes serving the same shard names) — plus a
  cluster-wide request-latency histogram merged bucket-by-bucket from the
  workers' histograms (:meth:`repro.obs.HistogramStats.merged`);
* a worker mid-restart simply drops out of rotation; when *no* worker is
  healthy the front door sheds with ``503`` instead of queueing.

The pool replays its ``load`` op into every restarted worker, so a
crashed worker comes back already serving; in-flight requests that die
with a worker are transparently retried on a survivor (ops are
idempotent), so one crash degrades latency, never correctness.
"""

from __future__ import annotations

import asyncio
import functools
import json
import time
from dataclasses import asdict
from typing import Any, Awaitable, Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..obs.histogram import HistogramStats
from ..obs.prometheus import render_prometheus
from ..serving.http import (
    DEFAULT_DRAIN_TIMEOUT,
    DEFAULT_HOST,
    DEFAULT_MAX_BODY_BYTES,
    DEFAULT_PORT,
    DEFAULT_REQUEST_TIMEOUT,
    BaseHttpServer,
)
from .net import CONNECT_PLACEHOLDER, read_secret, ssh_worker_command
from .pool import (
    DEFAULT_REGISTER_TIMEOUT,
    ClusterUnavailable,
    RemoteError,
    TaskTimeout,
    WorkerDied,
    WorkerPool,
)

#: worker-side exception class names mapped onto front-door status codes;
#: anything else is a plain in-worker failure (500).
_REMOTE_STATUS = {
    "UnknownShard": 404,
    "ServerOverloaded": 429,
}


def _serve_payload(serve: Optional[object]) -> Dict[str, Any]:
    """A ``ServeConfig`` (or mapping) as JSON-safe ``load``-op kwargs."""
    if serve is None:
        return {}
    if isinstance(serve, Mapping):
        payload = dict(serve)
    else:
        payload = asdict(serve)  # ServeConfig is a dataclass
    # Workers never run their own HTTP listener; the parent owns the port.
    payload.pop("http", None)
    return payload


class ClusterHttpServer(BaseHttpServer):
    """HTTP front door load-balancing over a :class:`WorkerPool`.

    Pool calls are blocking (they wait on a worker pipe), so handlers run
    them on the default thread-pool executor — the event loop stays free
    to accept connections while N workers crunch in parallel.

    With ``own_pool=True`` (what :func:`serve_cluster` sets) the server
    starts and stops the pool with itself; otherwise the pool's lifecycle
    stays the caller's.
    """

    def __init__(
        self,
        pool: WorkerPool,
        *,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        own_pool: bool = False,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            max_body_bytes=max_body_bytes,
            request_timeout=request_timeout,
            drain_timeout=drain_timeout,
        )
        self.pool = pool
        self.own_pool = own_pool

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ClusterHttpServer":
        if self.own_pool:
            self.pool.start()
        try:
            super().start()
        except BaseException:
            if self.own_pool:
                self.pool.stop()
            raise
        return self

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        super().stop(timeout)
        if self.own_pool:
            self.pool.stop()

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    async def _pool_call(self, op: str, args: Dict[str, Any]) -> Any:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None,
            functools.partial(
                self.pool.call, op, args, timeout=self.request_timeout
            ),
        )

    async def _pool_broadcast(self, op: str) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None,
            functools.partial(
                self.pool.broadcast, op, {}, timeout=self.request_timeout
            ),
        )

    @staticmethod
    def _host_summary(
        worker_stats: Mapping[str, Mapping[str, Any]]
    ) -> Dict[str, Dict[str, int]]:
        """Per-host rollup of the fleet (a cross-machine pool spans several).

        Keys become a ``host`` label dimension in ``/metrics``; values stay
        numeric so the Prometheus walker renders every field.
        """
        hosts: Dict[str, Dict[str, int]] = {}
        for entry in worker_stats.values():
            if not isinstance(entry, Mapping):
                continue
            host = str(entry.get("host") or "local")
            summary = hosts.setdefault(host, {"workers": 0, "ops_done": 0})
            summary["workers"] += 1
            summary["ops_done"] += int(entry.get("ops_done", 0) or 0)
        return hosts

    def _cluster_snapshot(
        self, worker_stats: Mapping[str, Mapping[str, Any]]
    ) -> Dict[str, object]:
        """The fleet as one stats tree: pool counters, per-worker routers,
        a per-host rollup, and the cluster-wide latency histogram merged
        across workers."""
        routers = {
            name: entry["router"]
            for name, entry in sorted(worker_stats.items())
            if isinstance(entry, Mapping) and entry.get("router")
        }
        histograms = []
        for snapshot in routers.values():
            latency = snapshot.get("latency")
            if isinstance(latency, Mapping):
                try:
                    histograms.append(HistogramStats.from_dict(latency))
                except ValueError:
                    continue  # foreign bucket layout; never merge blindly
        return {
            "pool": self.pool.snapshot(),
            "workers": routers,
            "hosts": self._host_summary(worker_stats),
            "latency": HistogramStats.merged(histograms).as_dict(),
        }

    def metrics_text(self) -> str:
        """Aggregated ``/metrics``; worker series carry a ``worker`` label."""
        worker_stats = self.pool.broadcast("stats", {}, timeout=self.request_timeout)
        return (
            render_prometheus(self._cluster_snapshot(worker_stats), prefix="repro_cluster")
            + self._http_metrics_lines()
        )

    # ------------------------------------------------------------------ #
    # Routes
    # ------------------------------------------------------------------ #
    def _handlers(
        self,
    ) -> Dict[str, Tuple[str, Callable[..., Awaitable[Tuple[int, object]]]]]:
        return {
            "/predict": ("POST", self._handle_predict),
            "/health": ("GET", self._handle_health),
            "/shards": ("GET", self._handle_shards),
            "/stats": ("GET", self._handle_stats),
            "/metrics": ("GET", self._handle_metrics),
        }

    async def _handle_health(self, *, query: str, body: bytes) -> Tuple[int, object]:
        healthy = self.pool.healthy_workers()
        return (200 if healthy else 503), {
            "status": "ok" if healthy else "unavailable",
            "workers": healthy,
            "count": self.pool.count,
            "uptime_s": round(time.time() - self._started_at, 3),
        }

    async def _handle_shards(self, *, query: str, body: bytes) -> Tuple[int, object]:
        worker_stats = await self._pool_broadcast("stats")
        shards = [
            {"worker": name, **shard}
            for name, entry in sorted(worker_stats.items())
            for shard in entry.get("shards", ())
        ]
        return 200, {"shards": shards}

    async def _handle_stats(self, *, query: str, body: bytes) -> Tuple[int, object]:
        worker_stats = await self._pool_broadcast("stats")
        return 200, {
            "pool": self.pool.snapshot(),
            "workers": {name: worker_stats[name] for name in sorted(worker_stats)},
            "hosts": self._host_summary(worker_stats),
            "http": self.snapshot(),
        }

    async def _handle_metrics(self, *, query: str, body: bytes) -> Tuple[int, object]:
        worker_stats = await self._pool_broadcast("stats")
        text = (
            render_prometheus(self._cluster_snapshot(worker_stats), prefix="repro_cluster")
            + self._http_metrics_lines()
        )
        return 200, text

    async def _handle_predict(self, *, query: str, body: bytes) -> Tuple[int, object]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": f"body is not valid JSON: {error}"}
        if not isinstance(payload, dict):
            return 400, {"error": "body must be a JSON object"}
        node_ids = payload.get("node_ids")
        if node_ids is not None:
            if not isinstance(node_ids, list) or not all(
                isinstance(node, int) and not isinstance(node, bool)
                for node in node_ids
            ):
                return 400, {"error": "node_ids must be a list of integers"}
        shard = payload.get("shard")
        if shard is not None and not isinstance(shard, str):
            return 400, {"error": "shard must be a string"}

        try:
            result = await self._pool_call(
                "predict",
                {"node_ids": node_ids, "shard": shard, "timeout": self.request_timeout},
            )
        except ClusterUnavailable as error:
            # Every worker is dead or mid-restart: shed, don't queue.
            return 503, {
                "error": str(error),
                "workers": self.pool.healthy_workers(),
            }
        except WorkerDied as error:
            # Retries exhausted with workers dying under the op.
            return 503, {"error": str(error)}
        except TaskTimeout as error:
            return 500, {"error": str(error)}
        except RemoteError as error:
            status = _REMOTE_STATUS.get(error.error_type, 500)
            return status, {"error": str(error), "error_type": error.error_type}
        return 200, result


def serve_cluster(
    artifacts: Sequence[str],
    *,
    workers: int = 2,
    cache_dir: Optional[str] = None,
    serve: Optional[object] = None,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
    drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    task_timeout: Optional[float] = None,
    max_restarts: int = 3,
    listen: Optional[str] = None,
    secret: Optional[str] = None,
    secret_file: Optional[str] = None,
    worker_hosts: Optional[Sequence[str]] = None,
    remote_workers: Optional[int] = None,
    register_timeout: float = DEFAULT_REGISTER_TIMEOUT,
    ssh_python: str = "python3",
) -> ClusterHttpServer:
    """Build (not start) the multi-process serving stack.

    The pool's ``load`` init op ships the artifact paths, the cache
    directory and the serve limits to every worker — at first spawn *and*
    after every crash restart, which is what makes restarts transparent.
    Returns a :class:`ClusterHttpServer` owning the pool; use it as a
    context manager or call ``start()``/``stop()``.

    With ``listen="HOST:PORT"`` (plus a shared secret via ``secret`` or
    ``secret_file``) some or all worker slots are filled by connect-back
    TCP workers instead of local forks: ``worker_hosts`` names machines to
    ssh a worker onto (one slot each, respawned over ssh after a crash),
    ``remote_workers`` reserves slots for externally-started ``--connect``
    workers.  Remote workers ignore ``cache_dir`` — a parent-machine path
    means nothing to them — and warm/spill in their own per-host warm dir.
    """
    load_args: Dict[str, Any] = {
        "artifacts": [str(artifact) for artifact in artifacts],
        "cache_dir": str(cache_dir) if cache_dir is not None else None,
        "serve": _serve_payload(serve),
    }
    if secret is None and secret_file is not None:
        secret = read_secret(secret_file)
    spawn_commands = None
    if worker_hosts:
        if secret_file is None:
            raise ValueError(
                "worker_hosts need secret_file= (the secret must exist as a "
                "file on the remote hosts; it never rides in argv)"
            )
        spawn_commands = [
            ssh_worker_command(
                worker_host, CONNECT_PLACEHOLDER, secret_file, python=ssh_python
            )
            for worker_host in worker_hosts
        ]
        if remote_workers is None:
            remote_workers = len(spawn_commands)
    pool = WorkerPool(
        workers,
        init_ops=[("load", load_args)],
        task_timeout=task_timeout if task_timeout is not None else max(
            DEFAULT_REQUEST_TIMEOUT, request_timeout
        ),
        max_restarts=max_restarts,
        listen=listen,
        secret=secret,
        remote=remote_workers,
        spawn_commands=spawn_commands,
        register_timeout=register_timeout,
    )
    return ClusterHttpServer(
        pool,
        host=host,
        port=port,
        max_body_bytes=max_body_bytes,
        request_timeout=request_timeout,
        drain_timeout=drain_timeout,
        own_pool=True,
    )
