"""Distributed sweeps: shard a :class:`SweepSpec`, merge the reports.

The contract is bit-identity: ``N`` shard runs merged back together must
produce exactly the serial report (canonical form — wall-clock timing
fields zeroed, see :meth:`repro.api.SweepReport.canonical`).  Three
properties make that true by construction rather than by luck:

1. sharding is a pure function of the spec — cell ``i`` of
   :meth:`SweepSpec.cells` belongs to shard ``i % shard_count``
   (:func:`repro.api.experiment.shard_cells`) — so the partition needs no
   coordinator and the merge can recompute it for validation;
2. cells are never split across shards, so each cell's seed runs execute
   and aggregate inside one process in the exact serial order;
3. every run is a deterministic function of (model, view, seed, kwargs).

A :class:`ShardReport` wraps one shard's cells with everything the merge
needs to refuse quietly-wrong input: the report format version, the full
spec, a content hash of the spec, and the claimed shard coordinates and
cell indices.  :func:`merge_shard_reports` rejects loudly on version or
spec-hash mismatch, overlapping shards, missing shards, and cell indices
that disagree with the deterministic partition.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from ..api.config import SweepSpec
from ..api.experiment import run_sweep, shard_cells
from ..api.report import REPORT_FORMAT_VERSION, ExperimentReport, SweepReport

PathLike = Union[str, Path]

#: the ``kind`` field distinguishing shard payloads from full reports.
SHARD_REPORT_KIND = "shard-report"


def spec_hash(spec: Union[SweepSpec, Mapping[str, object]]) -> str:
    """Content hash of a spec; two runs merge only if these agree.

    Hashes the canonical JSON of ``SweepSpec.as_dict()`` so logically
    equal specs hash equal regardless of dict insertion order, and any
    difference — one extra seed, one changed learning rate — splits the
    hash and is rejected at merge time.
    """
    payload = spec.as_dict() if isinstance(spec, SweepSpec) else dict(spec)
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class ShardReport:
    """One shard's cells plus the metadata the merge validates against."""

    spec: Dict[str, object]
    shard_index: int
    shard_count: int
    cell_indices: Tuple[int, ...]
    cells: Tuple[ExperimentReport, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "spec", dict(self.spec))
        object.__setattr__(
            self, "cell_indices", tuple(int(index) for index in self.cell_indices)
        )
        object.__setattr__(self, "cells", tuple(self.cells))
        if len(self.cell_indices) != len(self.cells):
            raise ValueError(
                f"shard {self.shard_index} claims {len(self.cell_indices)} cell "
                f"indices but carries {len(self.cells)} cells"
            )

    @property
    def hash(self) -> str:
        return spec_hash(self.spec)

    def as_dict(self) -> Dict[str, object]:
        return {
            "format_version": REPORT_FORMAT_VERSION,
            "kind": SHARD_REPORT_KIND,
            "spec": self.spec,
            "spec_hash": self.hash,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "cell_indices": list(self.cell_indices),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def canonical(self) -> "ShardReport":
        """This shard with every run's wall-clock fields zeroed."""
        return ShardReport(
            spec=self.spec,
            shard_index=self.shard_index,
            shard_count=self.shard_count,
            cell_indices=self.cell_indices,
            cells=tuple(cell.canonical() for cell in self.cells),
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ShardReport":
        version = int(payload.get("format_version", -1))
        if version != REPORT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported shard report version {version}; "
                f"expected {REPORT_FORMAT_VERSION}"
            )
        kind = payload.get("kind")
        if kind != SHARD_REPORT_KIND:
            raise ValueError(
                f"payload kind {kind!r} is not a shard report "
                f"(expected {SHARD_REPORT_KIND!r})"
            )
        report = cls(
            spec=dict(payload["spec"]),
            shard_index=int(payload["shard_index"]),
            shard_count=int(payload["shard_count"]),
            cell_indices=tuple(payload["cell_indices"]),
            cells=tuple(
                ExperimentReport.from_dict(cell) for cell in payload["cells"]
            ),
        )
        stored = payload.get("spec_hash")
        if stored is not None and stored != report.hash:
            raise ValueError(
                f"shard {report.shard_index} spec hash {stored} does not match "
                f"its own spec ({report.hash}); the file was altered"
            )
        return report

    @classmethod
    def from_json(cls, text: str) -> "ShardReport":
        return cls.from_dict(json.loads(text))

    def save(self, path: PathLike, indent: int = 2) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(indent=indent) + "\n")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "ShardReport":
        return cls.from_json(Path(path).read_text())


def run_sweep_shard(
    spec: SweepSpec, shard_index: int, shard_count: int
) -> ShardReport:
    """Execute one deterministic shard of a sweep (see :func:`shard_cells`)."""
    indices = shard_cells(spec, shard_index, shard_count)
    report = run_sweep(spec, shard=(shard_index, shard_count))
    return ShardReport(
        spec=spec.as_dict(),
        shard_index=shard_index,
        shard_count=shard_count,
        cell_indices=tuple(indices),
        cells=report.cells,
    )


def merge_shard_reports(
    shards: Sequence[ShardReport], *, canonical: bool = True
) -> SweepReport:
    """Reassemble shard reports into the serial :class:`SweepReport`.

    Validates loudly before touching a single cell: every shard must carry
    the same ``shard_count`` and the same spec hash; the shard indices must
    cover ``0..shard_count-1`` exactly once (duplicates are overlapping
    shards, gaps are missing shards); and each shard's claimed cell
    indices must equal the deterministic partition recomputed from the
    spec.  The merged report lists cells in the spec's canonical order —
    with ``canonical=True`` (the default) its JSON is byte-identical to
    ``run_sweep(spec).canonical()``; ``canonical=False`` keeps each
    shard's measured wall-clock timings.
    """
    if not shards:
        raise ValueError("cannot merge zero shard reports")
    first = shards[0]
    expected_hash = first.hash
    shard_count = first.shard_count
    for shard in shards:
        if shard.shard_count != shard_count:
            raise ValueError(
                f"shard {shard.shard_index} claims shard_count="
                f"{shard.shard_count}, but shard {first.shard_index} claims "
                f"{shard_count}; these runs do not belong together"
            )
        if shard.hash != expected_hash:
            raise ValueError(
                f"shard {shard.shard_index} was run against a different spec "
                f"(hash {shard.hash[:12]}… vs {expected_hash[:12]}…); "
                "refusing to merge results of different experiments"
            )
    seen: Dict[int, ShardReport] = {}
    for shard in shards:
        if shard.shard_index in seen:
            raise ValueError(
                f"overlapping shards: shard index {shard.shard_index} appears "
                "more than once"
            )
        seen[shard.shard_index] = shard
    missing = sorted(set(range(shard_count)) - set(seen))
    if missing:
        raise ValueError(
            f"missing shard(s) {missing} of {shard_count}; have "
            f"{sorted(seen)}"
        )
    extra = sorted(set(seen) - set(range(shard_count)))
    if extra:
        raise ValueError(
            f"shard index(es) {extra} are out of range for shard_count={shard_count}"
        )

    spec = SweepSpec.from_dict(first.spec)
    cells_by_index: Dict[int, ExperimentReport] = {}
    for index in range(shard_count):
        shard = seen[index]
        expected_indices = tuple(shard_cells(spec, index, shard_count))
        if shard.cell_indices != expected_indices:
            raise ValueError(
                f"shard {index} claims cell indices {list(shard.cell_indices)} "
                f"but the deterministic partition assigns "
                f"{list(expected_indices)}"
            )
        for cell_index, cell in zip(shard.cell_indices, shard.cells):
            cells_by_index[cell_index] = cell
    total = len(spec.cells())
    if sorted(cells_by_index) != list(range(total)):
        raise ValueError(
            f"merged cells cover indices {sorted(cells_by_index)}, "
            f"expected 0..{total - 1}"
        )
    report = SweepReport(
        cells=tuple(cells_by_index[index] for index in range(total)),
        spec=first.spec,
    )
    return report.canonical() if canonical else report


def merge_shard_files(
    paths: Sequence[PathLike], *, canonical: bool = True
) -> SweepReport:
    """Load shard report files and merge them (the CLI entry point)."""
    return merge_shard_reports(
        [ShardReport.load(path) for path in paths], canonical=canonical
    )
