"""Worker-process entry point: ``python -m repro.cluster.worker``.

A worker is one protocol loop over stdin/stdout (see
:mod:`repro.cluster.protocol`): read a request line, execute the op,
write the response line.  Ops are executed strictly in order — a worker
is single-threaded by design, which is the whole point of running N of
them (each owns its own GIL).

Supported ops:

``ping``
    liveness heartbeat; returns pid, worker id and uptime.
``run_shard``
    execute one deterministic shard of a :class:`repro.api.SweepSpec`
    (``args: {"spec": ..., "shard_index": i, "shard_count": n}``) and
    return the :class:`repro.cluster.sweeps.ShardReport` payload.
``load``
    build and start a :class:`repro.serving.ShardRouter` over serving
    artifacts (``args: {"artifacts": [...], "cache_dir": ..., "serve":
    {...}}``), warming the shared operator/trace cache directory first
    and spilling freshly-computed entries back into it after the load.
``predict``
    route one request through the loaded router; returns predictions,
    latency and per-stage spans.
``stats``
    the worker's router snapshot plus worker identity.
``spill``
    re-spill the operator/trace caches into the shared cache directory.
``crash``
    exit immediately without cleanup (``os._exit``) — the supervisor's
    crash-recovery test/benchmark hook.
``sleep``
    block for ``args["seconds"]`` — the supervisor's task-timeout hook.
``shutdown``
    acknowledge, then exit the loop cleanly.

The worker traps SIGTERM/SIGINT: when idle it exits immediately; when an
op is mid-flight it finishes the op, writes the response, and exits then
— a supervisor-initiated restart never swallows an answer it could have
delivered.  Stray library prints cannot corrupt the protocol stream:
``sys.stdout`` is rebound to stderr at startup and the protocol writes go
to the original file descriptor only.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import time
from pathlib import Path
from typing import Any, BinaryIO, Dict, List, Optional

from .protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    response_error,
    response_ok,
)


class _State:
    """Everything one worker process holds between ops."""

    def __init__(self, worker_id: str) -> None:
        self.worker_id = worker_id
        self.started_at = time.time()
        self.router = None
        self.cache_dir: Optional[str] = None
        self.ops_done = 0
        #: set by the signal handler while an op is executing; checked
        #: after the response is written.
        self.drain_requested = False
        self.in_flight = False


def _op_ping(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "worker": state.worker_id,
        "pid": os.getpid(),
        "uptime_s": round(time.time() - state.started_at, 3),
        "ops_done": state.ops_done,
        "serving": state.router is not None,
    }


def _op_run_shard(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    from ..api.config import SweepSpec
    from .sweeps import run_sweep_shard

    spec = SweepSpec.from_dict(args["spec"])
    report = run_sweep_shard(
        spec, int(args["shard_index"]), int(args["shard_count"])
    )
    return report.as_dict()


def _spill_caches(state: _State) -> Dict[str, int]:
    """Spill both caches into the shared directory (atomic, skip-existing)."""
    if state.router is None or state.cache_dir is None:
        return {"operators": 0, "traces": 0}
    spilled = state.router.operator_cache.spill(state.cache_dir)
    traces = 0
    if state.router.trace_cache is not None:
        traces = state.router.trace_cache.spill(Path(state.cache_dir) / "traces")
    return {"operators": spilled, "traces": traces}


def _op_load(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    from ..api.config import ServeConfig
    from ..api.session import Session

    if state.router is not None:
        state.router.stop()
        state.router = None
    serve_kwargs = dict(args.get("serve") or {})
    if isinstance(serve_kwargs.get("http"), dict):
        from ..api.config import HttpConfig

        serve_kwargs["http"] = HttpConfig(**serve_kwargs["http"])
    config = ServeConfig(**serve_kwargs)
    cache_dir = args.get("cache_dir")
    router = Session(serve=config).serve(*args["artifacts"], cache_dir=cache_dir)
    router.start()
    state.router = router
    state.cache_dir = cache_dir
    # Spill-on-load: whoever preprocessed (or compiled) first shares the
    # result; entries already on disk are skipped, concurrent writers are
    # safe (atomic rename), so no coordination between workers is needed.
    spilled = _spill_caches(state)
    return {
        "worker": state.worker_id,
        "shards": [
            {
                "name": info.name,
                "model": info.model_name,
                "fingerprint": info.fingerprint,
            }
            for info in router.shards()
        ],
        "warmed": router.operator_cache.stats().hits,
        "spilled": spilled,
    }


def _require_router(state: _State):
    if state.router is None:
        raise RuntimeError("no router loaded; send a 'load' op first")
    return state.router


def _op_predict(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    router = _require_router(state)
    node_ids = args.get("node_ids")
    shard = args.get("shard")
    timeout = float(args.get("timeout", 60.0))
    info = router.resolve(shard=shard)
    ticket = router.submit(node_ids, shard=info.name, timeout=timeout)
    predictions = ticket.result(timeout=timeout)
    spans = ticket.spans()
    return {
        "worker": state.worker_id,
        "shard": info.name,
        "predictions": predictions.tolist(),
        "latency_ms": round(1e3 * (ticket.latency_seconds or 0.0), 4),
        "spans": {stage: round(value, 4) for stage, value in spans.items()},
    }


def _op_stats(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    router = state.router
    shards: List[Dict[str, Any]] = []
    if router is not None:
        shards = [
            {
                "name": info.name,
                "model": info.model_name,
                "fingerprint": info.fingerprint,
            }
            for info in router.shards()
        ]
    return {
        "worker": state.worker_id,
        "pid": os.getpid(),
        "uptime_s": round(time.time() - state.started_at, 3),
        "ops_done": state.ops_done,
        "shards": shards,
        "router": router.snapshot() if router is not None else None,
    }


def _op_spill(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    _require_router(state)
    return _spill_caches(state)


def _op_crash(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    os._exit(int(args.get("code", 13)))


def _op_sleep(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    time.sleep(float(args.get("seconds", 0.0)))
    return {"slept": float(args.get("seconds", 0.0))}


def _op_shutdown(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    return {"worker": state.worker_id, "bye": True}


_OPS = {
    "ping": _op_ping,
    "run_shard": _op_run_shard,
    "load": _op_load,
    "predict": _op_predict,
    "stats": _op_stats,
    "spill": _op_spill,
    "crash": _op_crash,
    "sleep": _op_sleep,
    "shutdown": _op_shutdown,
}


def _serve_loop(state: _State, stdin: BinaryIO, stdout: BinaryIO) -> int:
    while True:
        line = stdin.readline()
        if not line:
            return 0  # supervisor closed the pipe (or died): exit quietly
        if not line.strip():
            continue
        try:
            message = decode_message(line)
        except ProtocolError as error:
            # Unversioned garbage has no id to correlate; answer loudly
            # with id -1 so the supervisor can log it, then keep serving.
            stdout.write(encode_message(response_error(-1, str(error), "ProtocolError")))
            stdout.flush()
            continue
        request_id = int(message.get("id", -1))
        op = message.get("op")
        handler = _OPS.get(op)
        state.in_flight = True
        try:
            if handler is None:
                response = response_error(
                    request_id, f"unknown op {op!r}; known: {sorted(_OPS)}", "UnknownOp"
                )
            else:
                result = handler(state, message.get("args") or {})
                response = response_ok(request_id, result)
        except SystemExit:
            raise
        except BaseException as error:
            response = response_error(
                request_id, str(error) or type(error).__name__, type(error).__name__
            )
        finally:
            state.in_flight = False
        state.ops_done += 1
        stdout.write(encode_message(response))
        stdout.flush()
        if op == "shutdown" or state.drain_requested:
            return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.cluster.worker")
    parser.add_argument("--worker-id", default=f"pid{os.getpid()}")
    args = parser.parse_args(argv)

    # The protocol owns the real stdout; reroute stray prints to stderr.
    stdout = sys.stdout.buffer
    sys.stdout = sys.stderr
    stdin = sys.stdin.buffer

    state = _State(args.worker_id)

    def _on_signal(signum, frame) -> None:
        if state.in_flight:
            # Finish the op and deliver its response, then exit — a
            # restart must never swallow an answer already being computed.
            state.drain_requested = True
        else:
            raise SystemExit(0)

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    try:
        return _serve_loop(state, stdin, stdout)
    except SystemExit as exit_request:
        return int(exit_request.code or 0)
    finally:
        if state.router is not None:
            state.router.stop()


if __name__ == "__main__":
    sys.exit(main())
