"""Worker-process entry point: ``python -m repro.cluster.worker``.

A worker is one protocol loop (see :mod:`repro.cluster.protocol`): read a
request line, execute the op, write the response line.  Ops are executed
strictly in order — a worker is single-threaded by design, which is the
whole point of running N of them (each owns its own GIL).

The loop runs over one of two channels:

* **pipes** (default) — the worker was forked by the pool on the same
  host and speaks over stdin/stdout;
* **TCP connect-back** (``--connect HOST:PORT --secret-file F``) — the
  worker dials a :class:`~repro.cluster.net.WorkerListener`, proves the
  shared secret through the mutual HMAC handshake (and verifies the
  pool's answer in turn), then serves the same ops over the socket.  With
  ``--reconnect N`` a dropped connection is re-dialed up to N times; a
  *failed handshake* is never retried — a worker that cannot verify its
  pool must not keep knocking.

Supported ops:

``ping``
    liveness heartbeat; returns pid, worker id, hostname and uptime.
``run_shard``
    execute one deterministic shard of a :class:`repro.api.SweepSpec`
    (``args: {"spec": ..., "shard_index": i, "shard_count": n}``) and
    return the :class:`repro.cluster.sweeps.ShardReport` payload.
``load``
    build and start a :class:`repro.serving.ShardRouter` over serving
    artifacts (``args: {"artifacts": [...], "cache_dir": ..., "serve":
    {...}}``), warming the operator/trace cache directory first and
    spilling freshly-computed entries back into it after the load.  A
    connect-back worker ignores the supervisor's ``cache_dir`` — a path
    on the pool's machine means nothing here — and uses its *own* warm
    dir (``--warm-dir``, default under the local tmpdir), so every host
    warms and spills locally.
``predict``
    route one request through the loaded router; returns predictions,
    latency and per-stage spans.
``stats``
    the worker's router snapshot plus worker identity.
``spill``
    re-spill the operator/trace caches into the cache directory.
``crash``
    exit immediately without cleanup (``os._exit``) — the supervisor's
    crash-recovery test/benchmark hook.
``sleep``
    block for ``args["seconds"]`` — the supervisor's task-timeout hook.
``shutdown``
    acknowledge, then exit the loop cleanly.

The worker traps SIGTERM/SIGINT: when idle it exits immediately; when an
op is mid-flight it finishes the op, writes the response, and exits then
— a supervisor-initiated restart never swallows an answer it could have
delivered.  Stray library prints cannot corrupt the protocol stream:
``sys.stdout`` is rebound to stderr at startup and the protocol writes go
to the original file descriptor (or the socket) only.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket as socket_module
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, BinaryIO, Dict, List, Optional

from .protocol import (
    ProtocolError,
    decode_message,
    encode_message,
    response_error,
    response_ok,
)


class _State:
    """Everything one worker process holds between ops."""

    def __init__(self, worker_id: str, warm_dir: Optional[str] = None) -> None:
        self.worker_id = worker_id
        self.started_at = time.time()
        self.router = None
        self.cache_dir: Optional[str] = None
        #: when set (connect-back mode), overrides any supervisor-sent
        #: ``cache_dir``: remote workers warm and spill on their own disk.
        self.warm_dir = warm_dir
        self.ops_done = 0
        #: set by the signal handler while an op is executing; checked
        #: after the response is written.
        self.drain_requested = False
        self.in_flight = False


def _op_ping(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    return {
        "worker": state.worker_id,
        "pid": os.getpid(),
        "host": socket_module.gethostname(),
        "uptime_s": round(time.time() - state.started_at, 3),
        "ops_done": state.ops_done,
        "serving": state.router is not None,
    }


def _op_run_shard(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    from ..api.config import SweepSpec
    from .sweeps import run_sweep_shard

    spec = SweepSpec.from_dict(args["spec"])
    report = run_sweep_shard(
        spec, int(args["shard_index"]), int(args["shard_count"])
    )
    return report.as_dict()


def _spill_caches(state: _State) -> Dict[str, int]:
    """Spill both caches into the cache directory (atomic, skip-existing)."""
    if state.router is None or state.cache_dir is None:
        return {"operators": 0, "traces": 0}
    spilled = state.router.operator_cache.spill(state.cache_dir)
    traces = 0
    if state.router.trace_cache is not None:
        traces = state.router.trace_cache.spill(Path(state.cache_dir) / "traces")
    return {"operators": spilled, "traces": traces}


def _op_load(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    from ..api.config import ServeConfig
    from ..api.session import Session

    if state.router is not None:
        state.router.stop()
        state.router = None
    serve_kwargs = dict(args.get("serve") or {})
    if isinstance(serve_kwargs.get("http"), dict):
        from ..api.config import HttpConfig

        serve_kwargs["http"] = HttpConfig(**serve_kwargs["http"])
    config = ServeConfig(**serve_kwargs)
    cache_dir = args.get("cache_dir")
    if state.warm_dir is not None:
        # Connect-back workers never trust a supervisor path: the pool may
        # live on another machine, so "the shared cache dir" is whatever
        # this host's warm dir holds.
        cache_dir = state.warm_dir
        Path(cache_dir).mkdir(parents=True, exist_ok=True)
    router = Session(serve=config).serve(*args["artifacts"], cache_dir=cache_dir)
    router.start()
    state.router = router
    state.cache_dir = cache_dir
    # Spill-on-load: whoever preprocessed (or compiled) first shares the
    # result; entries already on disk are skipped, concurrent writers are
    # safe (atomic rename), so no coordination between workers is needed.
    spilled = _spill_caches(state)
    return {
        "worker": state.worker_id,
        "shards": [
            {
                "name": info.name,
                "model": info.model_name,
                "fingerprint": info.fingerprint,
            }
            for info in router.shards()
        ],
        "cache_dir": cache_dir,
        "warmed": router.operator_cache.stats().hits,
        "spilled": spilled,
    }


def _require_router(state: _State):
    if state.router is None:
        raise RuntimeError("no router loaded; send a 'load' op first")
    return state.router


def _op_predict(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    router = _require_router(state)
    node_ids = args.get("node_ids")
    shard = args.get("shard")
    timeout = float(args.get("timeout", 60.0))
    info = router.resolve(shard=shard)
    ticket = router.submit(node_ids, shard=info.name, timeout=timeout)
    predictions = ticket.result(timeout=timeout)
    spans = ticket.spans()
    return {
        "worker": state.worker_id,
        "shard": info.name,
        "predictions": predictions.tolist(),
        "latency_ms": round(1e3 * (ticket.latency_seconds or 0.0), 4),
        "spans": {stage: round(value, 4) for stage, value in spans.items()},
    }


def _op_stats(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    router = state.router
    shards: List[Dict[str, Any]] = []
    if router is not None:
        shards = [
            {
                "name": info.name,
                "model": info.model_name,
                "fingerprint": info.fingerprint,
            }
            for info in router.shards()
        ]
    return {
        "worker": state.worker_id,
        "pid": os.getpid(),
        "host": socket_module.gethostname(),
        "uptime_s": round(time.time() - state.started_at, 3),
        "ops_done": state.ops_done,
        "shards": shards,
        "router": router.snapshot() if router is not None else None,
    }


def _op_spill(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    _require_router(state)
    return _spill_caches(state)


def _op_crash(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    os._exit(int(args.get("code", 13)))


def _op_sleep(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    time.sleep(float(args.get("seconds", 0.0)))
    return {"slept": float(args.get("seconds", 0.0))}


def _op_shutdown(state: _State, args: Dict[str, Any]) -> Dict[str, Any]:
    return {"worker": state.worker_id, "bye": True}


_OPS = {
    "ping": _op_ping,
    "run_shard": _op_run_shard,
    "load": _op_load,
    "predict": _op_predict,
    "stats": _op_stats,
    "spill": _op_spill,
    "crash": _op_crash,
    "sleep": _op_sleep,
    "shutdown": _op_shutdown,
}


def _serve_loop(state: _State, stdin: BinaryIO, stdout: BinaryIO) -> str:
    """Serve ops until the channel ends; returns why it ended.

    ``"shutdown"`` — the supervisor asked (or a signal drained us);
    ``"eof"`` — the channel closed under us (supervisor died, connection
    dropped); ``"error"`` — a write failed mid-response.  Pipe mode treats
    them all as a clean exit; connect-back mode reconnects on ``"eof"``/
    ``"error"`` when it has budget left.
    """
    while True:
        try:
            line = stdin.readline()
        except (OSError, ValueError):
            return "eof"
        if not line:
            return "eof"  # supervisor closed the channel (or died)
        if not line.strip():
            continue
        try:
            message = decode_message(line)
        except ProtocolError as error:
            # Unversioned garbage has no id to correlate; answer loudly
            # with id -1 so the supervisor can log it, then keep serving.
            try:
                stdout.write(encode_message(response_error(-1, str(error), "ProtocolError")))
                stdout.flush()
            except (OSError, ValueError):
                return "error"
            continue
        request_id = int(message.get("id", -1))
        op = message.get("op")
        handler = _OPS.get(op)
        state.in_flight = True
        try:
            if handler is None:
                response = response_error(
                    request_id, f"unknown op {op!r}; known: {sorted(_OPS)}", "UnknownOp"
                )
            else:
                result = handler(state, message.get("args") or {})
                response = response_ok(request_id, result)
        except SystemExit:
            raise
        except BaseException as error:
            response = response_error(
                request_id, str(error) or type(error).__name__, type(error).__name__
            )
        finally:
            state.in_flight = False
        state.ops_done += 1
        try:
            stdout.write(encode_message(response))
            stdout.flush()
        except (OSError, ValueError):
            return "error"
        if op == "shutdown" or state.drain_requested:
            return "shutdown"


def _install_signal_handlers(state: _State) -> None:
    def _on_signal(signum, frame) -> None:
        if state.in_flight:
            # Finish the op and deliver its response, then exit — a
            # restart must never swallow an answer already being computed.
            state.drain_requested = True
        else:
            raise SystemExit(0)

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)


def _main_pipes(state: _State) -> int:
    # The protocol owns the real stdout; reroute stray prints to stderr.
    stdout = sys.stdout.buffer
    sys.stdout = sys.stderr
    stdin = sys.stdin.buffer
    _install_signal_handlers(state)
    try:
        _serve_loop(state, stdin, stdout)
        return 0
    except SystemExit as exit_request:
        return int(exit_request.code or 0)
    finally:
        if state.router is not None:
            state.router.stop()


def _main_connect(state: _State, connect: str, secret: str, reconnect: int) -> int:
    from .net import HandshakeError, client_handshake, parse_hostport

    # Stray prints must not reach the (pipe) stdout either — a connect
    # worker may still be a child of something capturing its stdout.
    sys.stdout = sys.stderr
    _install_signal_handlers(state)
    host, port = parse_hostport(connect)
    attempts_left = max(0, int(reconnect))
    try:
        while True:
            try:
                sock = socket_module.create_connection((host, port), timeout=10.0)
            except OSError as error:
                if attempts_left > 0:
                    attempts_left -= 1
                    print(
                        f"repro.cluster.worker: connect to {connect} failed "
                        f"({error}); retrying ({attempts_left} attempts left)",
                        file=sys.stderr,
                    )
                    time.sleep(1.0)
                    continue
                print(
                    f"repro.cluster.worker: cannot connect to {connect}: {error}",
                    file=sys.stderr,
                )
                return 1
            try:
                try:
                    reader = client_handshake(
                        sock,
                        secret,
                        worker_id=state.worker_id,
                        host=socket_module.gethostname(),
                        pid=os.getpid(),
                    )
                except (HandshakeError, ProtocolError) as error:
                    # Never retried: a pool we cannot verify (wrong secret,
                    # wrong protocol version, an impostor) stays unserved.
                    print(
                        f"repro.cluster.worker: handshake with {connect} "
                        f"failed: {error}",
                        file=sys.stderr,
                    )
                    return 1
                except OSError as error:
                    print(
                        f"repro.cluster.worker: handshake I/O with {connect} "
                        f"failed: {error}",
                        file=sys.stderr,
                    )
                    reason = "eof"
                else:
                    writer = sock.makefile("wb")
                    reason = _serve_loop(state, reader, writer)
            finally:
                try:
                    sock.close()
                except OSError:
                    pass
            if reason == "shutdown":
                return 0
            if attempts_left <= 0:
                return 0  # connection gone, no budget: exit for a respawn
            attempts_left -= 1
            print(
                f"repro.cluster.worker: connection to {connect} ended "
                f"({reason}); reconnecting ({attempts_left} attempts left)",
                file=sys.stderr,
            )
            time.sleep(1.0)
    except SystemExit as exit_request:
        return int(exit_request.code or 0)
    finally:
        if state.router is not None:
            state.router.stop()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.cluster.worker")
    parser.add_argument("--worker-id", default=f"pid{os.getpid()}")
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="dial a WorkerPool listener instead of serving stdin/stdout",
    )
    parser.add_argument(
        "--secret-file",
        default=None,
        help="file holding the shared handshake secret (required with --connect)",
    )
    parser.add_argument(
        "--reconnect",
        type=int,
        default=0,
        help="re-dial a dropped connection up to N times (handshake failures never retry)",
    )
    parser.add_argument(
        "--warm-dir",
        default=None,
        help="local cache dir for connect-back loads (default: <tmpdir>/repro-cluster-warm)",
    )
    args = parser.parse_args(argv)

    if args.connect is None:
        if args.secret_file is not None:
            parser.error("--secret-file only applies with --connect")
        state = _State(args.worker_id)
        return _main_pipes(state)

    if args.secret_file is None:
        parser.error("--connect requires --secret-file")
    from .net import read_secret

    secret = read_secret(args.secret_file)
    warm_dir = args.warm_dir or str(
        Path(tempfile.gettempdir()) / "repro-cluster-warm"
    )
    state = _State(args.worker_id, warm_dir=warm_dir)
    return _main_connect(state, args.connect, secret, args.reconnect)


if __name__ == "__main__":
    sys.exit(main())
