"""Transports for the cluster protocol: pipes, TCP, and connect-back.

PR 9 deliberately kept the worker protocol machine-neutral — versioned
JSON lines with ids, a 64MB cap, loud :class:`ProtocolError` — but buried
the byte plumbing inside ``_Worker``.  This module extracts it behind a
:class:`Transport` so the :class:`~repro.cluster.pool.WorkerPool` can
supervise a worker without caring where it runs:

* :class:`PipeTransport` — today's behavior, bit-compatible: the worker is
  a local child process and its stdin/stdout pipes carry the frames (a
  dead pipe *is* the death signal);
* :class:`TcpTransport` — the same frames over a socket, so the worker can
  live on another machine.  Connections are established *worker-first*
  (connect-back registration): the pool owns a :class:`WorkerListener`,
  and ``python -m repro.cluster.worker --connect HOST:PORT --secret-file
  F`` dials in, survives the handshake, and is slotted into the pool's
  ordinary heartbeat/timeout/restart machinery.

The handshake rejects strangers *before any op is accepted*: the listener
sends a nonce, the worker answers with an HMAC-SHA256 over it keyed by the
shared secret (plus its own nonce, which the pool must answer in kind —
authentication is mutual), and every handshake line is a versioned
protocol message, so a wrong ``PROTOCOL_VERSION`` fails as loudly as a
wrong secret.  Secrets travel in files, never argv-visible process lists.

Writes take an optional ``timeout`` (``select`` writability check before
the write) so a wedged peer with full kernel buffers stalls one heartbeat
probe, not the whole supervision loop.
"""

from __future__ import annotations

import hashlib
import hmac
import queue
import secrets as secrets_module
import select
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_message,
    encode_message,
)

#: hello markers naming each end of the handshake.
HELLO_POOL = "repro-cluster-pool"
HELLO_WORKER = "repro-cluster-worker"

#: bound on one whole handshake exchange; a silent or trickling peer is
#: dropped rather than parked on the accept path.
DEFAULT_HANDSHAKE_TIMEOUT = 10.0

#: substituted with the listener's resolved ``host:port`` in spawn
#: commands, so ``port=0`` (ephemeral) compositions work.
CONNECT_PLACEHOLDER = "{connect}"


class TransportClosed(RuntimeError):
    """The peer is gone (or not draining); the frame was not delivered."""


class HandshakeError(ProtocolError):
    """The peer failed version or shared-secret verification."""


def parse_hostport(address: str) -> Tuple[str, int]:
    """``"HOST:PORT"`` → ``(host, port)``; loud on anything else."""
    host, sep, port_text = str(address).rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"expected HOST:PORT with an integer port, got {address!r}") from None
    if not 0 <= port <= 65535:
        raise ValueError(f"port {port} out of range in {address!r}")
    return host, port


def read_secret(path: Union[str, Path]) -> str:
    """The shared handshake secret from a file (stripped, non-empty)."""
    secret = Path(path).read_text().strip()
    if not secret:
        raise ValueError(f"secret file {str(path)!r} is empty")
    return secret


# ---------------------------------------------------------------------- #
# Transports
# ---------------------------------------------------------------------- #
class Transport:
    """One framed, bidirectional channel to a single worker.

    ``write`` delivers one encoded frame (raising :class:`TransportClosed`
    when the peer is gone, or — with ``timeout`` — when the channel is not
    writable in time); ``readline`` blocks for the next frame and returns
    ``b""`` at end-of-stream, which supervision treats as worker death.
    """

    kind = "?"

    @property
    def pid(self) -> Optional[int]:
        return None

    def write(self, data: bytes, timeout: Optional[float] = None) -> None:
        raise NotImplementedError

    def readline(self) -> bytes:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def is_open(self) -> bool:
        raise NotImplementedError

    def wait_closed(self, timeout: float) -> bool:
        """Block until the channel's resources are released; False on timeout."""
        raise NotImplementedError

    def describe(self) -> Dict[str, object]:
        raise NotImplementedError


class PipeTransport(Transport):
    """The original stdin/stdout framing over a local child process.

    Owns the :class:`subprocess.Popen`: ``close`` is a SIGKILL (the pool's
    way of reclaiming a wedged single-threaded worker) and ``wait_closed``
    reaps the exit status so restarts never stack zombies.
    """

    kind = "pipe"

    def __init__(self, process: "subprocess.Popen") -> None:
        self.process = process

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    def write(self, data: bytes, timeout: Optional[float] = None) -> None:
        process = self.process
        stdin = process.stdin
        if stdin is None or process.poll() is not None:
            raise TransportClosed(f"worker process pid={process.pid} is not running")
        if timeout is not None:
            try:
                writable = select.select([], [stdin], [], timeout)[1]
            except (OSError, ValueError):
                raise TransportClosed("worker stdin pipe is closed") from None
            if not writable:
                raise TransportClosed(
                    f"pipe write stalled for {timeout}s (peer not draining)"
                )
        try:
            stdin.write(data)
            stdin.flush()
        except (BrokenPipeError, OSError, ValueError):
            raise TransportClosed("worker stdin pipe is closed") from None

    def readline(self) -> bytes:
        stdout = self.process.stdout
        if stdout is None:
            return b""
        try:
            return stdout.readline()
        except (OSError, ValueError):
            return b""

    def close(self) -> None:
        if self.process.poll() is None:
            self.process.kill()

    def is_open(self) -> bool:
        return self.process.poll() is None

    def wait_closed(self, timeout: float) -> bool:
        try:
            self.process.wait(timeout=timeout)
            return True
        except subprocess.TimeoutExpired:
            return False

    def describe(self) -> Dict[str, object]:
        return {
            "transport": self.kind,
            "pid": self.process.pid,
            "alive": self.is_open(),
        }


class TcpTransport(Transport):
    """The same frames over a connected, handshake-verified socket.

    ``info`` carries the worker's registration (declared id, hostname,
    remote pid) so pool stats can label a remote slot as richly as a local
    one.  ``close`` shuts the socket down both ways, which unblocks a
    reader parked in ``readline`` on another thread.
    """

    kind = "tcp"

    def __init__(
        self,
        sock: socket.socket,
        reader,
        *,
        info: Optional[Mapping[str, Any]] = None,
        peer: Optional[str] = None,
    ) -> None:
        self.sock = sock
        self._reader = reader
        self.info: Dict[str, Any] = dict(info or {})
        if peer is None:
            try:
                address = sock.getpeername()
                peer = f"{address[0]}:{address[1]}"
            except OSError:
                peer = "?"
        self.peer = peer
        self._closed = False
        self._write_lock = threading.Lock()

    @property
    def pid(self) -> Optional[int]:
        pid = self.info.get("pid")
        return int(pid) if pid is not None else None

    @property
    def host(self) -> Optional[str]:
        host = self.info.get("host")
        return str(host) if host is not None else None

    def write(self, data: bytes, timeout: Optional[float] = None) -> None:
        if self._closed:
            raise TransportClosed(f"tcp transport to {self.peer} is closed")
        with self._write_lock:
            if timeout is None:
                try:
                    self.sock.sendall(data)
                except OSError as error:
                    raise TransportClosed(
                        f"tcp write to {self.peer} failed: {error}"
                    ) from None
                return
            # Bounded write: select-writability only promises *some* buffer
            # space, so send piecewise against a deadline — sendall on a
            # backed-up peer would block past any timeout.
            deadline = time.monotonic() + timeout
            view = memoryview(data)
            while view:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportClosed(
                        f"tcp write to {self.peer} stalled for {timeout}s "
                        "(peer not draining)"
                    )
                try:
                    writable = select.select([], [self.sock], [], remaining)[1]
                except (OSError, ValueError):
                    raise TransportClosed(
                        f"tcp transport to {self.peer} is closed"
                    ) from None
                if not writable:
                    raise TransportClosed(
                        f"tcp write to {self.peer} stalled for {timeout}s "
                        "(peer not draining)"
                    )
                try:
                    sent = self.sock.send(view, getattr(socket, "MSG_DONTWAIT", 0))
                except (BlockingIOError, InterruptedError):
                    continue
                except OSError as error:
                    raise TransportClosed(
                        f"tcp write to {self.peer} failed: {error}"
                    ) from None
                view = view[sent:]

    def readline(self) -> bytes:
        try:
            return self._reader.readline()
        except (OSError, ValueError):
            return b""

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass

    def is_open(self) -> bool:
        return not self._closed

    def wait_closed(self, timeout: float) -> bool:
        self.close()
        return True

    def describe(self) -> Dict[str, object]:
        return {
            "transport": self.kind,
            "pid": self.pid,
            "alive": self.is_open(),
            "peer": self.peer,
            "host": self.host,
            "worker_id": self.info.get("worker_id"),
        }


# ---------------------------------------------------------------------- #
# Handshake
# ---------------------------------------------------------------------- #
def _hmac_hex(secret: str, nonce: str) -> str:
    return hmac.new(
        secret.encode("utf-8"), nonce.encode("utf-8"), hashlib.sha256
    ).hexdigest()


def _send_line(sock: socket.socket, message: Mapping[str, Any]) -> None:
    sock.sendall(encode_message(message))


def _reject(sock: socket.socket, reason: str) -> None:
    """Best-effort rejection line so the peer can log *why* it was dropped."""
    try:
        _send_line(
            sock,
            {"v": PROTOCOL_VERSION, "ok": False, "error": reason},
        )
    except OSError:
        pass


def server_handshake(
    sock: socket.socket,
    secret: str,
    *,
    timeout: float = DEFAULT_HANDSHAKE_TIMEOUT,
):
    """Pool side: challenge the dialing worker, verify, prove ourselves.

    Returns ``(reader, info)`` — the buffered reader to keep using for
    protocol frames and the worker's registration info — or raises
    :class:`HandshakeError` before a single op crosses the wire.
    """
    sock.settimeout(timeout)
    reader = sock.makefile("rb")
    nonce = secrets_module.token_hex(16)
    _send_line(sock, {"v": PROTOCOL_VERSION, "hello": HELLO_POOL, "nonce": nonce})
    line = reader.readline()
    if not line:
        raise HandshakeError("peer closed the connection during the handshake")
    try:
        message = decode_message(line)
    except ProtocolError as error:
        _reject(sock, str(error))
        raise HandshakeError(f"worker handshake rejected: {error}") from None
    if message.get("hello") != HELLO_WORKER:
        _reject(sock, f"expected hello {HELLO_WORKER!r}")
        raise HandshakeError(
            f"peer did not identify as a cluster worker (hello={message.get('hello')!r})"
        )
    if not hmac.compare_digest(
        str(message.get("hmac", "")), _hmac_hex(secret, nonce)
    ):
        _reject(sock, "shared-secret HMAC mismatch")
        raise HandshakeError("worker failed the shared-secret HMAC challenge")
    worker_nonce = str(message.get("nonce", ""))
    _send_line(
        sock,
        {
            "v": PROTOCOL_VERSION,
            "ok": True,
            "hello": HELLO_POOL,
            "hmac": _hmac_hex(secret, worker_nonce),
        },
    )
    sock.settimeout(None)
    info = {
        "worker_id": str(message.get("worker_id", "")),
        "host": str(message.get("host", "")),
        "pid": message.get("pid"),
    }
    return reader, info


def client_handshake(
    sock: socket.socket,
    secret: str,
    *,
    worker_id: str,
    host: str,
    pid: int,
    timeout: float = DEFAULT_HANDSHAKE_TIMEOUT,
):
    """Worker side: answer the pool's challenge and verify *its* answer.

    Returns the buffered reader to keep using for protocol frames; raises
    :class:`HandshakeError` (a wrong secret, an impostor pool) or plain
    :class:`ProtocolError` (a wrong ``PROTOCOL_VERSION``) loudly — a
    worker must never serve ops to an endpoint it could not verify.
    """
    sock.settimeout(timeout)
    reader = sock.makefile("rb")
    line = reader.readline()
    if not line:
        raise HandshakeError("pool closed the connection before the handshake")
    message = decode_message(line)  # loud ProtocolError on version mismatch
    if message.get("hello") != HELLO_POOL:
        raise HandshakeError(
            f"peer did not identify as a cluster pool (hello={message.get('hello')!r})"
        )
    nonce = str(message.get("nonce", ""))
    worker_nonce = secrets_module.token_hex(16)
    _send_line(
        sock,
        {
            "v": PROTOCOL_VERSION,
            "hello": HELLO_WORKER,
            "hmac": _hmac_hex(secret, nonce),
            "nonce": worker_nonce,
            "worker_id": worker_id,
            "host": host,
            "pid": int(pid),
        },
    )
    line = reader.readline()
    if not line:
        raise HandshakeError(
            "pool dropped the connection during the handshake (wrong secret?)"
        )
    ack = decode_message(line)
    if not ack.get("ok"):
        raise HandshakeError(
            f"pool rejected the registration: {ack.get('error', 'unknown reason')}"
        )
    if not hmac.compare_digest(
        str(ack.get("hmac", "")), _hmac_hex(secret, worker_nonce)
    ):
        raise HandshakeError(
            "pool failed to prove the shared secret; refusing to serve it"
        )
    sock.settimeout(None)
    return reader


# ---------------------------------------------------------------------- #
# Connect-back listener
# ---------------------------------------------------------------------- #
class WorkerListener:
    """Accept, verify, and queue connect-back worker registrations.

    Binds immediately (so ``port=0`` resolves before any worker command is
    rendered) and accepts on a daemon thread.  Each connection runs the
    handshake on its own short-lived thread — one garbage or slow-trickle
    connection cannot stall legitimate registrations — and verified
    transports land in a queue the pool drains slot by slot.
    """

    def __init__(
        self,
        address: str,
        *,
        secret: str,
        handshake_timeout: float = DEFAULT_HANDSHAKE_TIMEOUT,
        backlog: int = 16,
    ) -> None:
        if not secret:
            raise ValueError("a connect-back listener requires a non-empty secret")
        host, port = parse_hostport(address)
        self._secret = secret
        self._handshake_timeout = handshake_timeout
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(backlog)
        self._sock = sock
        self.host = host
        self.port = int(sock.getsockname()[1])
        self.address = f"{self.host}:{self.port}"
        self._queue: "queue.Queue[TcpTransport]" = queue.Queue()
        self._stopping = False
        self._rejected = 0
        self._thread = threading.Thread(
            target=self._accept_loop,
            name=f"repro-cluster-listener-{self.port}",
            daemon=True,
        )
        self._thread.start()

    @property
    def rejected(self) -> int:
        """Connections dropped by a failed handshake (wrong secret/version)."""
        return self._rejected

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, addr = self._sock.accept()
            except OSError:
                return  # listener closed: stop accepting
            threading.Thread(
                target=self._register,
                args=(conn, addr),
                name=f"repro-cluster-handshake-{addr[0]}:{addr[1]}",
                daemon=True,
            ).start()

    def _register(self, conn: socket.socket, addr) -> None:
        peer = f"{addr[0]}:{addr[1]}"
        try:
            reader, info = server_handshake(
                conn, self._secret, timeout=self._handshake_timeout
            )
        except (ProtocolError, OSError) as error:
            self._rejected += 1
            print(
                f"repro.cluster: rejected worker registration from {peer}: {error}",
                file=sys.stderr,
            )
            try:
                conn.close()
            except OSError:
                pass
            return
        transport = TcpTransport(conn, reader, info=info, peer=peer)
        if self._stopping:
            transport.close()
            return
        self._queue.put(transport)

    def next_transport(self, timeout: float) -> Optional[TcpTransport]:
        """The next verified registration, or ``None`` after ``timeout``."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def stop(self) -> None:
        self._stopping = True
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=5.0)
        while True:
            try:
                self._queue.get_nowait().close()
            except queue.Empty:
                break


# ---------------------------------------------------------------------- #
# Spawn helpers
# ---------------------------------------------------------------------- #
def worker_connect_command(
    connect: str,
    secret_file: Union[str, Path],
    *,
    python: Optional[str] = None,
    worker_id: Optional[str] = None,
    warm_dir: Optional[Union[str, Path]] = None,
    reconnect: int = 0,
) -> List[str]:
    """The argv that starts one connect-back worker.

    ``connect`` may be the literal :data:`CONNECT_PLACEHOLDER`, which the
    pool substitutes with its listener's resolved address at launch time
    (how ``port=0`` fleets compose).
    """
    argv = [
        python or sys.executable,
        "-m",
        "repro.cluster.worker",
        "--connect",
        str(connect),
        "--secret-file",
        str(secret_file),
    ]
    if worker_id:
        argv += ["--worker-id", str(worker_id)]
    if warm_dir:
        argv += ["--warm-dir", str(warm_dir)]
    if reconnect:
        argv += ["--reconnect", str(int(reconnect))]
    return argv


def ssh_worker_command(
    host: str,
    connect: str,
    secret_file: Union[str, Path],
    *,
    python: str = "python3",
    ssh: Sequence[str] = ("ssh", "-o", "BatchMode=yes"),
    worker_id: Optional[str] = None,
    warm_dir: Optional[Union[str, Path]] = None,
    reconnect: int = 0,
) -> List[str]:
    """An ssh command launching a connect-back worker on ``host``.

    The remote host must have ``repro`` importable by ``python`` and the
    secret file present at ``secret_file`` (secrets ride in files on both
    ends; they never appear in ``ps`` output as argv).  The worker dials
    ``connect`` — which must name an address reachable *from the remote
    host* — and registers through the HMAC handshake like any other.
    """
    remote = worker_connect_command(
        connect,
        secret_file,
        python=python,
        worker_id=worker_id or f"ssh-{host}",
        warm_dir=warm_dir,
        reconnect=reconnect,
    )
    return [*ssh, str(host), *remote]
