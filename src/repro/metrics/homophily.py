"""Homophily measures (Sec. II-B of the paper, reproduced for Table I/II).

Five measures are implemented, each accepting either a
:class:`~repro.graph.DirectedGraph` or a raw ``(adjacency, labels)`` pair:

* ``node_homophily`` — per-node fraction of same-class neighbours,
  averaged over nodes (H_node, Pei et al. 2020);
* ``edge_homophily`` — fraction of edges joining same-class endpoints
  (H_edge, Zhu et al. 2020);
* ``class_homophily`` — class-normalised excess homophily (H_class,
  Lim et al. 2021);
* ``adjusted_homophily`` — degree-corrected edge homophily (H_adj,
  Platonov et al. 2023);
* ``label_informativeness`` — normalised mutual information between the
  labels of edge endpoints (LI, Platonov et al. 2023).

All of them operate on the *directed* adjacency as given; callers that want
the undirected variant pass ``to_undirected(graph)`` first, which is exactly
how Table I contrasts the two.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..graph.digraph import DirectedGraph

GraphLike = Union[DirectedGraph, Tuple[sp.spmatrix, np.ndarray]]


def _unpack(graph: GraphLike) -> Tuple[sp.csr_matrix, np.ndarray]:
    if isinstance(graph, DirectedGraph):
        return graph.adjacency.tocsr(), graph.labels
    adjacency, labels = graph
    return sp.csr_matrix(adjacency), np.asarray(labels, dtype=np.int64)


def _edge_endpoints(adjacency: sp.csr_matrix) -> Tuple[np.ndarray, np.ndarray]:
    coo = adjacency.tocoo()
    mask = coo.row != coo.col
    return coo.row[mask], coo.col[mask]


def edge_homophily(graph: GraphLike) -> float:
    """Fraction of edges whose endpoints share a class (H_edge)."""
    adjacency, labels = _unpack(graph)
    rows, cols = _edge_endpoints(adjacency)
    if rows.size == 0:
        return 0.0
    return float(np.mean(labels[rows] == labels[cols]))


def node_homophily(graph: GraphLike) -> float:
    """Average per-node fraction of same-class out-neighbours (H_node)."""
    adjacency, labels = _unpack(graph)
    rows, cols = _edge_endpoints(adjacency)
    if rows.size == 0:
        return 0.0
    same = (labels[rows] == labels[cols]).astype(np.float64)
    num_nodes = adjacency.shape[0]
    same_per_node = np.bincount(rows, weights=same, minlength=num_nodes)
    degree_per_node = np.bincount(rows, minlength=num_nodes).astype(np.float64)
    has_neighbours = degree_per_node > 0
    if not has_neighbours.any():
        return 0.0
    return float(np.mean(same_per_node[has_neighbours] / degree_per_node[has_neighbours]))


def class_homophily(graph: GraphLike) -> float:
    """Class-insensitive edge homophily (H_class, Lim et al. 2021).

    For each class the per-class edge homophily is compared against the
    class's share of nodes; only the positive excess counts, averaged over
    classes.
    """
    adjacency, labels = _unpack(graph)
    rows, cols = _edge_endpoints(adjacency)
    if rows.size == 0:
        return 0.0
    num_nodes = adjacency.shape[0]
    num_classes = int(labels.max()) + 1
    class_share = np.bincount(labels, minlength=num_classes) / num_nodes
    total = 0.0
    for cls in range(num_classes):
        from_cls = labels[rows] == cls
        if not from_cls.any():
            continue
        h_cls = np.mean(labels[cols][from_cls] == cls)
        total += max(0.0, h_cls - class_share[cls])
    return float(total / max(num_classes - 1, 1))


def adjusted_homophily(graph: GraphLike) -> float:
    """Degree-corrected edge homophily (H_adj, Platonov et al. 2023).

    ``H_adj = (H_edge - Σ_c p_c²) / (1 - Σ_c p_c²)`` where ``p_c`` is the
    fraction of edge endpoints (degree-weighted) belonging to class ``c``.
    Values can be negative for strongly heterophilous graphs.
    """
    adjacency, labels = _unpack(graph)
    rows, cols = _edge_endpoints(adjacency)
    if rows.size == 0:
        return 0.0
    num_classes = int(labels.max()) + 1
    h_edge = float(np.mean(labels[rows] == labels[cols]))
    endpoint_labels = np.concatenate([labels[rows], labels[cols]])
    p = np.bincount(endpoint_labels, minlength=num_classes) / endpoint_labels.size
    expected = float(np.sum(p ** 2))
    denominator = 1.0 - expected
    if denominator <= 0:
        return 0.0
    return float((h_edge - expected) / denominator)


def label_informativeness(graph: GraphLike) -> float:
    """Label informativeness LI (Platonov et al. 2023).

    ``LI = 2 - H(y_u, y_v) / H(y)`` computed from the joint distribution of
    endpoint labels over edges; equals 1 when an endpoint label fully
    determines the other and 0 when endpoints are independent.
    """
    adjacency, labels = _unpack(graph)
    rows, cols = _edge_endpoints(adjacency)
    if rows.size == 0:
        return 0.0
    num_classes = int(labels.max()) + 1
    joint = np.zeros((num_classes, num_classes), dtype=np.float64)
    np.add.at(joint, (labels[rows], labels[cols]), 1.0)
    # Symmetrise so that LI does not depend on edge orientation conventions.
    joint = joint + joint.T
    joint /= joint.sum()
    marginal = joint.sum(axis=1)

    def entropy(p: np.ndarray) -> float:
        p = p[p > 0]
        return float(-(p * np.log(p)).sum())

    h_marginal = entropy(marginal)
    if h_marginal == 0:
        return 0.0
    h_joint = entropy(joint.ravel())
    return float(2.0 - h_joint / h_marginal)


def homophily_report(graph: GraphLike) -> Dict[str, float]:
    """Compute all five measures at once (one row of Table I)."""
    return {
        "node": node_homophily(graph),
        "edge": edge_homophily(graph),
        "class": class_homophily(graph),
        "adjusted": adjusted_homophily(graph),
        "label_informativeness": label_informativeness(graph),
    }
