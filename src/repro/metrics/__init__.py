"""Evaluation metrics: homophily measures and classification quality."""

from .classification import accuracy, confusion_matrix, macro_f1, summarize_runs
from .homophily import (
    adjusted_homophily,
    class_homophily,
    edge_homophily,
    homophily_report,
    label_informativeness,
    node_homophily,
)

__all__ = [
    "accuracy",
    "confusion_matrix",
    "macro_f1",
    "summarize_runs",
    "node_homophily",
    "edge_homophily",
    "class_homophily",
    "adjusted_homophily",
    "label_informativeness",
    "homophily_report",
]
