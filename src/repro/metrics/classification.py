"""Node-classification quality metrics."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


def accuracy(
    predictions: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None
) -> float:
    """Fraction of correctly classified nodes, optionally restricted to a mask."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"prediction shape {predictions.shape} does not match label shape {labels.shape}"
        )
    if mask is not None:
        mask = np.asarray(mask)
        indices = np.flatnonzero(mask) if mask.dtype == bool else mask
        predictions = predictions[indices]
        labels = labels[indices]
    if predictions.size == 0:
        return 0.0
    return float(np.mean(predictions == labels))


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """Dense ``(c, c)`` confusion matrix with true classes on rows."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    if num_classes is None:
        num_classes = int(max(predictions.max(initial=0), labels.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def macro_f1(predictions: np.ndarray, labels: np.ndarray, mask: Optional[np.ndarray] = None) -> float:
    """Unweighted mean of per-class F1 scores."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if mask is not None:
        mask = np.asarray(mask)
        indices = np.flatnonzero(mask) if mask.dtype == bool else mask
        predictions = predictions[indices]
        labels = labels[indices]
    if predictions.size == 0:
        return 0.0
    matrix = confusion_matrix(predictions, labels)
    f1_scores = []
    for cls in range(matrix.shape[0]):
        true_positive = matrix[cls, cls]
        predicted = matrix[:, cls].sum()
        actual = matrix[cls, :].sum()
        if actual == 0:
            continue
        precision = true_positive / predicted if predicted > 0 else 0.0
        recall = true_positive / actual
        if precision + recall == 0:
            f1_scores.append(0.0)
        else:
            f1_scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(f1_scores)) if f1_scores else 0.0


def summarize_runs(accuracies) -> Dict[str, float]:
    """Mean / std summary used when repeating an experiment over seeds."""
    values = np.asarray(list(accuracies), dtype=np.float64)
    if values.size == 0:
        return {"mean": 0.0, "std": 0.0, "count": 0}
    return {
        "mean": float(values.mean()),
        "std": float(values.std()),
        "count": int(values.size),
    }
