"""Command-line interface for the reproduction.

The sub-commands cover the everyday workflows:

``python -m repro.cli amud <dataset>``
    Print the homophily profile, per-pattern R² and AMUD decision.

``python -m repro.cli train <dataset> --model ADPA``
    Train one model (default: the AMUD pipeline's choice) and report
    accuracies.

``python -m repro.cli export <dataset> --out DIR``
    Train and write a serving artifact (weights + config + graph).

``python -m repro.cli predict <artifact-dir>``
    Reload an artifact in a fresh process and predict.

``python -m repro.cli serve-bench <artifact-dir>``
    Drive the micro-batching inference server under concurrent load.

``python -m repro.cli datasets``
    List the registered benchmark stand-ins with their statistics.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import List, Optional

import numpy as np

from .amud import amud_decide
from .datasets import dataset_config, list_datasets, load_dataset
from .graph import to_undirected
from .metrics import accuracy, edge_homophily, homophily_report
from .models import available_models, create_model, get_spec
from .pipeline import AmudPipeline
from .training import Trainer, run_single


def _add_dataset_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", choices=list_datasets(), help="benchmark stand-in to use")
    parser.add_argument("--seed", type=int, default=0, help="generator / split seed")


def _single_model_kwargs(model_name: str, hidden: int) -> dict:
    """Width kwargs for one registry model trained from the CLI.

    SGC is the one registered model without a ``hidden`` kwarg (it is a
    single linear map by design), so the width is passed to everyone else.
    """
    return {} if model_name.lower() == "sgc" else {"hidden": hidden}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AMUD + ADPA reproduction (ICDE 2024) command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    amud_parser = subparsers.add_parser("amud", help="run AMUD guidance on a dataset")
    _add_dataset_argument(amud_parser)
    amud_parser.add_argument("--threshold", type=float, default=0.5, help="decision threshold θ")

    train_parser = subparsers.add_parser("train", help="train a model on a dataset")
    _add_dataset_argument(train_parser)
    train_parser.add_argument(
        "--model",
        default="pipeline",
        help="registered model name, or 'pipeline' for the AMUD-guided workflow",
    )
    train_parser.add_argument("--epochs", type=int, default=200)
    train_parser.add_argument("--patience", type=int, default=30)
    train_parser.add_argument("--lr", type=float, default=0.01)
    train_parser.add_argument("--weight-decay", type=float, default=5e-4)
    train_parser.add_argument("--hidden", type=int, default=64)
    train_parser.add_argument(
        "--undirected", action="store_true",
        help="feed the coarse undirected transformation instead of the natural digraph",
    )

    export_parser = subparsers.add_parser(
        "export", help="train a model and write a serving artifact"
    )
    _add_dataset_argument(export_parser)
    export_parser.add_argument(
        "--model",
        default="pipeline",
        help="registered model name, or 'pipeline' for the AMUD-guided workflow",
    )
    export_parser.add_argument("--out", required=True, help="artifact output directory")
    export_parser.add_argument("--epochs", type=int, default=200)
    export_parser.add_argument("--patience", type=int, default=30)
    export_parser.add_argument("--lr", type=float, default=0.01)
    export_parser.add_argument("--weight-decay", type=float, default=5e-4)
    export_parser.add_argument("--hidden", type=int, default=64)
    export_parser.add_argument(
        "--undirected", action="store_true",
        help="feed the coarse undirected transformation instead of the natural digraph",
    )

    predict_parser = subparsers.add_parser(
        "predict", help="reload a serving artifact and predict node classes"
    )
    predict_parser.add_argument("artifact", help="artifact directory written by 'export'")
    predict_parser.add_argument(
        "--nodes", type=int, nargs="*", default=None,
        help="node ids to predict (default: all nodes)",
    )
    predict_parser.add_argument(
        "--json", action="store_true", help="emit predictions as JSON instead of a summary"
    )

    bench_parser = subparsers.add_parser(
        "serve-bench", help="benchmark the micro-batching inference server on an artifact"
    )
    bench_parser.add_argument("artifact", help="artifact directory written by 'export'")
    bench_parser.add_argument("--requests", type=int, default=256, help="total requests to issue")
    bench_parser.add_argument("--clients", type=int, default=4, help="concurrent client threads")
    bench_parser.add_argument("--subset-size", type=int, default=32, help="nodes per request")
    bench_parser.add_argument("--batch-size", type=int, default=64, help="server micro-batch cap")
    bench_parser.add_argument("--max-wait-ms", type=float, default=2.0, help="coalescing window")

    subparsers.add_parser("datasets", help="list registered datasets")
    models_parser = subparsers.add_parser("models", help="list registered models")
    models_parser.add_argument("--category", default=None, help="filter by registry category")
    return parser


def _command_amud(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, seed=args.seed)
    decision = amud_decide(graph, threshold=args.threshold)
    print(f"dataset: {graph.name}  nodes={graph.num_nodes}  edges={graph.num_edges}")
    for metric, value in homophily_report(graph).items():
        print(f"  {metric:<22s} {value:+.3f}")
    print("per-pattern R²:")
    for name, value in decision.r_squared.items():
        print(f"  {name:<6s} {value:.5f}")
    print(f"guidance score S = {decision.score:.3f} (threshold {decision.threshold})")
    print(f"decision: model as {decision.modeling}")
    return 0


def _command_train(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, seed=args.seed)
    trainer = Trainer(
        lr=args.lr, weight_decay=args.weight_decay, epochs=args.epochs, patience=args.patience
    )
    if args.model == "pipeline":
        pipeline = AmudPipeline(
            undirected_model="GPRGNN",
            directed_model="ADPA",
            trainer=trainer,
            model_kwargs={"directed": {"hidden": args.hidden}},
        )
        result = pipeline.fit(graph)
        print(f"AMUD score {result.decision.score:.3f} -> {result.decision.modeling}")
        print(f"model: {result.model_name}")
        print(f"val accuracy:  {result.train_result.val_accuracy:.4f}")
        print(f"test accuracy: {result.train_result.test_accuracy:.4f}")
        return 0

    get_spec(args.model)  # raises KeyError for unknown names
    view = to_undirected(graph) if args.undirected else graph
    model_kwargs = _single_model_kwargs(args.model, args.hidden)
    result = run_single(args.model, view, seed=args.seed, trainer=trainer, model_kwargs=model_kwargs)
    print(f"model: {args.model}  input: {'U-' if args.undirected else 'D-'}{graph.name}")
    print(f"val accuracy:  {result.val_accuracy:.4f}")
    print(f"test accuracy: {result.test_accuracy:.4f}")
    print(f"best epoch:    {result.best_epoch} / {result.epochs_run}")
    return 0


def _command_export(args: argparse.Namespace) -> int:
    from .serving import save_model

    graph = load_dataset(args.dataset, seed=args.seed)
    trainer = Trainer(
        lr=args.lr, weight_decay=args.weight_decay, epochs=args.epochs, patience=args.patience
    )
    if args.model == "pipeline":
        pipeline = AmudPipeline(
            trainer=trainer,
            model_kwargs={"directed": {"hidden": args.hidden}},
            seed=args.seed,
        )
        result = pipeline.fit(graph)
        path = pipeline.save(args.out)
        print(f"AMUD score {result.decision.score:.3f} -> {result.decision.modeling}")
        print(f"model: {result.model_name}  test accuracy: {result.test_accuracy:.4f}")
        print(f"artifact: {path}")
        return 0

    get_spec(args.model)
    view = to_undirected(graph) if args.undirected else graph
    model = create_model(
        args.model, view, seed=args.seed, **_single_model_kwargs(args.model, args.hidden)
    )
    train_result = trainer.fit(model, view)
    metadata = {
        "kind": "model",
        "dataset": args.dataset,
        "dataset_seed": args.seed,
        "input_view": "undirected" if args.undirected else "directed",
        "train_result": {
            "train_accuracy": train_result.train_accuracy,
            "val_accuracy": train_result.val_accuracy,
            "test_accuracy": train_result.test_accuracy,
            "best_epoch": train_result.best_epoch,
            "epochs_run": train_result.epochs_run,
        },
    }
    path = save_model(model, args.out, metadata=metadata, graph=view)
    print(f"model: {args.model}  test accuracy: {train_result.test_accuracy:.4f}")
    print(f"artifact: {path}")
    return 0


def _command_predict(args: argparse.Namespace) -> int:
    from .serving import restore_model

    model, cache, artifact, graph = restore_model(args.artifact)
    logits = model.predict_logits(graph, cache)
    predictions = logits.argmax(axis=1)
    node_ids = (
        np.arange(graph.num_nodes)
        if args.nodes is None
        else np.asarray(args.nodes, dtype=np.int64)
    )

    if args.json:
        print(json.dumps({
            "model": artifact.model_name,
            "graph": graph.name,
            "nodes": node_ids.tolist(),
            "predictions": predictions[node_ids].tolist(),
        }))
        return 0

    print(f"model: {artifact.model_name}  graph: {graph.name}  nodes={graph.num_nodes}")
    if graph.test_mask is not None:
        print(f"test accuracy: {accuracy(predictions, graph.labels, graph.test_mask):.4f}")
    shown = node_ids[:10]
    listing = ", ".join(f"{node}->{predictions[node]}" for node in shown)
    suffix = "" if len(node_ids) <= 10 else f"  (+{len(node_ids) - 10} more)"
    print(f"predictions: {listing}{suffix}")
    return 0


def _command_serve_bench(args: argparse.Namespace) -> int:
    from .serving import InferenceServer

    server, artifact = InferenceServer.from_artifact(
        args.artifact, max_batch_size=args.batch_size, max_wait_ms=args.max_wait_ms
    )
    graph = server.graph
    rng = np.random.default_rng(0)
    subset_size = min(args.subset_size, graph.num_nodes)
    per_client = max(1, args.requests // args.clients)

    def client(worker_seed: int) -> None:
        local_rng = np.random.default_rng(worker_seed)
        tickets = []
        for _ in range(per_client):
            ids = local_rng.choice(graph.num_nodes, size=subset_size, replace=False)
            tickets.append(server.submit(node_ids=ids))
        for ticket in tickets:
            ticket.result(timeout=120)

    with server:
        start = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(int(rng.integers(1 << 31)),))
            for _ in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        stats = server.stats()

    print(f"model: {artifact.model_name}  graph: {graph.name}  nodes={graph.num_nodes}")
    print(
        f"served {stats.requests} requests in {elapsed:.3f}s "
        f"({stats.requests / elapsed:.1f} req/s)"
    )
    print(
        f"batches: {stats.batches}  forwards: {stats.forwards}  "
        f"mean batch size: {stats.mean_batch_size:.1f}"
    )
    print(
        f"latency: mean {stats.mean_latency_ms:.2f} ms  max {stats.max_latency_ms:.2f} ms"
    )
    cache_stats = stats.cache.as_dict()
    print(
        f"operator cache: {cache_stats['hits']} hits / {cache_stats['misses']} misses "
        f"(hit rate {cache_stats['hit_rate']:.2%})"
    )
    return 0


def _command_datasets(_: argparse.Namespace) -> int:
    print(f"{'name':<18s}{'nodes':>7s}{'classes':>9s}{'E.Homo target':>15s}{'regime':>12s}")
    for name in list_datasets():
        config = dataset_config(name)
        print(
            f"{name:<18s}{config.num_nodes:>7d}{config.num_classes:>9d}"
            f"{config.homophily:>15.2f}{config.amud_regime:>12s}"
        )
    return 0


def _command_models(args: argparse.Namespace) -> int:
    for name in available_models(args.category):
        spec = get_spec(name)
        print(f"{spec.name:<12s} {spec.category}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "amud": _command_amud,
        "train": _command_train,
        "export": _command_export,
        "predict": _command_predict,
        "serve-bench": _command_serve_bench,
        "datasets": _command_datasets,
        "models": _command_models,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
