"""Command-line interface for the reproduction.

Three sub-commands cover the everyday workflows:

``python -m repro.cli amud <dataset>``
    Print the homophily profile, per-pattern R² and AMUD decision.

``python -m repro.cli train <dataset> --model ADPA``
    Train one model (default: the AMUD pipeline's choice) and report
    accuracies.

``python -m repro.cli datasets``
    List the registered benchmark stand-ins with their statistics.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .amud import amud_decide
from .datasets import dataset_config, list_datasets, load_dataset
from .graph import to_undirected
from .metrics import edge_homophily, homophily_report
from .models import available_models, get_spec
from .pipeline import AmudPipeline
from .training import Trainer, run_single


def _add_dataset_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", choices=list_datasets(), help="benchmark stand-in to use")
    parser.add_argument("--seed", type=int, default=0, help="generator / split seed")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AMUD + ADPA reproduction (ICDE 2024) command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    amud_parser = subparsers.add_parser("amud", help="run AMUD guidance on a dataset")
    _add_dataset_argument(amud_parser)
    amud_parser.add_argument("--threshold", type=float, default=0.5, help="decision threshold θ")

    train_parser = subparsers.add_parser("train", help="train a model on a dataset")
    _add_dataset_argument(train_parser)
    train_parser.add_argument(
        "--model",
        default="pipeline",
        help="registered model name, or 'pipeline' for the AMUD-guided workflow",
    )
    train_parser.add_argument("--epochs", type=int, default=200)
    train_parser.add_argument("--patience", type=int, default=30)
    train_parser.add_argument("--lr", type=float, default=0.01)
    train_parser.add_argument("--weight-decay", type=float, default=5e-4)
    train_parser.add_argument("--hidden", type=int, default=64)
    train_parser.add_argument(
        "--undirected", action="store_true",
        help="feed the coarse undirected transformation instead of the natural digraph",
    )

    subparsers.add_parser("datasets", help="list registered datasets")
    models_parser = subparsers.add_parser("models", help="list registered models")
    models_parser.add_argument("--category", default=None, help="filter by registry category")
    return parser


def _command_amud(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, seed=args.seed)
    decision = amud_decide(graph, threshold=args.threshold)
    print(f"dataset: {graph.name}  nodes={graph.num_nodes}  edges={graph.num_edges}")
    for metric, value in homophily_report(graph).items():
        print(f"  {metric:<22s} {value:+.3f}")
    print("per-pattern R²:")
    for name, value in decision.r_squared.items():
        print(f"  {name:<6s} {value:.5f}")
    print(f"guidance score S = {decision.score:.3f} (threshold {decision.threshold})")
    print(f"decision: model as {decision.modeling}")
    return 0


def _command_train(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, seed=args.seed)
    trainer = Trainer(
        lr=args.lr, weight_decay=args.weight_decay, epochs=args.epochs, patience=args.patience
    )
    if args.model == "pipeline":
        pipeline = AmudPipeline(
            undirected_model="GPRGNN",
            directed_model="ADPA",
            trainer=trainer,
            model_kwargs={"directed": {"hidden": args.hidden}},
        )
        result = pipeline.fit(graph)
        print(f"AMUD score {result.decision.score:.3f} -> {result.decision.modeling}")
        print(f"model: {result.model_name}")
        print(f"val accuracy:  {result.train_result.val_accuracy:.4f}")
        print(f"test accuracy: {result.train_result.test_accuracy:.4f}")
        return 0

    get_spec(args.model)  # raises KeyError for unknown names
    view = to_undirected(graph) if args.undirected else graph
    model_kwargs = {} if args.model.lower() == "sgc" else {"hidden": args.hidden}
    result = run_single(args.model, view, seed=args.seed, trainer=trainer, model_kwargs=model_kwargs)
    print(f"model: {args.model}  input: {'U-' if args.undirected else 'D-'}{graph.name}")
    print(f"val accuracy:  {result.val_accuracy:.4f}")
    print(f"test accuracy: {result.test_accuracy:.4f}")
    print(f"best epoch:    {result.best_epoch} / {result.epochs_run}")
    return 0


def _command_datasets(_: argparse.Namespace) -> int:
    print(f"{'name':<18s}{'nodes':>7s}{'classes':>9s}{'E.Homo target':>15s}{'regime':>12s}")
    for name in list_datasets():
        config = dataset_config(name)
        print(
            f"{name:<18s}{config.num_nodes:>7d}{config.num_classes:>9d}"
            f"{config.homophily:>15.2f}{config.amud_regime:>12s}"
        )
    return 0


def _command_models(args: argparse.Namespace) -> int:
    for name in available_models(args.category):
        spec = get_spec(name)
        print(f"{spec.name:<12s} {spec.category}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "amud": _command_amud,
        "train": _command_train,
        "datasets": _command_datasets,
        "models": _command_models,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
