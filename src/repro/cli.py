"""Command-line interface for the reproduction.

Every sub-command is a thin shell over :mod:`repro.api` — the CLI, library
programs and the serving front door all drive the same
:class:`repro.api.Session` facade.

``python -m repro.cli amud <dataset>``
    Print the homophily profile, per-pattern R² and AMUD decision.

``python -m repro.cli train <dataset> --model ADPA``
    Train one model (default: the AMUD-guided choice) and report
    accuracies.

``python -m repro.cli export <dataset> --out DIR``
    Train and write a serving artifact (weights + config + graph).

``python -m repro.cli predict <artifact-dir>``
    Reload an artifact in a fresh process and predict.

``python -m repro.cli serve <artifact-dir> [<artifact-dir> ...]``
    Serve one or many artifacts over HTTP (``/predict``, ``/stats``,
    ``/metrics``, ``/traces``) until interrupted; 429 load shedding at the
    back-pressure limit.

``python -m repro.cli serve-bench <artifact-dir> [<artifact-dir> ...]``
    Drive one or many artifacts through the shard-router front door under
    concurrent load; ``--cache-dir`` persists the operator cache across
    processes (warm before, spill after).

``python -m repro.cli experiment <spec.toml|spec.json>``
    Run a declarative :class:`repro.api.SweepSpec` (models × datasets ×
    variants, repeated over seeds) and emit the typed report as a table
    and/or JSON.  ``--shard i/N`` runs only the deterministic shard ``i``
    and writes a shard report for ``merge-reports``.

``python -m repro.cli merge-reports shard0.json shard1.json ...``
    Merge shard reports from ``experiment --shard`` back into the full
    sweep report — byte-identical (canonical form) to the serial run.

``python -m repro.cli datasets``
    List the registered benchmark stand-ins with their statistics.

``repro serve --workers N`` (N ≥ 2) forks N router worker processes
sharing one spilled cache directory behind a parent HTTP front door;
``serve`` traps SIGTERM/SIGINT and drains in-flight requests on exit.

Artifact errors (missing directory, corrupt manifest or weights) exit with
code 2 and a one-line message instead of a traceback.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
import zipfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from .amud import amud_decide
from .api import HttpConfig, ServeConfig, Session, SweepSpec, TrainConfig, width_kwargs
from .datasets import dataset_config, list_datasets
from .metrics import accuracy, homophily_report
from .models import available_models, get_spec

#: exit code for unusable artifact paths (missing, corrupt, wrong format).
EXIT_ARTIFACT_ERROR = 2

#: everything the artifact loader can raise on a missing or corrupt
#: directory: absent files, bad JSON/npz payloads, schema mismatches.
_ARTIFACT_ERRORS = (OSError, ValueError, KeyError, zipfile.BadZipFile)


def _artifact_error(path: str, error: BaseException) -> int:
    reason = str(error) or type(error).__name__
    print(
        f"error: cannot load serving artifact at {path!r}: {reason}",
        file=sys.stderr,
    )
    print(
        "hint: pass a directory written by 'repro export' (it must contain "
        "artifact.json and weights.npz)",
        file=sys.stderr,
    )
    return EXIT_ARTIFACT_ERROR


def _restore_handle(session: Session, path: str):
    """Session.restore with CLI error semantics; returns (handle, exit_code)."""
    try:
        return session.restore(path), 0
    except _ARTIFACT_ERRORS as error:
        return None, _artifact_error(path, error)


def _add_dataset_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("dataset", choices=list_datasets(), help="benchmark stand-in to use")
    parser.add_argument("--seed", type=int, default=0, help="generator / split seed")


def _add_train_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model",
        default="pipeline",
        help="registered model name, or 'pipeline' for the AMUD-guided workflow",
    )
    parser.add_argument("--epochs", type=int, default=200)
    parser.add_argument("--patience", type=int, default=30)
    parser.add_argument("--lr", type=float, default=0.01)
    parser.add_argument("--weight-decay", type=float, default=5e-4)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument(
        "--undirected", action="store_true",
        help="feed the coarse undirected transformation instead of the natural digraph",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AMUD + ADPA reproduction (ICDE 2024) command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    amud_parser = subparsers.add_parser("amud", help="run AMUD guidance on a dataset")
    _add_dataset_argument(amud_parser)
    amud_parser.add_argument("--threshold", type=float, default=0.5, help="decision threshold θ")

    train_parser = subparsers.add_parser("train", help="train a model on a dataset")
    _add_dataset_argument(train_parser)
    _add_train_arguments(train_parser)

    export_parser = subparsers.add_parser(
        "export", help="train a model and write a serving artifact"
    )
    _add_dataset_argument(export_parser)
    _add_train_arguments(export_parser)
    export_parser.add_argument("--out", required=True, help="artifact output directory")

    predict_parser = subparsers.add_parser(
        "predict", help="reload a serving artifact and predict node classes"
    )
    predict_parser.add_argument("artifact", help="artifact directory written by 'export'")
    predict_parser.add_argument(
        "--nodes", type=int, nargs="*", default=None,
        help="node ids to predict (default: all nodes)",
    )
    predict_parser.add_argument(
        "--json", action="store_true", help="emit predictions as JSON instead of a summary"
    )
    predict_parser.add_argument(
        "--compile", action=argparse.BooleanOptionalAction, default=False,
        help="replay a traced grad-free program instead of the eager forward "
             "(--compile traces + validates, --no-compile stays eager)",
    )

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve one or many artifacts over HTTP until interrupted",
    )
    serve_parser.add_argument(
        "artifacts", nargs="+", metavar="artifact",
        help="artifact director(ies) written by 'export'; several become router shards",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument(
        "--port", type=int, default=8100,
        help="bind port (0 picks a free one and prints it)",
    )
    serve_parser.add_argument("--batch-size", type=int, default=64, help="server micro-batch cap")
    serve_parser.add_argument("--max-wait-ms", type=float, default=2.0, help="coalescing window")
    serve_parser.add_argument(
        "--max-pending", type=int, default=256,
        help="back-pressure: requests beyond this answer 429 instead of queueing",
    )
    serve_parser.add_argument(
        "--cache-dir", default=None,
        help="operator-cache spill directory warmed before the artifacts load",
    )
    serve_parser.add_argument(
        "--compile", action=argparse.BooleanOptionalAction, default=None,
        help="forward compilation on cache-miss traffic (default 'auto')",
    )
    serve_parser.add_argument(
        "--for-seconds", type=float, default=None,
        help="serve for a fixed duration then exit (smoke tests); "
             "default serves until SIGTERM/SIGINT (in-flight requests drain)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=1,
        help="router worker processes; >= 2 forks a repro.cluster pool "
             "sharing --cache-dir behind this front door (each worker owns "
             "its own GIL)",
    )
    serve_parser.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="accept connect-back TCP workers on this address (port 0 picks "
             "a free one and prints it); requires --secret-file; remote "
             "workers fill the --workers slots instead of local forks",
    )
    serve_parser.add_argument(
        "--secret-file", default=None, metavar="FILE",
        help="file holding the shared handshake secret for --listen workers",
    )
    serve_parser.add_argument(
        "--worker-host", action="append", default=None, metavar="HOST",
        help="ssh a connect-back worker onto HOST (repeatable, one slot "
             "each; requires --listen; the secret file must exist on HOST)",
    )
    serve_parser.add_argument(
        "--ssh-python", default="python3",
        help="python executable to run on --worker-host machines",
    )

    bench_parser = subparsers.add_parser(
        "serve-bench",
        help="benchmark one or many artifacts through the shard-router front door",
    )
    bench_parser.add_argument(
        "artifacts", nargs="+", metavar="artifact",
        help="artifact director(ies) written by 'export'; several become router shards",
    )
    bench_parser.add_argument("--requests", type=int, default=256, help="total requests to issue")
    bench_parser.add_argument("--clients", type=int, default=4, help="concurrent client threads")
    bench_parser.add_argument("--subset-size", type=int, default=32, help="nodes per request")
    bench_parser.add_argument("--batch-size", type=int, default=64, help="server micro-batch cap")
    bench_parser.add_argument("--max-wait-ms", type=float, default=2.0, help="coalescing window")
    bench_parser.add_argument(
        "--max-pending", type=int, default=256,
        help="front-door back-pressure: max in-flight requests across shards",
    )
    bench_parser.add_argument(
        "--cache-dir", default=None,
        help="operator-cache spill directory: warmed before the artifacts "
             "load, re-spilled after the benchmark (cold starts become warm "
             "across processes); compiled traces spill beside it under "
             "<cache-dir>/traces",
    )
    bench_parser.add_argument(
        "--compile", action=argparse.BooleanOptionalAction, default=None,
        help="forward compilation on cache-miss traffic: --compile forces "
             "traced replay, --no-compile forces eager; default is 'auto' "
             "(trace with eager fallback)",
    )
    bench_parser.add_argument(
        "--mutate", type=int, default=0, metavar="N",
        help="exercise the live-update path: a writer thread applies N "
             "random single-edge GraphDeltas through router.update_shard "
             "(round-robin across shards) while the clients run",
    )

    experiment_parser = subparsers.add_parser(
        "experiment",
        help="run a declarative experiment spec (TOML/JSON) and emit the report",
    )
    experiment_parser.add_argument(
        "spec", help="path to a SweepSpec file (.json anywhere, .toml on Python 3.11+)"
    )
    experiment_parser.add_argument(
        "--out", default=None, help="write the report JSON to this path"
    )
    experiment_parser.add_argument(
        "--quick", action="store_true",
        help="smoke protocol: first seed only, epochs/patience capped",
    )
    experiment_parser.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="override the spec's seed list",
    )
    experiment_parser.add_argument(
        "--workers", type=int, default=None,
        help="worker-pool bound (default: spec setting, else CPU count)",
    )
    experiment_parser.add_argument(
        "--json", action="store_true",
        help="print the report JSON to stdout instead of the table",
    )
    experiment_parser.add_argument(
        "--shard", default=None, metavar="I/N",
        help="run only the deterministic shard I of N (cells i ≡ I mod N) "
             "and emit a shard report for 'merge-reports'",
    )
    experiment_parser.add_argument(
        "--canonical", action="store_true",
        help="zero the wall-clock timing fields so reports from different "
             "runs/machines compare byte-identical",
    )
    experiment_parser.add_argument(
        "--listen", default=None, metavar="HOST:PORT",
        help="distribute the sweep over connect-back TCP workers registered "
             "on this address (port 0 picks a free one and prints it); "
             "requires --secret-file",
    )
    experiment_parser.add_argument(
        "--secret-file", default=None, metavar="FILE",
        help="file holding the shared handshake secret for --listen workers",
    )
    experiment_parser.add_argument(
        "--worker-host", action="append", default=None, metavar="HOST",
        help="ssh a connect-back worker onto HOST (repeatable; one sweep "
             "shard each; requires --listen)",
    )
    experiment_parser.add_argument(
        "--ssh-python", default="python3",
        help="python executable to run on --worker-host machines",
    )

    merge_parser = subparsers.add_parser(
        "merge-reports",
        help="merge 'experiment --shard' reports into the full sweep report",
    )
    merge_parser.add_argument(
        "reports", nargs="+", metavar="shard.json",
        help="shard report files written by 'experiment --shard I/N --out'",
    )
    merge_parser.add_argument(
        "--out", default=None, help="write the merged report JSON to this path"
    )
    merge_parser.add_argument(
        "--json", action="store_true",
        help="print the merged report JSON to stdout instead of the table",
    )
    merge_parser.add_argument(
        "--keep-timings", action="store_true",
        help="keep each shard's measured wall-clock timings instead of the "
             "canonical (zeroed, bit-comparable) form",
    )

    subparsers.add_parser("datasets", help="list registered datasets")
    models_parser = subparsers.add_parser("models", help="list registered models")
    models_parser.add_argument("--category", default=None, help="filter by registry category")
    return parser


def _session_from_args(args: argparse.Namespace) -> Session:
    return Session(
        seed=args.seed,
        train=TrainConfig(
            lr=args.lr,
            weight_decay=args.weight_decay,
            epochs=args.epochs,
            patience=args.patience,
        ),
    )


def _fit_from_args(args: argparse.Namespace):
    """Shared train/export path: Session → GraphHandle → trained ModelHandle."""
    session = _session_from_args(args)
    handle = session.load(args.dataset)
    if args.model == "pipeline":
        guided = handle.amud()
        # Only the directed branch (ADPA) takes the CLI width by default,
        # mirroring the paper's per-paradigm hyper-parameters.
        kwargs = width_kwargs(
            session.amud_config.model_for(guided.decision.keep_directed), args.hidden
        ) if guided.decision.keep_directed else {}
        return guided.fit(**kwargs)
    get_spec(args.model)  # raises KeyError for unknown names
    if args.undirected:
        handle = handle.undirected()
    return handle.fit(args.model, **width_kwargs(args.model, args.hidden))


def _print_fit_summary(args: argparse.Namespace, handle) -> None:
    if handle.decision is not None:
        print(
            f"AMUD score {handle.decision.score:.3f} -> {handle.decision.modeling}"
        )
        print(f"model: {handle.model_name}")
    else:
        view = "U-" if args.undirected else "D-"
        print(f"model: {handle.model_name}  input: {view}{args.dataset}")
    result = handle.train_result
    print(f"val accuracy:  {result.val_accuracy:.4f}")
    print(f"test accuracy: {result.test_accuracy:.4f}")


def _command_amud(args: argparse.Namespace) -> int:
    handle = Session(seed=args.seed).load(args.dataset)
    graph = handle.graph
    decision = amud_decide(graph, threshold=args.threshold)
    print(f"dataset: {graph.name}  nodes={graph.num_nodes}  edges={graph.num_edges}")
    for metric, value in homophily_report(graph).items():
        print(f"  {metric:<22s} {value:+.3f}")
    print("per-pattern R²:")
    for name, value in decision.r_squared.items():
        print(f"  {name:<6s} {value:.5f}")
    print(f"guidance score S = {decision.score:.3f} (threshold {decision.threshold})")
    print(f"decision: model as {decision.modeling}")
    return 0


def _command_train(args: argparse.Namespace) -> int:
    handle = _fit_from_args(args)
    _print_fit_summary(args, handle)
    result = handle.train_result
    print(f"best epoch:    {result.best_epoch} / {result.epochs_run}")
    return 0


def _command_export(args: argparse.Namespace) -> int:
    handle = _fit_from_args(args)
    if handle.decision is not None:
        # Pipeline path: the modeled view is whatever AMUD decided, not
        # what the (single-model only) --undirected flag says.
        input_view = "directed" if handle.decision.keep_directed else "undirected"
    else:
        input_view = "undirected" if args.undirected else "directed"
    metadata = {
        "dataset": args.dataset,
        "dataset_seed": args.seed,
        "input_view": input_view,
    }
    try:
        path = handle.save(args.out, metadata=metadata)
    except OSError as error:
        print(f"error: cannot write artifact to {args.out!r}: {error}", file=sys.stderr)
        return EXIT_ARTIFACT_ERROR
    _print_fit_summary(args, handle)
    print(f"artifact: {path}")
    return 0


def _command_predict(args: argparse.Namespace) -> int:
    handle, code = _restore_handle(Session(), args.artifact)
    if handle is None:
        return code
    graph = handle.graph
    if args.compile:
        # Trace one forward into a grad-free program; compile_forward
        # validates the replay bit-identical against eager before returning.
        predictions = np.argmax(handle.compile().run(), axis=1)
    else:
        predictions = handle.predict()
    node_ids = (
        np.arange(graph.num_nodes)
        if args.nodes is None
        else np.asarray(args.nodes, dtype=np.int64)
    )

    if args.json:
        print(json.dumps({
            "model": handle.model_name,
            "graph": graph.name,
            "compiled": bool(args.compile),
            "nodes": node_ids.tolist(),
            "predictions": predictions[node_ids].tolist(),
        }))
        return 0

    mode = "compiled (traced replay)" if args.compile else "eager"
    print(f"model: {handle.model_name}  graph: {graph.name}  nodes={graph.num_nodes}  [{mode}]")
    if graph.test_mask is not None:
        print(f"test accuracy: {accuracy(predictions, graph.labels, graph.test_mask):.4f}")
    shown = node_ids[:10]
    listing = ", ".join(f"{node}->{predictions[node]}" for node in shown)
    suffix = "" if len(node_ids) <= 10 else f"  (+{len(node_ids) - 10} more)"
    print(f"predictions: {listing}{suffix}")
    return 0


def _wait_for_shutdown(for_seconds: Optional[float]) -> Optional[str]:
    """Block until the duration elapses or SIGTERM/SIGINT arrives.

    Returns the signal name when one fired (``None`` on plain timeout).
    The previous handlers are restored on exit, so nested waits and the
    test-suite's own signal use stay unaffected.
    """
    stop = threading.Event()
    fired: List[str] = []

    def _on_signal(signum, frame) -> None:
        fired.append(signal.Signals(signum).name)
        stop.set()

    previous = {
        signum: signal.signal(signum, _on_signal)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        stop.wait(for_seconds)
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
    return fired[0] if fired else None


def _check_remote_flags(args: argparse.Namespace) -> Optional[str]:
    """Validate the --listen/--secret-file/--worker-host combination."""
    if args.listen is not None and args.secret_file is None:
        return "--listen requires --secret-file (the shared handshake secret)"
    if args.worker_host and args.listen is None:
        return "--worker-host requires --listen (the address workers dial back)"
    if args.secret_file is not None and args.listen is None:
        return "--secret-file only applies with --listen"
    return None


def _serve_cluster(args: argparse.Namespace) -> int:
    from concurrent.futures import TimeoutError as FutureTimeout

    from .cluster import WorkerError, serve_cluster

    flag_error = _check_remote_flags(args)
    if flag_error is not None:
        print(f"error: {flag_error}", file=sys.stderr)
        return EXIT_ARTIFACT_ERROR
    compile_mode = "auto" if args.compile is None else ("trace" if args.compile else "eager")
    try:
        server = serve_cluster(
            args.artifacts,
            workers=args.workers,
            cache_dir=args.cache_dir,
            serve=ServeConfig(
                max_batch_size=args.batch_size,
                max_wait_ms=args.max_wait_ms,
                router_max_pending=args.max_pending,
                compile=compile_mode,
            ),
            host=args.host,
            port=args.port,
            listen=args.listen,
            secret_file=args.secret_file,
            worker_hosts=args.worker_host,
            ssh_python=args.ssh_python,
        )
    except (OSError, ValueError) as error:
        print(f"error: cannot set up the cluster: {error}", file=sys.stderr)
        return EXIT_ARTIFACT_ERROR
    if server.pool.listen_address is not None:
        print(
            f"worker listener at {server.pool.listen_address} "
            f"(workers: python -m repro.cluster.worker "
            f"--connect {server.pool.listen_address} --secret-file "
            f"{args.secret_file})"
        )
    try:
        server.start()
    except (WorkerError, FutureTimeout, OSError, TimeoutError) as error:
        reason = str(error) or type(error).__name__
        print(f"error: cluster workers failed to start: {reason}", file=sys.stderr)
        print(
            "hint: each worker replays a 'load' of the artifact paths; the "
            "first failure above names the culprit",
            file=sys.stderr,
        )
        server.pool.stop()
        return EXIT_ARTIFACT_ERROR
    try:
        print(
            f"serving {len(args.artifacts)} artifact(s) across "
            f"{args.workers} worker process(es) at {server.url}"
        )
        print("endpoints: POST /predict | GET /health /shards /stats /metrics")
        signame = _wait_for_shutdown(args.for_seconds)
        if signame is not None:
            print(f"\nreceived {signame}; shutting down (draining in-flight requests)")
    finally:
        server.stop()
    stats = server.stats()
    pool_stats = server.pool.stats()
    print(
        f"served {stats.requests} request(s) over {stats.connections} "
        f"connection(s), shed {stats.shed}; pool: {pool_stats.tasks} task(s), "
        f"{pool_stats.retries} retried, {pool_stats.restarts} worker restart(s)"
    )
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return EXIT_ARTIFACT_ERROR
    if args.workers > 1 or args.listen is not None:
        return _serve_cluster(args)
    flag_error = _check_remote_flags(args)
    if flag_error is not None:
        print(f"error: {flag_error}", file=sys.stderr)
        return EXIT_ARTIFACT_ERROR
    compile_mode = "auto" if args.compile is None else ("trace" if args.compile else "eager")
    session = Session(
        serve=ServeConfig(
            max_batch_size=args.batch_size,
            max_wait_ms=args.max_wait_ms,
            router_max_pending=args.max_pending,
            compile=compile_mode,
        )
    )
    try:
        server = session.serve_http(
            *args.artifacts,
            http=HttpConfig(host=args.host, port=args.port),
            cache_dir=args.cache_dir,
        )
    except _ARTIFACT_ERRORS as error:
        return _artifact_error(" | ".join(args.artifacts), error)
    with server:
        shards = server.router.shards()
        print(f"serving {len(shards)} shard(s) at {server.url}")
        for shard in shards:
            print(f"  {shard.name}: {shard.model_name} on {shard.engine.graph.name}")
        print("endpoints: POST /predict | GET /health /shards /stats /metrics /traces")
        signame = _wait_for_shutdown(args.for_seconds)
        if signame is not None:
            print(f"\nreceived {signame}; shutting down (draining in-flight requests)")
    stats = server.stats()
    print(
        f"served {stats.requests} request(s) over {stats.connections} "
        f"connection(s), shed {stats.shed}"
    )
    return 0


def _command_serve_bench(args: argparse.Namespace) -> int:
    if args.mutate:
        # Sustained delta churn allocates and frees multi-MB step arrays
        # per swap; glibc's default trim threshold makes every one a fresh
        # page-fault bill (see repro.serving.allocator).
        from repro.serving import tune_allocator_for_churn

        tune_allocator_for_churn()
    compile_mode = "auto" if args.compile is None else ("trace" if args.compile else "eager")
    session = Session(
        serve=ServeConfig(
            max_batch_size=args.batch_size,
            max_wait_ms=args.max_wait_ms,
            router_max_pending=args.max_pending,
            compile=compile_mode,
        )
    )
    try:
        router = session.serve(*args.artifacts, cache_dir=args.cache_dir)
    except _ARTIFACT_ERRORS as error:
        # Router construction loads artifacts one by one; report whichever
        # path failed (the message from the loader names the missing file).
        return _artifact_error(" | ".join(args.artifacts), error)
    if args.cache_dir:
        warm_stats = router.operator_cache.stats()
        print(
            f"cache dir {args.cache_dir}: {warm_stats.hits} preprocess "
            f"entr{'y' if warm_stats.hits == 1 else 'ies'} reused at load"
        )

    shards = router.shards()
    per_client = max(1, args.requests // args.clients)
    rng = np.random.default_rng(0)

    def client(worker_seed: int) -> None:
        local_rng = np.random.default_rng(worker_seed)
        tickets = []
        for index in range(per_client):
            shard = shards[index % len(shards)]
            graph = shard.engine.graph
            size = min(args.subset_size, graph.num_nodes)
            ids = local_rng.choice(graph.num_nodes, size=size, replace=False)
            tickets.append(router.submit(node_ids=ids, shard=shard.name))
        for ticket in tickets:
            ticket.result(timeout=120)

    clients_done = threading.Event()
    swaps: list = []
    writer_errors: list = []

    def writer() -> None:
        # Live-update traffic: random single-edge deltas through the
        # atomic re-route path, round-robin across shards, until the
        # budget is spent or the clients finish.
        from repro.graph import GraphDelta

        writer_rng = np.random.default_rng(1)
        for index in range(args.mutate):
            if clients_done.is_set():
                break
            shard = shards[index % len(shards)]
            n = shard.engine.graph.num_nodes
            u, v = int(writer_rng.integers(n)), int(writer_rng.integers(n))
            delta = (
                GraphDelta(add_edges=[[u, v]])
                if index % 2 == 0
                else GraphDelta(remove_edges=[[u, v]])
            )
            try:
                swaps.append(router.update_shard(shard.name, delta))
            except Exception as error:  # pragma: no cover - surfaced below
                writer_errors.append(error)
                break
            time.sleep(0.002)

    with router:
        start = time.perf_counter()
        threads = [
            threading.Thread(target=client, args=(int(rng.integers(1 << 31)),))
            for _ in range(args.clients)
        ]
        writer_thread = threading.Thread(target=writer) if args.mutate else None
        for thread in threads:
            thread.start()
        if writer_thread is not None:
            writer_thread.start()
        for thread in threads:
            thread.join()
        clients_done.set()
        if writer_thread is not None:
            writer_thread.join()
        elapsed = time.perf_counter() - start
        stats = router.stats()

    total_requests = sum(s.requests for s in stats.shards.values())
    total_batches = sum(s.batches for s in stats.shards.values())
    total_forwards = sum(s.forwards for s in stats.shards.values())
    print(f"front door: {len(shards)} shard(s), {stats.max_pending} max in-flight")
    for shard in shards:
        shard_stats = stats.shards[shard.name]
        print(
            f"  {shard.name}: {shard.model_name} on {shard.engine.graph.name} "
            f"({shard.engine.graph.num_nodes} nodes)  requests={shard_stats.requests}  "
            f"mean latency {shard_stats.mean_latency_ms:.2f} ms"
        )
    print(
        f"served {total_requests} requests in {elapsed:.3f}s "
        f"({total_requests / elapsed:.1f} req/s)"
    )
    if args.mutate:
        in_place = sum(1 for swap in swaps if swap.in_place)
        print(
            f"live updates: {len(swaps)} deltas applied "
            f"({in_place} in-place, {len(swaps) - in_place} re-preprocessed)"
        )
        if writer_errors:
            print(f"error: live-update writer failed: {writer_errors[0]}", file=sys.stderr)
            return 1
    print(
        f"batches: {total_batches}  forwards: {total_forwards}  "
        f"mean batch size: {total_requests / total_batches if total_batches else 0.0:.1f}"
    )
    # All shards share one operator cache and one logit cache; report each once.
    any_stats = next(iter(stats.shards.values()))
    cache_stats = any_stats.cache.as_dict()
    print(
        f"operator cache: {cache_stats['hits']} hits / {cache_stats['misses']} misses "
        f"(hit rate {cache_stats['hit_rate']:.2%})"
    )
    logit_stats = any_stats.logit_cache.as_dict()
    print(
        f"logit cache: {logit_stats['hits']} hits / {logit_stats['misses']} misses "
        f"(weights-versioned keys)"
    )
    if stats.trace is not None:
        trace_stats = stats.trace.as_dict()
        print(
            f"trace cache [{compile_mode}]: {trace_stats['compiles']} compiles, "
            f"{trace_stats['hits']} hits / {trace_stats['misses']} misses, "
            f"{trace_stats['fallbacks']} eager fallbacks"
        )
    else:
        print("trace cache: disabled (eager)")
    if args.cache_dir:
        spilled = router.operator_cache.spill(args.cache_dir)
        print(f"spilled {spilled} preprocess entr{'y' if spilled == 1 else 'ies'} to {args.cache_dir}")
        if router.trace_cache is not None:
            trace_dir = Path(args.cache_dir) / "traces"
            spilled_traces = router.trace_cache.spill(trace_dir)
            print(f"spilled {spilled_traces} compiled trace(s) to {trace_dir}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    # The overrides re-validate through the frozen configs, so a bad
    # --seeds/--workers value fails here with the same clean exit as a bad
    # spec file.
    try:
        spec = SweepSpec.from_file(args.spec)
        config = spec.config
        if args.quick:
            config = config.quick()
        if args.seeds:
            config = config.replace(seeds=tuple(args.seeds))
        if args.workers is not None:
            config = config.replace(max_workers=args.workers)
        spec = spec.replace(config=config)
    except (OSError, ValueError, KeyError, TypeError) as error:
        reason = str(error) or type(error).__name__
        print(f"error: cannot load experiment spec {args.spec!r}: {reason}", file=sys.stderr)
        return EXIT_ARTIFACT_ERROR

    if args.listen is not None or args.worker_host:
        if args.shard is not None:
            print(
                "error: --shard and --listen/--worker-host are mutually "
                "exclusive (a distributed run shards internally)",
                file=sys.stderr,
            )
            return EXIT_ARTIFACT_ERROR
        return _run_experiment_distributed(args, spec)
    if args.shard is not None:
        return _run_experiment_shard(args, spec)

    report = Session().experiment(spec)
    if args.canonical:
        report = report.canonical()
    if args.json:
        print(report.to_json(indent=2))
    else:
        print(report.as_table())
    if args.out:
        path = report.save(args.out)
        print(f"report: {path}")
    return 0


def _run_experiment_distributed(args: argparse.Namespace, spec: SweepSpec) -> int:
    """Fan a sweep out over connect-back TCP workers and merge the shards.

    Each worker runs one deterministic shard (cells ``i % N``); the merge
    is the same spec-hash-validated path as ``merge-reports``, so the
    result is bit-identical to the serial run in canonical form.
    """
    from .cluster import (
        CONNECT_PLACEHOLDER,
        ShardReport,
        WorkerError,
        WorkerPool,
        merge_shard_reports,
        read_secret,
        ssh_worker_command,
    )

    flag_error = _check_remote_flags(args)
    if flag_error is not None:
        print(f"error: {flag_error}", file=sys.stderr)
        return EXIT_ARTIFACT_ERROR
    try:
        secret = read_secret(args.secret_file)
    except (OSError, ValueError) as error:
        print(f"error: cannot read secret file: {error}", file=sys.stderr)
        return EXIT_ARTIFACT_ERROR
    spawn_commands = None
    if args.worker_host:
        spawn_commands = [
            ssh_worker_command(
                worker_host, CONNECT_PLACEHOLDER, args.secret_file,
                python=args.ssh_python,
            )
            for worker_host in args.worker_host
        ]
        shard_count = len(spawn_commands)
    else:
        # Bare --listen: externally-started --connect workers fill the
        # slots; --workers says how many to wait for (default 2).
        shard_count = args.workers if args.workers else 2
    try:
        pool = WorkerPool(
            shard_count,
            listen=args.listen,
            secret=secret,
            spawn_commands=spawn_commands,
        )
    except (OSError, ValueError) as error:
        print(f"error: cannot set up the worker pool: {error}", file=sys.stderr)
        return EXIT_ARTIFACT_ERROR
    print(
        f"worker listener at {pool.listen_address}; distributing "
        f"{len(spec.cells())} cell(s) over {shard_count} shard(s)"
    )
    try:
        pool.start()
    except (WorkerError, TimeoutError, OSError) as error:
        reason = str(error) or type(error).__name__
        print(f"error: cluster workers failed to start: {reason}", file=sys.stderr)
        pool.stop()
        return EXIT_ARTIFACT_ERROR
    spec_payload = spec.as_dict()
    results: List[Optional[Dict[str, object]]] = [None] * shard_count
    errors: List[Tuple[int, Exception]] = []

    def _run_shard(index: int) -> None:
        try:
            results[index] = pool.call(
                "run_shard",
                {
                    "spec": spec_payload,
                    "shard_index": index,
                    "shard_count": shard_count,
                },
                timeout=3600.0,
            )
        except Exception as error:  # noqa: BLE001 — reported per shard below
            errors.append((index, error))

    try:
        threads = [
            threading.Thread(target=_run_shard, args=(index,), daemon=True)
            for index in range(shard_count)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        pool.stop()
    if errors:
        for index, error in sorted(errors, key=lambda item: item[0]):
            reason = str(error) or type(error).__name__
            print(f"error: shard {index}/{shard_count} failed: {reason}", file=sys.stderr)
        return EXIT_ARTIFACT_ERROR
    try:
        report = merge_shard_reports(
            [ShardReport.from_dict(payload) for payload in results],
            canonical=args.canonical,
        )
    except (ValueError, KeyError, TypeError) as error:
        print(f"error: cannot merge shard reports: {error}", file=sys.stderr)
        return EXIT_ARTIFACT_ERROR
    if args.json:
        print(report.to_json(indent=2))
    else:
        print(report.as_table())
    if args.out:
        path = report.save(args.out)
        print(f"report: {path}")
    return 0


def _run_experiment_shard(args: argparse.Namespace, spec: SweepSpec) -> int:
    from .cluster import run_sweep_shard

    try:
        index_text, _, count_text = args.shard.partition("/")
        shard_index, shard_count = int(index_text), int(count_text)
    except ValueError:
        print(
            f"error: --shard expects I/N (e.g. 0/4), got {args.shard!r}",
            file=sys.stderr,
        )
        return EXIT_ARTIFACT_ERROR
    try:
        report = run_sweep_shard(spec, shard_index, shard_count)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return EXIT_ARTIFACT_ERROR
    if args.canonical:
        report = report.canonical()
    if args.json:
        print(report.to_json(indent=2))
    else:
        print(
            f"shard {shard_index}/{shard_count}: ran {len(report.cells)} of "
            f"{len(spec.cells())} cell(s) (indices {list(report.cell_indices)})"
        )
    if args.out:
        path = report.save(args.out)
        print(f"shard report: {path}")
    return 0


def _command_merge_reports(args: argparse.Namespace) -> int:
    from .cluster import merge_shard_files

    try:
        report = merge_shard_files(args.reports, canonical=not args.keep_timings)
    except (OSError, ValueError, KeyError, TypeError) as error:
        reason = str(error) or type(error).__name__
        print(f"error: cannot merge shard reports: {reason}", file=sys.stderr)
        return EXIT_ARTIFACT_ERROR
    if args.json:
        print(report.to_json(indent=2))
    else:
        print(report.as_table())
    if args.out:
        path = report.save(args.out)
        print(f"report: {path}")
    return 0


def _command_datasets(_: argparse.Namespace) -> int:
    print(f"{'name':<18s}{'nodes':>7s}{'classes':>9s}{'E.Homo target':>15s}{'regime':>12s}")
    for name in list_datasets():
        config = dataset_config(name)
        print(
            f"{name:<18s}{config.num_nodes:>7d}{config.num_classes:>9d}"
            f"{config.homophily:>15.2f}{config.amud_regime:>12s}"
        )
    return 0


def _command_models(args: argparse.Namespace) -> int:
    for name in available_models(args.category):
        spec = get_spec(name)
        print(f"{spec.name:<12s} {spec.category}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "amud": _command_amud,
        "train": _command_train,
        "export": _command_export,
        "predict": _command_predict,
        "serve": _command_serve,
        "serve-bench": _command_serve_bench,
        "experiment": _command_experiment,
        "merge-reports": _command_merge_reports,
        "datasets": _command_datasets,
        "models": _command_models,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
