"""ADPA: Adaptive Directed Pattern Aggregation (paper Sec. IV, Alg. 1 lines 10-16).

The model is fully decoupled:

1. :meth:`ADPA.preprocess` instantiates the k-order DP operators, optionally
   prunes them by their label correlation (Sec. IV-B), and runs the K-step
   weight-free propagation of Eq. (9).  The result is cached.
2. :meth:`ADPA.forward` applies, per propagation step, the node-wise DP
   attention (Eq. 10), then fuses the K step representations with the
   node-wise hop attention (Eq. 11) and classifies with an MLP.

Setting ``dp_attention="none"`` / ``hop_attention="none"`` reproduces the
ablation rows of Table VII; ``order`` reproduces the k-order sweep of
Table VI; ``num_steps`` the K sweep of Fig. 6.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..graph.digraph import DirectedGraph
from ..models.base import NodeClassifier
from ..nn import MLP, Dropout, Tensor
from .attention import DirectedPatternAttention, HopAttention
from .propagation import build_dp_operators, propagate_features, select_operators


class ADPA(NodeClassifier):
    """Adaptive Directed Pattern Aggregation node classifier.

    Parameters
    ----------
    num_features, num_classes:
        Input feature dimensionality and number of target classes.
    hidden:
        Width of the fused representations and MLP hidden layers.
    num_steps:
        Propagation depth ``K`` (Eq. 9).
    order:
        DP operator order; ``order=2`` yields the six operators
        ``A, Aᵀ, AA, AᵀAᵀ, AAᵀ, AᵀA`` the paper defaults to.
    dp_attention / hop_attention:
        Attention families for the two hierarchical levels (Table VII).
    max_operators / min_operator_correlation:
        Optional correlation-guided operator pruning (Sec. IV-B).
    residual_alpha:
        Per-step initial-residual (APPNP-style) propagation strength; ``0``
        keeps the plain Eq. (9) propagation.  This is the "well-designed
        propagation strategies" extension discussed in Sec. IV-A.
    mlp_layers, dropout:
        Classifier depth and dropout rate.
    seed:
        Seed for parameter initialisation and dropout masks.
    """

    directed = True

    def __init__(
        self,
        num_features: int,
        num_classes: int,
        hidden: int = 64,
        num_steps: int = 3,
        order: int = 2,
        dp_attention: str = "original",
        hop_attention: str = "softmax",
        max_operators: Optional[int] = None,
        min_operator_correlation: Optional[float] = None,
        residual_alpha: float = 0.0,
        mlp_layers: int = 2,
        dropout: float = 0.5,
        seed: int = 0,
    ) -> None:
        super().__init__(num_features, num_classes)
        if num_steps < 1:
            raise ValueError(f"num_steps must be >= 1, got {num_steps}")
        if order < 1:
            raise ValueError(f"order must be >= 1, got {order}")
        self.hidden = hidden
        self.num_steps = num_steps
        self.order = order
        self.dp_attention_kind = dp_attention
        self.hop_attention_kind = hop_attention
        self.max_operators = max_operators
        self.min_operator_correlation = min_operator_correlation
        self.residual_alpha = residual_alpha
        self.seed = seed
        self._rng = np.random.default_rng(seed)

        # The number of operators is only known after preprocessing (the
        # correlation-guided selection may prune some), so the attention
        # modules are built lazily in ``_build_modules``.
        self._modules_built = False
        self._num_blocks: Optional[int] = None
        self.input_dropout = Dropout(dropout, rng=self._rng)
        self.classifier = MLP(
            in_features=hidden,
            hidden_features=hidden,
            out_features=num_classes,
            num_layers=mlp_layers,
            dropout=dropout,
            rng=self._rng,
        )
        self.dp_attention: Optional[DirectedPatternAttention] = None
        self.hop_attention: Optional[HopAttention] = None

    # ------------------------------------------------------------------ #
    # Preprocessing (training independent, Fig. 4a)
    # ------------------------------------------------------------------ #
    def preprocess(self, graph: DirectedGraph) -> Dict[str, object]:
        operators = build_dp_operators(graph, order=self.order)
        names = select_operators(
            graph,
            operators,
            max_operators=self.max_operators,
            min_correlation=self.min_operator_correlation,
        )
        propagation = propagate_features(
            graph,
            num_steps=self.num_steps,
            operators=operators,
            operator_names=names,
            residual_alpha=self.residual_alpha,
        )
        self._build_modules(num_operators=len(names))
        steps: List[List[Tensor]] = []
        initial = Tensor(propagation.initial)
        for step in range(propagation.num_steps):
            blocks = [initial] + [
                Tensor(propagation.steps[step][name]) for name in propagation.operator_names
            ]
            steps.append(blocks)
        return {
            "steps": steps,
            "operator_names": propagation.operator_names,
            "graph": graph,
        }

    def _build_modules(self, num_operators: int) -> None:
        """Create the attention modules once the operator count is known."""
        num_blocks = num_operators + 1
        if self._modules_built and num_blocks == self._num_blocks:
            return
        if self._modules_built and self.architecture_frozen:
            # A rebuild would replace the restored attention weights with
            # fresh random ones and silently serve garbage; refuse instead.
            raise RuntimeError(
                f"restored ADPA was trained with {self._num_blocks - 1} DP operators "
                f"but this graph selects {num_operators}; the architectures are "
                "incompatible, so the saved weights cannot serve this graph"
            )
        self._num_blocks = num_blocks
        self.dp_attention = DirectedPatternAttention(
            in_features=self.num_features,
            hidden_features=self.hidden,
            num_blocks=num_blocks,
            kind=self.dp_attention_kind,
            dropout=0.0,
            rng=self._rng,
        )
        self.hop_attention = HopAttention(
            hidden_features=self.hidden,
            num_hops=self.num_steps,
            kind=self.hop_attention_kind,
            rng=self._rng,
        )
        self._modules_built = True

    # ------------------------------------------------------------------ #
    # Forward pass (Fig. 4b)
    # ------------------------------------------------------------------ #
    def bind_cache(self, cache: Dict[str, object]) -> None:
        """Build the attention modules from a cache computed elsewhere.

        A shared-cache hit (or an on-disk spill reload) hands this instance
        a preprocess result computed by an equal-signature twin; the module
        shapes are fully determined by the cache, so build them from it.
        """
        names = cache.get("operator_names")
        if names is None:
            raise RuntimeError(
                "ADPA given a preprocess cache without operator_names; "
                "was it computed by a different model?"
            )
        self._build_modules(num_operators=len(names))

    def forward(self, cache: Dict[str, object]) -> Tensor:
        if not self._modules_built:
            if "operator_names" not in cache:
                raise RuntimeError("ADPA.forward called before preprocess()")
            self.bind_cache(cache)
        steps: List[List[Tensor]] = cache["steps"]
        hop_representations = []
        for blocks in steps:
            blocks = [self.input_dropout(block) for block in blocks]
            hop_representations.append(self.dp_attention(blocks))
        fused = self.hop_attention(hop_representations)
        return self.classifier(fused)

    # ------------------------------------------------------------------ #
    # Introspection helpers used by the analysis benchmarks
    # ------------------------------------------------------------------ #
    def hop_weights(self, cache: Dict[str, object]) -> np.ndarray:
        """Per-node hop attention weights for a preprocessed graph."""
        steps: List[List[Tensor]] = cache["steps"]
        hop_representations = [self.dp_attention(blocks) for blocks in steps]
        return self.hop_attention.attention_weights(hop_representations)

    def selected_operators(self, cache: Dict[str, object]) -> List[str]:
        """Names of the DP operators retained after correlation pruning."""
        return list(cache["operator_names"])
