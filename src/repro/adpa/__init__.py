"""ADPA: Adaptive Directed Pattern Aggregation (paper Sec. IV)."""

from .attention import (
    DP_ATTENTION_KINDS,
    HOP_ATTENTION_KINDS,
    DirectedPatternAttention,
    HopAttention,
)
from .model import ADPA
from .propagation import (
    PropagationResult,
    build_dp_operators,
    propagate_features,
    select_operators,
)

__all__ = [
    "ADPA",
    "DirectedPatternAttention",
    "HopAttention",
    "DP_ATTENTION_KINDS",
    "HOP_ATTENTION_KINDS",
    "PropagationResult",
    "build_dp_operators",
    "propagate_features",
    "select_operators",
]
