"""Directed-pattern guided, training-free feature propagation (Eq. 9).

ADPA first instantiates the k-order DP operators
``G_d = {A, Aᵀ, AA, AᵀAᵀ, AAᵀ, AᵀA, …}`` and propagates the raw features K
steps under each operator *before* training starts:

``X^(l)_{G_g} = G_g X^(l-1)_{G_g}``  for every operator ``g`` and step ``l``,

keeping the initial residual ``X^(0) = X`` alongside.  The result is the
3-level cache ``propagated[step][operator] -> (n, f)`` consumed by the two
attention mechanisms.  Because the operators are constant sparse matrices
the whole procedure is a handful of sparse·dense products, which is exactly
the paper's complexity argument (O(kKmf) preprocessing, nothing at train
time).

This module also implements the correlation-guided operator selection
recommended in Sec. IV-B: operators whose ``r(G_d, N)`` on the *training*
labels is weak can be dropped to save computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np
import scipy.sparse as sp

from ..amud.correlation import pattern_profile_correlation
from ..graph.digraph import DirectedGraph
from ..graph.operators import (
    add_self_loops,
    directed_pattern_operators,
    row_normalized,
)


@dataclass
class PropagationResult:
    """Output of :func:`propagate_features`.

    Attributes
    ----------
    initial:
        The residual ``X^(0)`` (raw features), shape ``(n, f)``.
    steps:
        ``steps[l][name]`` is the feature matrix after ``l+1`` propagation
        steps under DP operator ``name``; every entry has shape ``(n, f)``.
    operator_names:
        Operator order used consistently across steps (defines the layout
        the attention mechanisms expect).
    """

    initial: np.ndarray
    steps: List[Dict[str, np.ndarray]]
    operator_names: List[str]

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def num_operators(self) -> int:
        return len(self.operator_names)

    def step_block(self, step: int) -> np.ndarray:
        """Concatenate ``[X^(0) | X^(step)_{G_1} | … | X^(step)_{G_k}]`` (Eq. 9)."""
        blocks = [self.initial] + [self.steps[step][name] for name in self.operator_names]
        return np.concatenate(blocks, axis=1)

    def stacked(self) -> np.ndarray:
        """All step blocks stacked as ``(K, n, (k+1) f)``; used by tests."""
        return np.stack([self.step_block(step) for step in range(self.num_steps)], axis=0)


def build_dp_operators(
    graph: DirectedGraph,
    order: int = 2,
    self_loops: bool = True,
    normalize: bool = True,
) -> Dict[str, sp.csr_matrix]:
    """Instantiate and normalise the k-order DP operators for propagation."""
    operators = directed_pattern_operators(graph.adjacency, order=order, binarize=True)
    prepared: Dict[str, sp.csr_matrix] = {}
    for name, matrix in operators.items():
        if self_loops:
            matrix = add_self_loops(matrix)
        prepared[name] = row_normalized(matrix) if normalize else matrix
    return prepared


def select_operators(
    graph: DirectedGraph,
    operators: Dict[str, sp.csr_matrix],
    max_operators: Optional[int] = None,
    min_correlation: Optional[float] = None,
    train_only: bool = True,
) -> List[str]:
    """Rank DP operators by ``r(G_d, N)`` and keep the strongest ones.

    Implements the efficiency recommendation of Sec. IV-B: when labels are
    (partially) known, operators with a higher positive correlation to the
    label-agreement structure are preferred.  The correlation is evaluated
    on the training subgraph only (``train_only=True``) so no test
    information leaks into model construction.
    """
    if max_operators is None and min_correlation is None:
        return list(operators)
    if train_only and graph.train_mask is not None:
        nodes = np.flatnonzero(graph.train_mask)
    else:
        nodes = np.arange(graph.num_nodes)
    labels = graph.labels[nodes]
    ranked = []
    for name, matrix in operators.items():
        submatrix = sp.csr_matrix(matrix)[nodes][:, nodes]
        correlation = pattern_profile_correlation(submatrix, labels)
        ranked.append((name, correlation))
    ranked.sort(key=lambda item: item[1], reverse=True)
    if min_correlation is None:
        kept = [name for name, _ in ranked]
    else:
        kept = [name for name, correlation in ranked if correlation >= min_correlation]
    if not kept:
        # Never drop everything: fall back to the single best operator.
        kept = [ranked[0][0]]
    if max_operators is not None:
        kept = kept[:max_operators]
    # Preserve the canonical operator ordering for reproducibility.
    return [name for name in operators if name in set(kept)]


def propagate_features(
    graph: DirectedGraph,
    num_steps: int,
    operators: Optional[Dict[str, sp.csr_matrix]] = None,
    order: int = 2,
    operator_names: Optional[Sequence[str]] = None,
    residual_alpha: float = 0.0,
) -> PropagationResult:
    """Run the K-step weight-free propagation of Eq. (9).

    Parameters
    ----------
    graph:
        Input graph (directed or undirected — in the undirected case
        ``A = Aᵀ`` and the DP operators collapse pairwise, which is exactly
        the behaviour the paper describes for AMUndirected inputs).
    num_steps:
        The paper's ``K`` (number of propagation steps).
    operators:
        Pre-built operators (from :func:`build_dp_operators`); built on the
        fly when omitted.
    order:
        DP order used when operators are built here.
    operator_names:
        Optional subset/order of operators to use (output of
        :func:`select_operators`).
    residual_alpha:
        Optional per-step initial residual (the "well-designed propagation
        strategies" extension discussed in Sec. IV-A): each step becomes
        ``X^(l) = (1 - α) G X^(l-1) + α X^(0)``, i.e. an APPNP-style
        personalised-PageRank propagation per DP operator.  ``0`` recovers
        the plain Eq. (9) behaviour.
    """
    if num_steps < 1:
        raise ValueError(f"num_steps must be >= 1, got {num_steps}")
    if not 0.0 <= residual_alpha < 1.0:
        raise ValueError(f"residual_alpha must be in [0, 1), got {residual_alpha}")
    if operators is None:
        operators = build_dp_operators(graph, order=order)
    if operator_names is None:
        operator_names = list(operators)
    else:
        missing = [name for name in operator_names if name not in operators]
        if missing:
            raise KeyError(f"unknown DP operators requested: {missing}")

    features = graph.features
    current = {name: features for name in operator_names}
    steps: List[Dict[str, np.ndarray]] = []
    for _ in range(num_steps):
        next_step: Dict[str, np.ndarray] = {}
        for name in operator_names:
            propagated = operators[name] @ current[name]
            if residual_alpha > 0.0:
                propagated = (1.0 - residual_alpha) * propagated + residual_alpha * features
            next_step[name] = propagated
        steps.append(next_step)
        current = next_step
    return PropagationResult(initial=features, steps=steps, operator_names=list(operator_names))
