"""The two hierarchical node-adaptive attention mechanisms of ADPA (Sec. IV-C).

Level 1 — *node-wise DP attention* (Eq. 10) fuses, at each propagation step,
the initial residual with the k operator-specific feature blocks into a
single ``(n, hidden)`` representation.  The paper notes the concrete
attention family is swappable; four families are provided and ablated in
Table VII:

* ``original`` — softmax attention over operators, scores computed from a
  per-operator linear projection of the node's block;
* ``gate``      — gate attention (tanh projection followed by a context
  vector, GATE-style);
* ``recursive`` — recursive attention where each operator is scored against
  the running aggregate (GAMLP-style);
* ``jk``        — jumping-knowledge fusion: plain concatenation followed by
  a linear map (no explicit per-operator weights).

Level 2 — *node-wise hop attention* (Eq. 11) fuses the K per-step outputs
into the final node representation, with per-node softmax weights computed
from the concatenation of all hop representations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn import Dropout, Linear, Module, Parameter, Tensor, concatenate, stack
from ..nn import functional as F
from ..nn import init

DP_ATTENTION_KINDS = ("original", "gate", "recursive", "jk", "none")
HOP_ATTENTION_KINDS = ("softmax", "mean", "none")


class DirectedPatternAttention(Module):
    """Node-wise DP attention (level 1, Eq. 10).

    Parameters
    ----------
    in_features:
        Dimensionality of each incoming block (the raw feature size ``f``).
    hidden_features:
        Output dimensionality of the fused representation.
    num_blocks:
        ``k + 1``: the initial residual plus one block per DP operator.
    kind:
        One of :data:`DP_ATTENTION_KINDS`.  ``"none"`` averages the blocks,
        matching the "w/o DP attention" ablation row of Table VII.
    """

    def __init__(
        self,
        in_features: int,
        hidden_features: int,
        num_blocks: int,
        kind: str = "original",
        dropout: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if kind not in DP_ATTENTION_KINDS:
            raise ValueError(f"unknown DP attention kind {kind!r}; expected one of {DP_ATTENTION_KINDS}")
        rng = rng if rng is not None else np.random.default_rng()
        self.kind = kind
        self.num_blocks = num_blocks
        self.dropout = Dropout(dropout, rng=rng)
        # Per-block projections implement the concatenation-then-MLP of
        # Eq. (10): a linear layer applied to the concatenation of k+1 blocks
        # is exactly the sum of k+1 block-specific linear maps, and keeping
        # them separate lets the attention reweight each operator's
        # contribution per node.
        self.projections = [Linear(in_features, hidden_features, rng=rng) for _ in range(num_blocks)]
        if kind == "jk":
            self.fuse = Linear(num_blocks * hidden_features, hidden_features, rng=rng)
        elif kind == "original":
            self.score = Linear(hidden_features, 1, rng=rng)
        elif kind == "gate":
            self.gate_transform = Linear(hidden_features, hidden_features, rng=rng)
            self.context = Parameter(init.normal((hidden_features, 1), rng, std=0.1))
        elif kind == "recursive":
            self.score = Linear(2 * hidden_features, 1, rng=rng)

    def forward(self, blocks: Sequence[Tensor]) -> Tensor:
        """Fuse ``[X^(0), X_G1, …, X_Gk]`` (each ``(n, f)``) into ``(n, hidden)``."""
        if len(blocks) != self.num_blocks:
            raise ValueError(
                f"expected {self.num_blocks} blocks, got {len(blocks)}"
            )
        if self.kind == "none":
            # Ablation: average the raw blocks and use a single shared
            # projection — no per-operator weighting at all.
            total = blocks[0]
            for block in blocks[1:]:
                total = total + block
            return self.dropout(self.projections[0](total * (1.0 / len(blocks))))
        projected = [
            self.dropout(projection(block))
            for projection, block in zip(self.projections, blocks)
        ]
        if self.kind == "jk":
            return self.fuse(concatenate(projected, axis=1))
        if self.kind == "original":
            scores = [self.score(block.tanh()) for block in projected]  # each (n, 1)
            return self._softmax_combine(projected, scores)
        if self.kind == "gate":
            scores = [self.gate_transform(block).tanh() @ self.context for block in projected]
            return self._softmax_combine(projected, scores)
        # recursive: score each block against the running aggregate.
        aggregate = projected[0]
        outputs = [projected[0]]
        scores = [self.score(concatenate([projected[0], projected[0]], axis=1))]
        for block in projected[1:]:
            scores.append(self.score(concatenate([block, aggregate], axis=1)))
            aggregate = aggregate + block
            outputs.append(block)
        return self._softmax_combine(outputs, scores)

    @staticmethod
    def _softmax_combine(blocks: List[Tensor], scores: List[Tensor]) -> Tensor:
        """Weight blocks with a per-node softmax over the score list."""
        stacked_scores = concatenate(scores, axis=1)  # (n, num_blocks)
        weights = stacked_scores.leaky_relu(0.2).softmax(axis=1)
        result = None
        for index, block in enumerate(blocks):
            weight = weights[:, index : index + 1]
            term = block * weight
            result = term if result is None else result + term
        return result


class HopAttention(Module):
    """Node-wise hop attention (level 2, Eq. 11).

    Computes per-node, per-hop weights ``W_hop^(l) = softmax_l(δ(E^(l)))``
    from the concatenation of all hop representations and returns the
    weighted sum ``X* = Σ_l W_hop^(l) X̄^(l)``.
    """

    def __init__(
        self,
        hidden_features: int,
        num_hops: int,
        kind: str = "softmax",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if kind not in HOP_ATTENTION_KINDS:
            raise ValueError(f"unknown hop attention kind {kind!r}; expected one of {HOP_ATTENTION_KINDS}")
        rng = rng if rng is not None else np.random.default_rng()
        self.kind = kind
        self.num_hops = num_hops
        if kind == "softmax":
            self.summary = Linear(num_hops * hidden_features, hidden_features, rng=rng)
            self.score = Linear(2 * hidden_features, 1, rng=rng)

    def forward(self, hops: Sequence[Tensor]) -> Tensor:
        """Fuse the K per-step representations (each ``(n, hidden)``)."""
        if len(hops) != self.num_hops:
            raise ValueError(f"expected {self.num_hops} hop representations, got {len(hops)}")
        if self.kind == "none":
            return hops[-1]
        if self.kind == "mean":
            total = hops[0]
            for hop in hops[1:]:
                total = total + hop
            return total * (1.0 / len(hops))
        summary = self.summary(concatenate(list(hops), axis=1)).tanh()  # E_i, (n, hidden)
        scores = [self.score(concatenate([hop, summary], axis=1)) for hop in hops]
        stacked_scores = concatenate(scores, axis=1)  # (n, K)
        weights = stacked_scores.leaky_relu(0.2).softmax(axis=1)
        result = None
        for index, hop in enumerate(hops):
            term = hop * weights[:, index : index + 1]
            result = term if result is None else result + term
        return result

    def attention_weights(self, hops: Sequence[Tensor]) -> np.ndarray:
        """Return the per-node hop weights (useful for analysis plots)."""
        if self.kind != "softmax":
            uniform = np.full((hops[0].shape[0], len(hops)), 1.0 / len(hops))
            return uniform
        summary = self.summary(concatenate(list(hops), axis=1)).tanh()
        scores = [self.score(concatenate([hop, summary], axis=1)) for hop in hops]
        stacked_scores = concatenate(scores, axis=1)
        return stacked_scores.leaky_relu(0.2).softmax(axis=1).numpy()
