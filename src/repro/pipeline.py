"""End-to-end AMUD → model-selection → training pipeline (paper Fig. 1).

The workflow the paper proposes for a *newly collected* natural digraph:

1. run AMUD on the directed data;
2. if the guidance says "undirected" (Paradigm I), transform the graph and
   train a state-of-the-art *undirected* GNN;
3. if it says "directed" (Paradigm II), keep the digraph and train a
   *directed* GNN;
4. ADPA is a valid choice for either branch.

:class:`AmudPipeline` packages those steps behind ``fit`` / ``predict`` so
the examples and the Table V benchmark can exercise the whole loop in a few
lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from .amud.guidance import AmudDecision, apply_amud
from .graph.digraph import DirectedGraph
from .models.base import NodeClassifier
from .models.registry import create_model, get_spec
from .training.trainer import Trainer, TrainResult


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run."""

    decision: AmudDecision
    model_name: str
    train_result: TrainResult
    modeled_graph: DirectedGraph

    @property
    def test_accuracy(self) -> float:
        return self.train_result.test_accuracy


class AmudPipeline:
    """The Fig. 1 workflow: AMUD guidance, paradigm choice, training.

    Parameters
    ----------
    undirected_model / directed_model:
        Registry names of the models used for the two paradigms.  The
        defaults follow the paper's recommendation: a strong undirected
        GNN for AMUndirected output and ADPA for AMDirected output.
    threshold:
        AMUD decision threshold θ.
    trainer:
        Training configuration shared by both branches.
    model_kwargs:
        Optional per-branch constructor kwargs, keyed ``"undirected"`` /
        ``"directed"``.
    """

    def __init__(
        self,
        undirected_model: str = "GPRGNN",
        directed_model: str = "ADPA",
        threshold: float = 0.5,
        trainer: Optional[Trainer] = None,
        model_kwargs: Optional[Dict[str, Dict]] = None,
        seed: int = 0,
    ) -> None:
        # Validate the model names eagerly so configuration errors surface
        # at construction time rather than deep inside fit().
        get_spec(undirected_model)
        get_spec(directed_model)
        self.undirected_model = undirected_model
        self.directed_model = directed_model
        self.threshold = threshold
        self.trainer = trainer if trainer is not None else Trainer()
        self.model_kwargs = model_kwargs or {}
        self.seed = seed
        self._model: Optional[NodeClassifier] = None
        self._result: Optional[PipelineResult] = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, graph: DirectedGraph) -> PipelineResult:
        """Run AMUD, pick the paradigm, train the corresponding model."""
        modeled_graph, decision = apply_amud(graph, threshold=self.threshold)
        if decision.keep_directed:
            model_name = self.directed_model
            branch_kwargs = dict(self.model_kwargs.get("directed", {}))
        else:
            model_name = self.undirected_model
            branch_kwargs = dict(self.model_kwargs.get("undirected", {}))
        branch_kwargs.setdefault("seed", self.seed)
        model = create_model(model_name, modeled_graph, **branch_kwargs)
        train_result = self.trainer.fit(model, modeled_graph)
        self._model = model
        self._result = PipelineResult(
            decision=decision,
            model_name=get_spec(model_name).name,
            train_result=train_result,
            modeled_graph=modeled_graph,
        )
        return self._result

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._result is not None

    @property
    def result(self) -> PipelineResult:
        if self._result is None:
            raise RuntimeError("pipeline has not been fitted yet")
        return self._result

    def predict(self, graph: Optional[DirectedGraph] = None):
        """Predict node classes; defaults to the graph used during fit."""
        if self._model is None or self._result is None:
            raise RuntimeError("pipeline has not been fitted yet")
        target = graph if graph is not None else self._result.modeled_graph
        return self._model.predict(target)
