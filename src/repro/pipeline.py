"""End-to-end AMUD → model-selection → training pipeline (paper Fig. 1).

The workflow the paper proposes for a *newly collected* natural digraph:

1. run AMUD on the directed data;
2. if the guidance says "undirected" (Paradigm I), transform the graph and
   train a state-of-the-art *undirected* GNN;
3. if it says "directed" (Paradigm II), keep the digraph and train a
   *directed* GNN;
4. ADPA is a valid choice for either branch.

:class:`AmudPipeline` packages those steps behind ``fit`` / ``predict`` so
the examples and the Table V benchmark can exercise the whole loop in a few
lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

from .amud.guidance import AmudDecision, apply_amud
from .graph.digraph import DirectedGraph
from .models.base import NodeClassifier
from .models.registry import create_model, get_spec
from .training.trainer import Trainer, TrainResult


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run."""

    decision: AmudDecision
    model_name: str
    train_result: TrainResult
    modeled_graph: DirectedGraph

    @property
    def test_accuracy(self) -> float:
        return self.train_result.test_accuracy


class AmudPipeline:
    """The Fig. 1 workflow: AMUD guidance, paradigm choice, training.

    Parameters
    ----------
    undirected_model / directed_model:
        Registry names of the models used for the two paradigms.  The
        defaults follow the paper's recommendation: a strong undirected
        GNN for AMUndirected output and ADPA for AMDirected output.
    threshold:
        AMUD decision threshold θ.
    trainer:
        Training configuration shared by both branches.
    model_kwargs:
        Optional per-branch constructor kwargs, keyed ``"undirected"`` /
        ``"directed"``.
    """

    def __init__(
        self,
        undirected_model: str = "GPRGNN",
        directed_model: str = "ADPA",
        threshold: float = 0.5,
        trainer: Optional[Trainer] = None,
        model_kwargs: Optional[Dict[str, Dict]] = None,
        seed: int = 0,
    ) -> None:
        # Validate the model names eagerly so configuration errors surface
        # at construction time rather than deep inside fit().
        get_spec(undirected_model)
        get_spec(directed_model)
        self.undirected_model = undirected_model
        self.directed_model = directed_model
        self.threshold = threshold
        self.trainer = trainer if trainer is not None else Trainer()
        self.model_kwargs = model_kwargs or {}
        self.seed = seed
        self._model: Optional[NodeClassifier] = None
        self._result: Optional[PipelineResult] = None

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, graph: DirectedGraph) -> PipelineResult:
        """Run AMUD, pick the paradigm, train the corresponding model."""
        modeled_graph, decision = apply_amud(graph, threshold=self.threshold)
        if decision.keep_directed:
            model_name = self.directed_model
            branch_kwargs = dict(self.model_kwargs.get("directed", {}))
        else:
            model_name = self.undirected_model
            branch_kwargs = dict(self.model_kwargs.get("undirected", {}))
        branch_kwargs.setdefault("seed", self.seed)
        model = create_model(model_name, modeled_graph, **branch_kwargs)
        train_result = self.trainer.fit(model, modeled_graph)
        self._model = model
        self._result = PipelineResult(
            decision=decision,
            model_name=get_spec(model_name).name,
            train_result=train_result,
            modeled_graph=modeled_graph,
        )
        return self._result

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._result is not None

    @property
    def result(self) -> PipelineResult:
        if self._result is None:
            raise RuntimeError("pipeline has not been fitted yet")
        return self._result

    def predict(self, graph: Optional[DirectedGraph] = None):
        """Predict node classes; defaults to the graph used during fit."""
        if self._model is None or self._result is None:
            raise RuntimeError("pipeline has not been fitted yet")
        target = graph if graph is not None else self._result.modeled_graph
        return self._model.predict(target)

    # ------------------------------------------------------------------ #
    # Persistence (serving artifacts)
    # ------------------------------------------------------------------ #
    def save(self, directory: Union[str, Path]) -> Path:
        """Export the fitted pipeline as a self-contained serving artifact.

        The directory holds the trained model's weights, the AMUD decision
        and pipeline configuration (as artifact metadata) and the modeled
        graph, so :meth:`load` in a fresh process reproduces in-memory
        predictions exactly.
        """
        from .serving.artifacts import save_model

        if self._model is None or self._result is None:
            raise RuntimeError("pipeline has not been fitted yet")
        result = self._result
        decision = result.decision
        train = result.train_result
        metadata = {
            "kind": "amud-pipeline",
            "pipeline": {
                "undirected_model": self.undirected_model,
                "directed_model": self.directed_model,
                "threshold": self.threshold,
                "seed": self.seed,
                "model_kwargs": self.model_kwargs,
                "trainer": {
                    "lr": self.trainer.lr,
                    "weight_decay": self.trainer.weight_decay,
                    "epochs": self.trainer.epochs,
                    "patience": self.trainer.patience,
                    "optimizer": self.trainer.optimizer_name,
                },
            },
            "model_name": result.model_name,
            "decision": {
                "score": float(decision.score),
                "keep_directed": bool(decision.keep_directed),
                "threshold": float(decision.threshold),
                "r_squared": {k: float(v) for k, v in decision.r_squared.items()},
                "correlations": {k: float(v) for k, v in decision.correlations.items()},
            },
            "train_result": {
                "train_accuracy": float(train.train_accuracy),
                "val_accuracy": float(train.val_accuracy),
                "test_accuracy": float(train.test_accuracy),
                "best_epoch": int(train.best_epoch),
                "epochs_run": int(train.epochs_run),
            },
        }
        return save_model(
            self._model,
            directory,
            metadata=metadata,
            graph=result.modeled_graph,
        )

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "AmudPipeline":
        """Restore a pipeline saved with :meth:`save`, ready to predict."""
        from .serving.artifacts import load_artifact, load_artifact_graph

        artifact = load_artifact(directory)
        metadata = artifact.metadata
        if metadata.get("kind") != "amud-pipeline":
            raise ValueError(
                f"artifact at {directory} is not a pipeline export "
                f"(kind={metadata.get('kind')!r}); use repro.serving.restore_model"
            )
        graph = load_artifact_graph(directory)
        if graph is None:
            raise FileNotFoundError(f"pipeline artifact {directory} ships no graph.npz")

        config = metadata["pipeline"]
        trainer_config = config.get("trainer")
        pipeline = cls(
            undirected_model=config["undirected_model"],
            directed_model=config["directed_model"],
            threshold=config["threshold"],
            seed=config["seed"],
            trainer=Trainer(**trainer_config) if trainer_config else None,
            model_kwargs={
                branch: dict(kwargs)
                for branch, kwargs in config.get("model_kwargs", {}).items()
            },
        )
        model, _ = artifact.restore(graph)
        saved_decision = metadata["decision"]
        saved_train = metadata["train_result"]
        pipeline._model = model
        pipeline._result = PipelineResult(
            decision=AmudDecision(
                score=saved_decision["score"],
                keep_directed=saved_decision["keep_directed"],
                threshold=saved_decision["threshold"],
                r_squared=dict(saved_decision.get("r_squared", {})),
                correlations=dict(saved_decision.get("correlations", {})),
            ),
            model_name=metadata["model_name"],
            train_result=TrainResult(
                train_accuracy=saved_train["train_accuracy"],
                val_accuracy=saved_train["val_accuracy"],
                test_accuracy=saved_train["test_accuracy"],
                best_epoch=saved_train["best_epoch"],
                epochs_run=saved_train["epochs_run"],
            ),
            modeled_graph=graph,
        )
        return pipeline
