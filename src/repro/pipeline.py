"""Deprecated end-to-end pipeline — superseded by :mod:`repro.api`.

:class:`AmudPipeline` was the original facade over the paper's Fig. 1
workflow (AMUD guidance → paradigm choice → training).  It is now a thin
shim over :class:`repro.api.Session` / :class:`repro.api.GraphHandle`:
construction emits a :class:`DeprecationWarning`, ``fit`` delegates to the
typed handles, and results are repackaged into the legacy
:class:`PipelineResult` so existing call sites keep working bit-exactly.

New code should write::

    from repro.api import Session

    model = Session().load("chameleon").amud().fit()
    model.save("runs/chameleon")
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Union

from .amud.guidance import AmudDecision
from .graph.digraph import DirectedGraph
from .models.base import NodeClassifier
from .models.registry import get_spec
from .training.trainer import Trainer, TrainResult

_DEPRECATION_MESSAGE = (
    "AmudPipeline is deprecated; use repro.api.Session — e.g. "
    "Session().load(name).amud().fit() — which exposes the same workflow "
    "through typed handles and frozen configs"
)


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run."""

    decision: AmudDecision
    model_name: str
    train_result: TrainResult
    modeled_graph: DirectedGraph

    @property
    def test_accuracy(self) -> float:
        return self.train_result.test_accuracy


class AmudPipeline:
    """Deprecated: the Fig. 1 workflow, now a shim over :mod:`repro.api`.

    Parameters
    ----------
    undirected_model / directed_model:
        Registry names of the models used for the two paradigms.
    threshold:
        AMUD decision threshold θ.
    trainer:
        Training configuration shared by both branches.
    model_kwargs:
        Optional per-branch constructor kwargs, keyed ``"undirected"`` /
        ``"directed"``.
    """

    def __init__(
        self,
        undirected_model: str = "GPRGNN",
        directed_model: str = "ADPA",
        threshold: float = 0.5,
        trainer: Optional[Trainer] = None,
        model_kwargs: Optional[Dict[str, Dict]] = None,
        seed: int = 0,
    ) -> None:
        warnings.warn(_DEPRECATION_MESSAGE, DeprecationWarning, stacklevel=2)
        # Validate the model names eagerly so configuration errors surface
        # at construction time rather than deep inside fit().
        get_spec(undirected_model)
        get_spec(directed_model)
        self.undirected_model = undirected_model
        self.directed_model = directed_model
        self.threshold = threshold
        self.trainer = trainer if trainer is not None else Trainer()
        self.model_kwargs = model_kwargs or {}
        self.seed = seed
        self._model: Optional[NodeClassifier] = None
        self._result: Optional[PipelineResult] = None

    def _amud_config(self):
        from .api.config import AmudConfig

        return AmudConfig(
            threshold=self.threshold,
            undirected_model=self.undirected_model,
            directed_model=self.directed_model,
        )

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, graph: DirectedGraph) -> PipelineResult:
        """Run AMUD, pick the paradigm, train the corresponding model."""
        from .api.session import Session

        session = Session(seed=self.seed, amud=self._amud_config())
        guided = session.from_graph(graph).amud()
        branch = "directed" if guided.decision.keep_directed else "undirected"
        branch_kwargs = dict(self.model_kwargs.get(branch, {}))
        handle = guided.fit(train=self.trainer, **branch_kwargs)
        self._model = handle.model
        self._result = PipelineResult(
            decision=handle.decision,
            model_name=handle.model_name,
            train_result=handle.train_result,
            modeled_graph=handle.graph,
        )
        return self._result

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    @property
    def is_fitted(self) -> bool:
        return self._result is not None

    @property
    def result(self) -> PipelineResult:
        if self._result is None:
            raise RuntimeError("pipeline has not been fitted yet")
        return self._result

    def predict(self, graph: Optional[DirectedGraph] = None):
        """Predict node classes; defaults to the graph used during fit."""
        if self._model is None or self._result is None:
            raise RuntimeError("pipeline has not been fitted yet")
        target = graph if graph is not None else self._result.modeled_graph
        return self._model.predict(target)

    # ------------------------------------------------------------------ #
    # Persistence (serving artifacts)
    # ------------------------------------------------------------------ #
    def save(self, directory: Union[str, Path]) -> Path:
        """Export the fitted pipeline as a self-contained serving artifact.

        The directory holds the trained model's weights, the AMUD decision
        and pipeline configuration (as artifact metadata) and the modeled
        graph, so :meth:`load` in a fresh process reproduces in-memory
        predictions exactly.
        """
        from .api.session import decision_to_dict, train_result_to_dict
        from .serving.artifacts import save_model

        if self._model is None or self._result is None:
            raise RuntimeError("pipeline has not been fitted yet")
        result = self._result
        metadata = {
            "kind": "amud-pipeline",
            "pipeline": {
                "undirected_model": self.undirected_model,
                "directed_model": self.directed_model,
                "threshold": self.threshold,
                "seed": self.seed,
                "model_kwargs": self.model_kwargs,
                "trainer": {
                    "lr": self.trainer.lr,
                    "weight_decay": self.trainer.weight_decay,
                    "epochs": self.trainer.epochs,
                    "patience": self.trainer.patience,
                    "optimizer": self.trainer.optimizer_name,
                },
            },
            "model_name": result.model_name,
            "decision": decision_to_dict(result.decision),
            "train_result": train_result_to_dict(result.train_result),
        }
        return save_model(
            self._model,
            directory,
            metadata=metadata,
            graph=result.modeled_graph,
        )

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "AmudPipeline":
        """Restore a pipeline saved with :meth:`save`, ready to predict.

        Also accepts AMUD-guided artifacts written through :mod:`repro.api`
        (``ModelHandle.save`` / ``repro export``): those carry the decision
        and training summary but no pipeline config block, so the restored
        shim gets default hyper-parameters with the trained model slotted
        into the decided paradigm's branch.
        """
        from .api.session import ARTIFACT_KIND, decision_from_dict, train_result_from_dict
        from .serving.artifacts import load_artifact, load_artifact_graph

        artifact = load_artifact(directory)
        metadata = artifact.metadata
        kind = metadata.get("kind")
        if kind == "amud-pipeline":
            config = metadata["pipeline"]
        elif kind == ARTIFACT_KIND and "decision" in metadata:
            config = None
        else:
            raise ValueError(
                f"artifact at {directory} is not a pipeline or AMUD-guided "
                f"export (kind={kind!r}); use repro.api.Session.restore"
            )
        graph = load_artifact_graph(directory)
        if graph is None:
            raise FileNotFoundError(f"pipeline artifact {directory} ships no graph.npz")

        decision = decision_from_dict(metadata["decision"])
        if config is not None:
            trainer_config = config.get("trainer")
            pipeline = cls(
                undirected_model=config["undirected_model"],
                directed_model=config["directed_model"],
                threshold=config["threshold"],
                seed=config["seed"],
                trainer=Trainer(**trainer_config) if trainer_config else None,
                model_kwargs={
                    branch: dict(kwargs)
                    for branch, kwargs in config.get("model_kwargs", {}).items()
                },
            )
        else:
            branch = "directed_model" if decision.keep_directed else "undirected_model"
            pipeline = cls(threshold=decision.threshold, **{branch: artifact.model_name})
        model, _ = artifact.restore(graph)
        pipeline._model = model
        pipeline._result = PipelineResult(
            decision=decision,
            model_name=metadata.get("model_name", artifact.model_name),
            train_result=train_result_from_dict(metadata["train_result"]),
            modeled_graph=graph,
        )
        return pipeline
