"""Retired: ``AmudPipeline`` has been removed — use :mod:`repro.api`.

The original end-to-end facade was deprecated in favour of
:class:`repro.api.Session` (PR 3) and served one release as a warning
shim; the shim is now gone.  Importing this module raises immediately with
a pointer to the replacement, so stale call sites fail loudly at import
time instead of drifting on emulated behaviour::

    from repro.api import Session

    model = Session().load("chameleon").amud().fit()   # was: AmudPipeline().fit(...)
    model.save("runs/chameleon")                       # was: pipeline.save(...)
    restored = Session().restore("runs/chameleon")     # was: AmudPipeline.load(...)

Artifacts written by the old ``AmudPipeline.save`` remain loadable —
:meth:`repro.api.Session.restore` reads them unchanged.
"""

raise ImportError(
    "repro.pipeline.AmudPipeline has been removed; use repro.api.Session "
    "instead — e.g. Session().load(name).amud().fit() to train, "
    "handle.save(dir) to export, and Session().restore(dir) to reload "
    "(old AmudPipeline artifacts restore unchanged)"
)
