"""Dataset registry helpers mirroring the paper's dataset groupings.

Table III evaluates on the AMUndirected (Score < 0.5) datasets, Table IV on
the AMDirected (Score > 0.5) ones, and Table V focuses on the four
"abnormal" datasets whose classic homophily label disagrees with the AMUD
regime.  The helpers here return those groups by name so benchmarks can
iterate over exactly the datasets each table uses.
"""

from __future__ import annotations

from typing import Dict, List

from ..graph.digraph import DirectedGraph
from .synthetic import DATASET_CONFIGS, DatasetConfig, dataset_config, load_dataset

#: Datasets appearing in Table III (AMUndirected regime).
TABLE3_DATASETS = ("coraml", "citeseer", "pubmed", "tolokers", "wikics", "amazon-computers")

#: Datasets appearing in Table IV (AMDirected regime).
TABLE4_DATASETS = ("texas", "cornell", "wisconsin", "chameleon", "squirrel", "roman-empire")

#: The "abnormal" datasets of Table V plus ogbn-arxiv, as in the paper.
TABLE5_DATASETS = ("actor", "amazon-rating", "ogbn-arxiv", "genius")

#: Datasets used in the Fig. 2 motivating observations.
FIGURE2_DATASETS = ("coraml", "chameleon", "citeseer", "squirrel")


def list_datasets() -> List[str]:
    """All registered dataset names."""
    return sorted(DATASET_CONFIGS)


def homophilous_datasets() -> List[str]:
    """Datasets whose AMUD regime is undirected (Score < 0.5)."""
    return [name for name, config in DATASET_CONFIGS.items() if config.amud_regime == "undirected"]


def heterophilous_datasets() -> List[str]:
    """Datasets whose AMUD regime is directed (Score > 0.5)."""
    return [name for name, config in DATASET_CONFIGS.items() if config.amud_regime == "directed"]


def load_group(names, seed: int = 0) -> Dict[str, DirectedGraph]:
    """Load several datasets into a name -> graph dict."""
    return {name: load_dataset(name, seed=seed) for name in names}
