"""Calibrated synthetic stand-ins for the paper's 16 benchmark datasets."""

from .registry import (
    FIGURE2_DATASETS,
    TABLE3_DATASETS,
    TABLE4_DATASETS,
    TABLE5_DATASETS,
    heterophilous_datasets,
    homophilous_datasets,
    list_datasets,
    load_group,
)
from .synthetic import DATASET_CONFIGS, DatasetConfig, dataset_config, load_dataset

__all__ = [
    "DatasetConfig",
    "DATASET_CONFIGS",
    "dataset_config",
    "load_dataset",
    "list_datasets",
    "homophilous_datasets",
    "heterophilous_datasets",
    "load_group",
    "TABLE3_DATASETS",
    "TABLE4_DATASETS",
    "TABLE5_DATASETS",
    "FIGURE2_DATASETS",
]
