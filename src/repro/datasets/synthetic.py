"""Synthetic, calibrated stand-ins for the paper's 16 benchmark datasets.

The public benchmarks are unavailable offline, so each dataset in Table II
is replaced by a directed stochastic block model whose generator parameters
are calibrated to the statistics the paper's analysis depends on:

* edge homophily (``homophily``) matches the paper's reported E.Homo;
* the AMUD regime (AMUndirected vs AMDirected) is reproduced through the
  ``directional_asymmetry`` knob — datasets the paper flags as AMDirected
  get strong cyclic directional structure, AMUndirected datasets get weak
  or no directional structure;
* node / class counts and split conventions follow Table II, scaled down
  (capped at a few thousand nodes, feature dimensionality capped at 128)
  so that the entire benchmark suite trains on a laptop CPU in minutes.

The scale reduction is a documented substitution (see DESIGN.md §2): the
paper's claims are about topological statistics and relative model
ordering, both of which are preserved under proportional scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..graph.digraph import DirectedGraph
from ..graph.generators import DSBMConfig, directed_sbm
from ..graph.splits import per_class_split, ratio_split


@dataclass(frozen=True)
class DatasetConfig:
    """Calibration recipe for one synthetic benchmark stand-in."""

    name: str
    num_nodes: int
    num_classes: int
    feature_dim: int
    avg_degree: float
    homophily: float
    directional_asymmetry: float
    feature_signal: float = 1.0
    class_imbalance: float = 0.0
    asymmetry_mode: str = "cyclic"
    #: "per_class" (planetoid-style) or "ratio"
    split: str = "ratio"
    split_params: Tuple[float, ...] = (0.48, 0.32)
    #: the paper's reported regime, used by the registry helpers
    amud_regime: str = "undirected"
    description: str = ""

    def build(self, seed: int = 0) -> DirectedGraph:
        """Generate and split the dataset deterministically."""
        config = DSBMConfig(
            num_nodes=self.num_nodes,
            num_classes=self.num_classes,
            avg_degree=self.avg_degree,
            feature_dim=self.feature_dim,
            homophily=self.homophily,
            directional_asymmetry=self.directional_asymmetry,
            feature_signal=self.feature_signal,
            class_imbalance=self.class_imbalance,
            asymmetry_mode=self.asymmetry_mode,
            name=self.name,
        )
        graph = directed_sbm(config, seed=seed)
        graph.meta["amud_regime"] = self.amud_regime
        graph.meta["description"] = self.description
        if self.split == "per_class":
            train_per_class, num_val = int(self.split_params[0]), int(self.split_params[1])
            return per_class_split(graph, train_per_class=train_per_class, num_val=num_val, seed=seed)
        train_ratio, val_ratio = self.split_params
        return ratio_split(graph, train_ratio=train_ratio, val_ratio=val_ratio, seed=seed)


# --------------------------------------------------------------------------- #
# Calibrated configurations, one per row of Table II.
#
# Node counts are scaled down for the large datasets (originals in comments);
# homophily targets the paper's E.Homo column; directional_asymmetry encodes
# the AMUD regime (low → AMUndirected score < 0.5, high → AMDirected > 0.5).
# --------------------------------------------------------------------------- #
DATASET_CONFIGS: Dict[str, DatasetConfig] = {
    config.name: config
    for config in [
        # ----- homophilous / AMUndirected (Table III) -----
        DatasetConfig(
            name="coraml",  # paper: 2,995 nodes
            num_nodes=1200, num_classes=7, feature_dim=96, avg_degree=3.0,
            homophily=0.79, directional_asymmetry=0.10, feature_signal=0.15,
            split="per_class", split_params=(20, 300),
            amud_regime="undirected", description="citation network",
        ),
        DatasetConfig(
            name="citeseer",  # paper: 3,312 nodes
            num_nodes=1100, num_classes=6, feature_dim=96, avg_degree=1.8,
            homophily=0.74, directional_asymmetry=0.08, feature_signal=0.12,
            split="per_class", split_params=(20, 300),
            amud_regime="undirected", description="citation network",
        ),
        DatasetConfig(
            name="pubmed",  # paper: 19,717 nodes
            num_nodes=1500, num_classes=3, feature_dim=64, avg_degree=4.5,
            homophily=0.80, directional_asymmetry=0.0, feature_signal=0.15,
            split="per_class", split_params=(20, 300),
            amud_regime="undirected", description="citation network (naturally undirected)",
        ),
        DatasetConfig(
            name="tolokers",  # paper: 11,758 nodes
            num_nodes=1000, num_classes=2, feature_dim=10, avg_degree=20.0,
            homophily=0.60, directional_asymmetry=0.15, feature_signal=0.12,
            split="ratio", split_params=(0.5, 0.25),
            amud_regime="undirected", description="crowd-sourcing network",
        ),
        DatasetConfig(
            name="wikics",  # paper: 11,701 nodes
            num_nodes=1200, num_classes=10, feature_dim=96, avg_degree=12.0,
            homophily=0.69, directional_asymmetry=0.12, feature_signal=0.15,
            split="ratio", split_params=(0.1, 0.2),
            amud_regime="undirected", description="web-link network",
        ),
        DatasetConfig(
            name="amazon-computers",  # paper: 13,752 nodes
            num_nodes=1300, num_classes=10, feature_dim=96, avg_degree=10.0,
            homophily=0.79, directional_asymmetry=0.10, feature_signal=0.18,
            split="per_class", split_params=(20, 300),
            amud_regime="undirected", description="co-purchase network",
        ),
        DatasetConfig(
            name="ogbn-arxiv",  # paper: 169,343 nodes
            num_nodes=2000, num_classes=20, feature_dim=96, avg_degree=7.0,
            homophily=0.65, directional_asymmetry=0.25, feature_signal=0.15,
            split="ratio", split_params=(0.54, 0.18),
            amud_regime="undirected", description="citation network (scaled down)",
        ),
        # ----- heterophilous / AMDirected (Table IV) -----
        DatasetConfig(
            name="genius",  # paper: 421,961 nodes; homophilous yet AMDirected
            num_nodes=1800, num_classes=2, feature_dim=12, avg_degree=2.5,
            homophily=0.62, directional_asymmetry=0.95, feature_signal=0.20,
            asymmetry_mode="hierarchy",
            split="ratio", split_params=(0.5, 0.25),
            amud_regime="directed", description="social network",
        ),
        DatasetConfig(
            name="texas",
            num_nodes=183, num_classes=5, feature_dim=96, avg_degree=1.6,
            homophily=0.06, directional_asymmetry=0.92, feature_signal=0.30,
            class_imbalance=0.5,
            split="ratio", split_params=(0.48, 0.32),
            amud_regime="directed", description="web-page network (WebKB)",
        ),
        DatasetConfig(
            name="cornell",
            num_nodes=183, num_classes=5, feature_dim=96, avg_degree=1.7,
            homophily=0.12, directional_asymmetry=0.88, feature_signal=0.30,
            class_imbalance=0.5,
            split="ratio", split_params=(0.48, 0.32),
            amud_regime="directed", description="web-page network (WebKB)",
        ),
        DatasetConfig(
            name="wisconsin",
            num_nodes=251, num_classes=5, feature_dim=96, avg_degree=1.8,
            homophily=0.18, directional_asymmetry=0.85, feature_signal=0.30,
            class_imbalance=0.5,
            split="ratio", split_params=(0.48, 0.32),
            amud_regime="directed", description="web-page network (WebKB)",
        ),
        DatasetConfig(
            name="chameleon",
            num_nodes=890, num_classes=5, feature_dim=96, avg_degree=8.0,
            homophily=0.25, directional_asymmetry=0.85, feature_signal=0.10,
            split="ratio", split_params=(0.48, 0.32),
            amud_regime="directed", description="wiki-page network (filtered)",
        ),
        DatasetConfig(
            name="squirrel",
            num_nodes=1200, num_classes=5, feature_dim=96, avg_degree=10.0,
            homophily=0.22, directional_asymmetry=0.88, feature_signal=0.08,
            split="ratio", split_params=(0.48, 0.32),
            amud_regime="directed", description="wiki-page network (filtered)",
        ),
        DatasetConfig(
            name="roman-empire",  # paper: 22,662 nodes
            num_nodes=1600, num_classes=10, feature_dim=96, avg_degree=1.5,
            homophily=0.05, directional_asymmetry=0.92, feature_signal=0.25,
            split="ratio", split_params=(0.5, 0.25),
            amud_regime="directed", description="article syntax network (scaled down)",
        ),
        # ----- heterophilous yet AMUndirected (Table V "abnormal" cases) -----
        DatasetConfig(
            name="actor",
            num_nodes=1400, num_classes=5, feature_dim=96, avg_degree=3.5,
            homophily=0.22, directional_asymmetry=0.05, feature_signal=0.35,
            split="ratio", split_params=(0.48, 0.32),
            amud_regime="undirected", description="actor co-occurrence network",
        ),
        DatasetConfig(
            name="amazon-rating",  # paper: 24,492 nodes
            num_nodes=1500, num_classes=5, feature_dim=96, avg_degree=3.8,
            homophily=0.38, directional_asymmetry=0.05, feature_signal=0.30,
            split="ratio", split_params=(0.5, 0.25),
            amud_regime="undirected", description="rating network (scaled down)",
        ),
    ]
}


def load_dataset(name: str, seed: int = 0) -> DirectedGraph:
    """Build the calibrated synthetic stand-in for a named benchmark."""
    key = name.lower()
    if key not in DATASET_CONFIGS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_CONFIGS)}")
    return DATASET_CONFIGS[key].build(seed=seed)


def dataset_config(name: str) -> DatasetConfig:
    key = name.lower()
    if key not in DATASET_CONFIGS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASET_CONFIGS)}")
    return DATASET_CONFIGS[key]
