"""Compatibility surface: the stats protocol now lives in :mod:`repro.obs`.

The ``Stats``/``StatsSource`` snapshot contract grew beyond serving — the
observability layer (histograms, trace spans, Prometheus exposition) is
built on it — so the implementation moved to :mod:`repro.obs.stats`.  This
module keeps every existing ``from repro.serving.stats import ...`` site
working unchanged.
"""

from __future__ import annotations

from ..obs.stats import FLOAT_DIGITS, Stats, StatsSource

__all__ = ["Stats", "StatsSource", "FLOAT_DIGITS"]
