"""Versioned on-disk artifacts for trained models.

An artifact is a directory:

``artifact.json``
    Format version, registry model name, constructor kwargs, input/output
    dimensions and free-form metadata (AMUD decision, training summary,
    pipeline configuration, …).
``weights.npz``
    The model's full state dict — parameters *and* buffers (batch-norm
    running statistics) — stored uncompressed-dtype-exact, so a reload is
    bit-identical.
``graph.npz`` (optional)
    The modeled graph the weights were trained on, written with
    :func:`repro.graph.io.save_graph`.  Shipping the graph makes an artifact
    self-contained: ``repro predict <dir>`` needs nothing else.

Restoring is a three-step dance dictated by the lazily-built models (ADPA
constructs its attention modules inside ``preprocess`` once the operator
count is known): construct from the registry, run ``preprocess`` on the
target graph, then overwrite every parameter with the stored state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.io import load_graph, save_graph
from ..models.base import NodeClassifier
from ..models.registry import get_spec
from .fingerprint import model_fingerprint

PathLike = Union[str, Path]

#: bumped whenever the directory layout or json schema changes.
FORMAT_VERSION = 1

ARTIFACT_FILE = "artifact.json"
WEIGHTS_FILE = "weights.npz"
GRAPH_FILE = "graph.npz"


def _json_default(value):
    """Make numpy scalars/arrays and other strays JSON-serialisable."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return repr(value)


@dataclass
class ModelArtifact:
    """In-memory form of a saved model directory."""

    model_name: str
    model_kwargs: Dict
    num_features: int
    num_classes: int
    state: Dict[str, np.ndarray]
    metadata: Dict = field(default_factory=dict)
    format_version: int = FORMAT_VERSION

    @property
    def fingerprint(self) -> str:
        """Configuration fingerprint (weights excluded) for cache keying."""
        return model_fingerprint(self.model_name, self.model_kwargs)

    def build_model(self) -> NodeClassifier:
        """Construct the (untrained) model this artifact describes."""
        spec = get_spec(self.model_name)
        model = spec.constructor(
            num_features=self.num_features,
            num_classes=self.num_classes,
            **self.model_kwargs,
        )
        model._registry_name = spec.name
        model._init_kwargs = dict(self.model_kwargs)
        return model

    def restore(
        self, graph: DirectedGraph, operator_cache=None
    ) -> Tuple[NodeClassifier, Dict[str, object]]:
        """Build the model, preprocess ``graph`` and load the stored weights.

        Returns ``(model, cache)`` ready for ``model.forward(cache)``; the
        preprocess happens *before* the weight load so lazily-built modules
        exist when their parameters are restored.  ``operator_cache`` (a
        :class:`repro.serving.cache.OperatorCache`) routes the preprocess
        through a shared cache: on a hit — another shard of the same
        configuration, or a directory warmed from an on-disk spill — the
        whole precomputation is skipped and ``bind_cache`` rebuilds any
        lazily-constructed modules from the cached result instead.
        """
        model = self.build_model()
        if operator_cache is None:
            cache = model.preprocess(graph)
        else:
            cache = operator_cache.preprocess(model, graph)
        model.bind_cache(cache)
        model.load_state_dict(self.state)
        # From here on, any lazy module rebuild would discard the loaded
        # weights; models with shape-dependent lazy construction check this
        # flag and raise instead of silently reinitialising.
        model.architecture_frozen = True
        model.eval()
        return model, cache


def _resolve_export_config(
    model: NodeClassifier,
    model_name: Optional[str],
    model_kwargs: Optional[Dict],
) -> Tuple[str, Dict]:
    """Work out (registry name, constructor kwargs) for ``model``.

    Models created through :func:`repro.models.registry.create_model` carry
    both on the instance; hand-constructed models must pass them explicitly.
    """
    name = model_name if model_name is not None else getattr(model, "_registry_name", None)
    if name is None:
        raise ValueError(
            "cannot infer the registry name of a hand-constructed model; "
            "pass model_name= (and model_kwargs=) to save_model()"
        )
    get_spec(name)  # fail fast on unknown names
    kwargs = model_kwargs if model_kwargs is not None else getattr(model, "_init_kwargs", {})
    # Strict round-trip through JSON (no repr fallback) so a kwarg that
    # cannot be reconstructed fails at save time, not at load time on
    # another machine.
    try:
        kwargs = json.loads(json.dumps(dict(kwargs)))
    except TypeError as error:
        raise ValueError(
            f"model kwargs are not JSON-serialisable and cannot be exported: {error}"
        ) from None
    return name, kwargs


def save_model(
    model: NodeClassifier,
    directory: PathLike,
    *,
    model_name: Optional[str] = None,
    model_kwargs: Optional[Dict] = None,
    metadata: Optional[Dict] = None,
    graph: Optional[DirectedGraph] = None,
) -> Path:
    """Write ``model`` (and optionally its graph) as an artifact directory."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    name, kwargs = _resolve_export_config(model, model_name, model_kwargs)

    state = model.state_dict()
    np.savez(directory / WEIGHTS_FILE, **state)

    manifest = {
        "format_version": FORMAT_VERSION,
        "model": {
            "name": name,
            "kwargs": kwargs,
            "num_features": model.num_features,
            "num_classes": model.num_classes,
            "fingerprint": model_fingerprint(name, kwargs),
            "num_parameters": model.num_parameters(),
        },
        "metadata": metadata or {},
    }
    (directory / ARTIFACT_FILE).write_text(
        json.dumps(manifest, indent=2, sort_keys=True, default=_json_default)
    )
    if graph is not None:
        save_graph(graph, directory / GRAPH_FILE)
    return directory


def load_artifact(directory: PathLike) -> ModelArtifact:
    """Read an artifact directory back into a :class:`ModelArtifact`."""
    directory = Path(directory)
    manifest_path = directory / ARTIFACT_FILE
    if not manifest_path.exists():
        raise FileNotFoundError(f"no {ARTIFACT_FILE} in {directory}")
    manifest = json.loads(manifest_path.read_text())
    version = int(manifest.get("format_version", -1))
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported artifact version {version}; expected {FORMAT_VERSION}")

    with np.load(directory / WEIGHTS_FILE, allow_pickle=False) as data:
        state = {key: data[key].copy() for key in data.files}

    model_info = manifest["model"]
    return ModelArtifact(
        model_name=model_info["name"],
        model_kwargs=dict(model_info.get("kwargs", {})),
        num_features=int(model_info["num_features"]),
        num_classes=int(model_info["num_classes"]),
        state=state,
        metadata=dict(manifest.get("metadata", {})),
        format_version=version,
    )


def load_artifact_graph(directory: PathLike) -> Optional[DirectedGraph]:
    """Load the graph shipped with an artifact, or ``None`` if absent."""
    path = Path(directory) / GRAPH_FILE
    return load_graph(path) if path.exists() else None


def restore_model(
    directory: PathLike,
    graph: Optional[DirectedGraph] = None,
    operator_cache=None,
) -> Tuple[NodeClassifier, Dict[str, object], ModelArtifact, DirectedGraph]:
    """One-call reload: artifact + graph + preprocess + weights.

    ``graph`` defaults to the graph stored inside the artifact; passing a
    different graph serves the same weights against new data (the preprocess
    is recomputed for it, and models with shape-dependent lazy construction
    raise if the new graph is architecturally incompatible).
    ``operator_cache`` is forwarded to :meth:`ModelArtifact.restore` so a
    warm shared cache skips the preprocess entirely.  Returns
    ``(model, cache, artifact, graph)`` with the graph actually used.
    """
    artifact = load_artifact(directory)
    if graph is None:
        graph = load_artifact_graph(directory)
        if graph is None:
            raise FileNotFoundError(
                f"artifact {directory} ships no {GRAPH_FILE}; pass a graph explicitly"
            )
    model, cache = artifact.restore(graph, operator_cache=operator_cache)
    return model, cache, artifact, graph
