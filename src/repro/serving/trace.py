"""Traced, grad-free inference kernels: record one forward, replay many.

The serving hot path used to execute the training-time autograd graph on
every cache-miss forward — each op paying Python dispatch, Tensor
construction and a closure-chained backward tape it never uses.  This
module removes all of that with the record-once/replay-many idiom:

1. **Record** — :func:`compile_forward` installs a thread-local
   :class:`TraceRecorder` (see :func:`repro.nn.tensor.set_active_tracer`)
   and runs one ordinary eager forward.  Every Tensor-producing op reports
   ``(out, op, parents, attrs)``, yielding a flat topological program.
2. **Classify leaves** — each non-recorded parent is a trained parameter
   (matched against ``model.named_parameters()``), a preprocess-cache
   array (matched by identity into the cache structure, so it can be
   re-bound by path after a spill), or a literal constant.
3. **Constant-fold** — under the serving default ``fold="all"`` the frozen
   weights *and* the frozen graph operators are folded into the program:
   any step whose inputs are all constants adopts its eagerly-computed
   value (bit-identical by construction) and disappears.  ``"weights"``
   folds only parameters, ``"none"`` keeps both as re-bindable inputs.
4. **Fuse** — adjacent single-consumer elementwise steps collapse into one
   fused step whose intermediate value lives in a register instead of the
   program environment.  The same numpy kernels run in the same order, so
   fusion cannot change a single bit.
5. **Validate** — the program is replayed once against the traced eager
   logits; anything short of ``np.array_equal`` (e.g. a nondeterministic
   forward) raises :class:`TraceError` and the engine falls back to eager.

Programs are keyed like the operator cache — ``model signature × graph
fingerprint`` (:func:`repro.fingerprint.preprocess_key`) — and carry the
``weights_version`` they were traced under, so a weight hot-swap triggers
a recompile rather than stale logits.  :class:`TraceCache` stores them in
an LRU beside the :class:`repro.serving.cache.OperatorCache`, with the
same ``.npz`` ``spill()``/``warm()`` round trip so compiled programs
survive across processes.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..fingerprint import preprocess_key, state_fingerprint
from ..graph.digraph import DirectedGraph
from ..nn.tensor import Tensor, _as_array, set_active_tracer
from .cache import (
    _SPILL_META,
    _WARM_ERRORS,
    SPILL_FORMAT_VERSION,
    CacheStats,
    LRUCache,
    _atomic_savez,
    _decode,
    _encode,
    _spill_filename,
)
from .stats import StatsSource

PathLike = Union[str, Path]

#: the engine's compile policies: ``auto`` traces and remembers failures,
#: ``trace`` always retries, ``eager`` never compiles.
COMPILE_MODES = ("auto", "eager", "trace")

#: which leaves become constants: the serving default folds everything.
FOLD_MODES = ("all", "weights", "none")

#: default number of compiled programs kept in memory.
DEFAULT_TRACE_CAPACITY = 32


class TraceError(RuntimeError):
    """A forward pass could not be traced (or a program failed to replay).

    The serving layer treats this as a *soft* failure: the request is
    answered through the ordinary eager path and the failure is counted in
    the trace-cache stats.
    """


# ---------------------------------------------------------------------- #
# Replay kernels
# ---------------------------------------------------------------------- #
# One kernel per traced op, mirroring the exact numpy expression of the
# eager implementation in repro.nn.tensor — same functions, same order —
# which is what makes replayed logits bit-identical to eager ones.

def _k_softmax(i: Sequence[np.ndarray], a: Dict[str, Any]) -> np.ndarray:
    axis = a["axis"]
    shifted = i[0] - i[0].max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def _k_log_softmax(i: Sequence[np.ndarray], a: Dict[str, Any]) -> np.ndarray:
    axis = a["axis"]
    shifted = i[0] - i[0].max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def _k_elu(i: Sequence[np.ndarray], a: Dict[str, Any]) -> np.ndarray:
    x = i[0]
    return np.where(x > 0, x, a["alpha"] * (np.exp(np.minimum(x, 0.0)) - 1.0))


_KERNELS: Dict[str, Callable[[Sequence[np.ndarray], Dict[str, Any]], np.ndarray]] = {
    "add": lambda i, a: i[0] + i[1],
    "neg": lambda i, a: -i[0],
    "mul": lambda i, a: i[0] * i[1],
    "div": lambda i, a: i[0] / i[1],
    "pow": lambda i, a: i[0] ** a["exponent"],
    "matmul": lambda i, a: i[0] @ i[1],
    "transpose": lambda i, a: i[0].T,
    "reshape": lambda i, a: i[0].reshape(*a["shape"]),
    "getitem": lambda i, a: i[0][a["index"]],
    "sum": lambda i, a: i[0].sum(axis=a["axis"], keepdims=a["keepdims"]),
    "max": lambda i, a: i[0].max(axis=a["axis"], keepdims=a["keepdims"]),
    "exp": lambda i, a: np.exp(i[0]),
    "log": lambda i, a: np.log(i[0]),
    "abs": lambda i, a: np.abs(i[0]),
    "relu": lambda i, a: i[0] * (i[0] > 0),
    "leaky_relu": lambda i, a: i[0] * np.where(i[0] > 0, 1.0, a["negative_slope"]),
    "sigmoid": lambda i, a: 1.0 / (1.0 + np.exp(-i[0])),
    "tanh": lambda i, a: np.tanh(i[0]),
    "softmax": _k_softmax,
    "log_softmax": _k_log_softmax,
    "elu": _k_elu,
    "where": lambda i, a: np.where(a["condition"], i[0], i[1]),
    "sparse_matmul": lambda i, a: a["matrix"] @ i[0],
    "concatenate": lambda i, a: np.concatenate(list(i), axis=a["axis"]),
    "stack": lambda i, a: np.stack(list(i), axis=a["axis"]),
}

#: ops a fusion chain may *continue* with (shape-compatible elementwise).
_FUSIBLE = frozenset(
    {
        "add", "neg", "mul", "div", "pow", "exp", "log", "abs",
        "relu", "leaky_relu", "sigmoid", "tanh", "elu", "where",
    }
)


# ---------------------------------------------------------------------- #
# Recording
# ---------------------------------------------------------------------- #
class TraceRecorder:
    """Observes every Tensor an eager forward creates on this thread.

    Strong references to every recorded tensor (and its parents) are kept
    for the recorder's lifetime: intermediate no-grad tensors hold no
    parent links, so without the keepalive they could be collected
    mid-forward and their ``id()`` recycled onto a later tensor, silently
    corrupting the recorded dataflow.
    """

    __slots__ = ("nodes", "records", "keepalive")

    def __init__(self) -> None:
        #: flat topological program: (tensor, op, parents, attrs) per step.
        self.nodes: List[Tuple[Tensor, str, Tuple[Tensor, ...], Dict[str, Any]]] = []
        #: id(tensor) -> index into :attr:`nodes`.
        self.records: Dict[int, int] = {}
        self.keepalive: List[Tensor] = []

    def record(
        self,
        out: Tensor,
        op: Optional[str],
        parents: Sequence[Tensor],
        attrs: Dict[str, Any],
    ) -> None:
        if op is None:
            raise TraceError(
                "operation recorded without trace metadata (op=None); the op "
                "bypassed the instrumented Tensor constructors and cannot be replayed"
            )
        self.keepalive.append(out)
        self.keepalive.extend(parents)
        self.records[id(out)] = len(self.nodes)
        self.nodes.append((out, op, tuple(parents), dict(attrs)))

    def index_of_data(self, array: np.ndarray) -> Optional[int]:
        """The last recorded node whose output array *is* ``array``."""
        for index in range(len(self.nodes) - 1, -1, -1):
            if self.nodes[index][0].data is array:
                return index
        return None


# ---------------------------------------------------------------------- #
# Input binding
# ---------------------------------------------------------------------- #
def _flatten_bindings(cache: Dict[str, object]) -> Dict[int, str]:
    """Map ``id(array)`` of every bindable cache array to a stable path.

    Paths address into the preprocess-cache structure (dict keys and
    sequence indices joined by ``.``; graphs expose ``features`` /
    ``labels``), so a program re-bound after a disk round trip finds its
    inputs without object identity.  The first path wins for arrays shared
    across entries (e.g. ADPA's ``initial`` tensor appearing in every DP
    step), keeping the mapping deterministic.
    """
    paths: Dict[int, str] = {}

    def register(array: np.ndarray, path: str) -> None:
        paths.setdefault(id(array), path)

    def visit(value: Any, path: str) -> None:
        if isinstance(value, Tensor):
            register(value.data, path)
        elif isinstance(value, np.ndarray):
            register(value, path)
        elif isinstance(value, dict):
            for key, entry in value.items():
                # Un-addressable keys (dots, non-strings) stay constants.
                if isinstance(key, str) and "." not in key:
                    visit(entry, f"{path}.{key}" if path else key)
        elif isinstance(value, (list, tuple)):
            for index, entry in enumerate(value):
                visit(entry, f"{path}.{index}" if path else str(index))
        elif isinstance(value, DirectedGraph):
            visit(value.features, f"{path}.features" if path else "features")
            visit(value.labels, f"{path}.labels" if path else "labels")

    visit(cache, "")
    return paths


def _resolve_binding(cache: Dict[str, object], path: str) -> np.ndarray:
    value: Any = cache
    for token in path.split("."):
        if isinstance(value, dict):
            value = value[token]
        elif isinstance(value, (list, tuple)):
            value = value[int(token)]
        elif isinstance(value, DirectedGraph):
            value = getattr(value, token)
        else:
            raise KeyError(f"cannot walk {token!r} of {type(value).__name__} in {path!r}")
    if isinstance(value, Tensor):
        return value.data
    return _as_array(value)


# ---------------------------------------------------------------------- #
# The compiled program
# ---------------------------------------------------------------------- #
@dataclass
class TracedProgram:
    """A flat, grad-free numpy program replaying one model × graph forward.

    ``steps`` reference values as ``(kind, index)`` pairs — ``("c", i)``
    a folded constant, ``("in", i)`` a re-bindable input (bound by path at
    :meth:`run` time), ``("v", i)`` an earlier step's result, and
    ``("r", 0)`` the register inside a fused chain.  Under the serving
    default ``fold="all"`` the step list is empty (or nearly so) and
    :meth:`run` degenerates to returning a validated constant — the whole
    autograd forward priced at one array copy.
    """

    key: str
    weights_version: str
    fold: str
    constants: List[np.ndarray]
    input_paths: List[str]
    steps: List[Dict[str, Any]]
    output: Tuple[str, int]
    num_recorded: int = 0
    num_folded: int = 0
    num_fused: int = 0

    def run(
        self,
        cache: Optional[Dict[str, object]] = None,
        model=None,
    ) -> np.ndarray:
        """Replay the program; no Tensor and no tape is ever constructed.

        ``cache`` / ``model`` bind the program's inputs for the partial
        fold policies (``"weights"`` needs the preprocess cache,
        ``"none"`` additionally the model's parameters); a fully folded
        program ignores both.
        """
        inputs: List[np.ndarray] = []
        if self.input_paths:
            params: Optional[Dict[str, np.ndarray]] = None
            for path in self.input_paths:
                if path.startswith("cache:"):
                    if cache is None:
                        raise TraceError(f"program input {path!r} needs a preprocess cache")
                    inputs.append(_resolve_binding(cache, path[len("cache:"):]))
                elif path.startswith("param:"):
                    if model is None:
                        raise TraceError(f"program input {path!r} needs the model")
                    if params is None:
                        params = {name: p.data for name, p in model.named_parameters()}
                    inputs.append(params[path[len("param:"):]])
                else:
                    raise TraceError(f"unknown input binding {path!r}")

        constants = self.constants
        env: List[Optional[np.ndarray]] = [None] * len(self.steps)

        def resolve(ref: Sequence[Any]) -> np.ndarray:
            kind, index = ref[0], ref[1]
            if kind == "c":
                return constants[index]
            if kind == "in":
                return inputs[index]
            return env[index]

        for position, step in enumerate(self.steps):
            if step["op"] == "fused":
                register: Optional[np.ndarray] = None
                for sub in step["chain"]:
                    args = [
                        register if ref[0] == "r" else resolve(ref)
                        for ref in sub["inputs"]
                    ]
                    register = _KERNELS[sub["op"]](args, sub["attrs"])
                env[position] = register
            else:
                args = [resolve(ref) for ref in step["inputs"]]
                env[position] = _KERNELS[step["op"]](args, step["attrs"])

        out = resolve(self.output)
        if self.output[0] != "v":
            # A constant (or input) output is owned by the program; hand the
            # caller a private copy so in-place mutation cannot corrupt it.
            out = out.copy()
        return out

    # ------------------------------------------------------------------ #
    # Introspection / persistence
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "fold": self.fold,
            "recorded_ops": self.num_recorded,
            "folded_ops": self.num_folded,
            "fused_ops": self.num_fused,
            "steps": len(self.steps),
            "constants": len(self.constants),
            "inputs": len(self.input_paths),
            "weights_version": self.weights_version,
        }

    def to_payload(self) -> Dict[str, object]:
        """A codec-friendly nesting (dict/list/tuple/ndarray/sparse)."""
        return {
            "key": self.key,
            "weights_version": self.weights_version,
            "fold": self.fold,
            "constants": list(self.constants),
            "input_paths": list(self.input_paths),
            "steps": self.steps,
            "output": tuple(self.output),
            "num_recorded": self.num_recorded,
            "num_folded": self.num_folded,
            "num_fused": self.num_fused,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "TracedProgram":
        return cls(
            key=payload["key"],
            weights_version=payload["weights_version"],
            fold=payload["fold"],
            constants=list(payload["constants"]),
            input_paths=list(payload["input_paths"]),
            steps=list(payload["steps"]),
            output=tuple(payload["output"]),
            num_recorded=int(payload.get("num_recorded", 0)),
            num_folded=int(payload.get("num_folded", 0)),
            num_fused=int(payload.get("num_fused", 0)),
        )


# ---------------------------------------------------------------------- #
# Compilation passes
# ---------------------------------------------------------------------- #
def _build_program(
    model,
    cache: Dict[str, object],
    recorder: TraceRecorder,
    out_index: int,
    fold: str,
    key: str,
    weights_version: str,
) -> TracedProgram:
    param_names = {id(param): name for name, param in model.named_parameters()}
    bind_paths = _flatten_bindings(cache) if fold != "all" else {}

    constants: List[np.ndarray] = []
    const_slots: Dict[int, int] = {}
    input_paths: List[str] = []
    input_slots: Dict[str, int] = {}
    steps: List[Dict[str, Any]] = []
    ref_by_tid: Dict[int, Tuple[str, int]] = {}
    num_folded = 0

    def const_ref(array: np.ndarray) -> Tuple[str, int]:
        slot = const_slots.get(id(array))
        if slot is None:
            slot = len(constants)
            constants.append(array)
            const_slots[id(array)] = slot
        return ("c", slot)

    def input_ref(path: str) -> Tuple[str, int]:
        slot = input_slots.get(path)
        if slot is None:
            slot = len(input_paths)
            input_paths.append(path)
            input_slots[path] = slot
        return ("in", slot)

    def leaf_ref(parent: Tensor) -> Tuple[str, int]:
        name = param_names.get(id(parent))
        if name is not None:
            if fold == "none":
                return input_ref(f"param:{name}")
            return const_ref(parent.data)
        path = bind_paths.get(id(parent.data))
        if path is not None:
            return input_ref(f"cache:{path}")
        return const_ref(parent.data)

    for tensor, op, parents, attrs in recorder.nodes:
        if op not in _KERNELS:
            raise TraceError(f"no replay kernel for traced op {op!r}")
        refs = [
            ref_by_tid[id(parent)]
            if id(parent) in recorder.records
            else leaf_ref(parent)
            for parent in parents
        ]
        if all(ref[0] == "c" for ref in refs):
            # Constant folding: the eager value *is* this step evaluated on
            # those constants, so adopting it is bit-identical and free.
            ref_by_tid[id(tensor)] = const_ref(tensor.data)
            num_folded += 1
        else:
            steps.append({"op": op, "inputs": refs, "attrs": attrs})
            ref_by_tid[id(tensor)] = ("v", len(steps) - 1)

    out_tensor = recorder.nodes[out_index][0]
    output = ref_by_tid[id(out_tensor)]
    steps, output, num_fused = _fuse_elementwise(steps, output)

    # Folded-away constants that no surviving step references are dead
    # weight; dropping them keeps spilled programs (and memory) lean.
    constants, input_paths, steps, output = _prune(constants, input_paths, steps, output)

    return TracedProgram(
        key=key,
        weights_version=weights_version,
        fold=fold,
        constants=constants,
        input_paths=input_paths,
        steps=steps,
        output=output,
        num_recorded=len(recorder.nodes),
        num_folded=num_folded,
        num_fused=num_fused,
    )


def _fuse_elementwise(
    steps: List[Dict[str, Any]],
    output: Tuple[str, int],
) -> Tuple[List[Dict[str, Any]], Tuple[str, int], int]:
    """Collapse runs of single-consumer elementwise steps into fused steps.

    A chain's interior values never touch the program environment — they
    flow through a register — but every kernel still runs with identical
    arguments in identical order, so fused replay is bit-identical.
    """
    if not steps:
        return steps, output, 0

    consumers = [0] * len(steps)
    for step in steps:
        for ref in step["inputs"]:
            if ref[0] == "v":
                consumers[ref[1]] += 1
    if output[0] == "v":
        consumers[output[1]] += 1

    def remap(ref: Tuple[str, int], ref_map: Dict[int, Tuple[str, int]]) -> Tuple[str, int]:
        return ref_map[ref[1]] if ref[0] == "v" else ref

    new_steps: List[Dict[str, Any]] = []
    ref_map: Dict[int, Tuple[str, int]] = {}
    num_fused = 0
    index = 0
    while index < len(steps):
        # Greedily extend: the next step must be elementwise, consume this
        # chain's value exactly once, and be that value's only consumer.
        last = index
        while last + 1 < len(steps):
            candidate = steps[last + 1]
            if candidate["op"] not in _FUSIBLE or consumers[last] != 1:
                break
            uses_prev = sum(1 for ref in candidate["inputs"] if ref == ("v", last))
            other_ok = all(
                ref == ("v", last) or ref[0] != "v" or ref[1] in ref_map
                for ref in candidate["inputs"]
            )
            if uses_prev != 1 or not other_ok:
                break
            last += 1

        if last == index:
            step = steps[index]
            new_steps.append(
                {
                    "op": step["op"],
                    "inputs": [remap(ref, ref_map) for ref in step["inputs"]],
                    "attrs": step["attrs"],
                }
            )
        else:
            chain = []
            for position in range(index, last + 1):
                step = steps[position]
                chain.append(
                    {
                        "op": step["op"],
                        "inputs": [
                            ("r", 0)
                            if position > index and ref == ("v", position - 1)
                            else remap(ref, ref_map)
                            for ref in step["inputs"]
                        ],
                        "attrs": step["attrs"],
                    }
                )
            new_steps.append({"op": "fused", "chain": chain, "attrs": {}, "inputs": []})
            num_fused += last - index + 1
        ref_map[last] = ("v", len(new_steps) - 1)
        index = last + 1

    return new_steps, remap(output, ref_map), num_fused


def _prune(
    constants: List[np.ndarray],
    input_paths: List[str],
    steps: List[Dict[str, Any]],
    output: Tuple[str, int],
) -> Tuple[List[np.ndarray], List[str], List[Dict[str, Any]], Tuple[str, int]]:
    """Drop constants/inputs no surviving reference uses; renumber refs."""
    used_consts: Dict[int, int] = {}
    used_inputs: Dict[int, int] = {}

    def note(ref: Sequence[Any]) -> None:
        kind, index = ref[0], ref[1]
        if kind == "c" and index not in used_consts:
            used_consts[index] = len(used_consts)
        elif kind == "in" and index not in used_inputs:
            used_inputs[index] = len(used_inputs)

    def walk(refs: Sequence[Sequence[Any]]) -> None:
        for ref in refs:
            note(ref)

    for step in steps:
        walk(step["inputs"])
        for sub in step.get("chain", ()):
            walk(sub["inputs"])
    note(output)

    def renumber(ref: Sequence[Any]):
        kind, index = ref[0], ref[1]
        if kind == "c":
            return ("c", used_consts[index])
        if kind == "in":
            return ("in", used_inputs[index])
        return tuple(ref)

    for step in steps:
        step["inputs"] = [renumber(ref) for ref in step["inputs"]]
        for sub in step.get("chain", ()):
            sub["inputs"] = [renumber(ref) for ref in sub["inputs"]]

    new_constants = [None] * len(used_consts)
    for old, new in used_consts.items():
        new_constants[new] = constants[old]
    new_inputs = [None] * len(used_inputs)
    for old, new in used_inputs.items():
        new_inputs[new] = input_paths[old]
    return new_constants, new_inputs, steps, renumber(output)


# ---------------------------------------------------------------------- #
# Public entry point
# ---------------------------------------------------------------------- #
def compile_forward(
    model,
    graph: DirectedGraph,
    cache: Optional[Dict[str, object]] = None,
    fold: str = "all",
) -> TracedProgram:
    """Trace one eager forward of ``model`` on ``graph`` into a program.

    Any failure — an op without trace metadata, a kernel gap, or a replay
    that is not bit-identical to the traced eager logits — raises
    :class:`TraceError`; callers fall back to the eager path.
    """
    if fold not in FOLD_MODES:
        raise ValueError(f"unknown fold mode {fold!r}; expected one of {FOLD_MODES}")
    if cache is None:
        cache = model.preprocess(graph)
    recorder = TraceRecorder()
    set_active_tracer(recorder)
    try:
        try:
            eager = model.predict_logits(graph, cache)
        except TraceError:
            raise
        except Exception as error:
            raise TraceError(f"eager forward failed while tracing: {error!r}") from error
    finally:
        set_active_tracer(None)

    if not recorder.nodes:
        raise TraceError("forward pass recorded no traceable operations")
    out_index = recorder.index_of_data(eager)
    if out_index is None:
        raise TraceError("model output was not produced by a traced operation")

    program = _build_program(
        model,
        cache,
        recorder,
        out_index,
        fold,
        key=preprocess_key(model, graph),
        weights_version=state_fingerprint(model.state_dict()),
    )
    replayed = program.run(cache=cache, model=model)
    if not np.array_equal(replayed, eager):
        raise TraceError(
            "compiled replay is not bit-identical to the traced eager logits "
            "(nondeterministic forward?)"
        )
    return program


# ---------------------------------------------------------------------- #
# The fingerprint-keyed program cache
# ---------------------------------------------------------------------- #
@dataclass
class TraceCacheStats(CacheStats):
    """Trace-cache counters: LRU hits/misses plus compile/fallback events."""

    compiles: int = 0
    fallbacks: int = 0


class TraceCache(StatsSource):
    """LRU of :class:`TracedProgram` entries, spillable like the operator cache.

    Keys are ``preprocess_key(model, graph)`` strings; the stored program's
    ``weights_version`` lets the engine detect hot-swapped weights and
    recompile instead of serving stale logits.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        self._cache = LRUCache(capacity)
        self._lock = threading.Lock()
        self._compiles = 0
        self._fallbacks = 0

    def get(self, key: str) -> Optional[TracedProgram]:
        return self._cache.get(key)

    def put(self, key: str, program: TracedProgram) -> None:
        self._cache.put(key, program)

    def compile_and_store(
        self,
        model,
        graph: DirectedGraph,
        cache: Optional[Dict[str, object]] = None,
        fold: str = "all",
    ) -> TracedProgram:
        """Compile ``model`` × ``graph`` and store the program under its key."""
        program = compile_forward(model, graph, cache, fold=fold)
        with self._lock:
            self._compiles += 1
        self._cache.put(program.key, program)
        return program

    def note_fallback(self) -> None:
        """Record one trace failure answered through the eager path."""
        with self._lock:
            self._fallbacks += 1

    def invalidate_graph(self, fingerprint: str) -> int:
        """Drop every compiled program keyed by one graph fingerprint.

        Surgical counterpart of ``OperatorCache.invalidate_graph`` for live
        graph updates: programs compiled against other fingerprints stay.
        Returns the number of programs dropped.
        """
        suffix = f"/{fingerprint}"
        return self._cache.discard_where(
            lambda key: isinstance(key, str) and key.endswith(suffix)
        )

    def grow(self, capacity: int) -> None:
        self._cache.grow(capacity)

    def clear(self) -> None:
        self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)

    def stats(self) -> TraceCacheStats:
        base = self._cache.stats()
        with self._lock:
            compiles, fallbacks = self._compiles, self._fallbacks
        return TraceCacheStats(
            hits=base.hits,
            misses=base.misses,
            evictions=base.evictions,
            size=base.size,
            capacity=base.capacity,
            compiles=compiles,
            fallbacks=fallbacks,
        )

    # ------------------------------------------------------------------ #
    # On-disk persistence (same .npz + structure-descriptor codec as the
    # operator cache, in a sibling directory)
    # ------------------------------------------------------------------ #
    def spill(self, directory: PathLike, overwrite: bool = False) -> int:
        """Persist compiled programs under ``directory``; returns the count.

        Mirrors :meth:`repro.serving.cache.OperatorCache.spill`: one
        ``.npz`` per program named by a digest of its key, per-process
        ``#token`` signatures skipped, existing files reused unless
        ``overwrite``, and temp-file + atomic-rename writes so concurrent
        workers can spill into one shared directory without corruption.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = 0
        for key, program in self._cache.entries():
            if "#" in str(key).split("/", 1)[0]:
                continue
            path = directory / _spill_filename(key)
            if not overwrite and path.exists():
                continue
            arrays: List[np.ndarray] = []
            try:
                structure = _encode(program.to_payload(), arrays)
            except TypeError:
                continue
            payload = {f"a{index}": array for index, array in enumerate(arrays)}
            payload[_SPILL_META] = np.array(
                json.dumps(
                    {
                        "format_version": SPILL_FORMAT_VERSION,
                        "kind": "trace",
                        "key": key,
                        "structure": structure,
                    }
                )
            )
            _atomic_savez(path, payload)
            written += 1
        return written

    def warm(self, directory: PathLike) -> int:
        """Reload spilled programs; unreadable or foreign files are skipped."""
        directory = Path(directory)
        if not directory.is_dir():
            return 0
        loaded: List[Tuple[str, TracedProgram]] = []
        for path in sorted(directory.glob("*.npz")):
            try:
                with np.load(path, allow_pickle=False) as data:
                    meta = json.loads(str(data[_SPILL_META]))
                    if (
                        meta.get("format_version") != SPILL_FORMAT_VERSION
                        or meta.get("kind") != "trace"
                    ):
                        continue
                    payload = _decode(meta["structure"], data)
                    loaded.append((meta["key"], TracedProgram.from_payload(payload)))
            except _WARM_ERRORS:
                continue
        if loaded:
            self._cache.grow(len(self._cache) + len(loaded))
            for key, program in loaded:
                self._cache.put(key, program)
        return len(loaded)
