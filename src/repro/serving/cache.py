"""Bounded, thread-safe LRU caches for the serving layer.

Two layers of reuse make warm inference cheap:

* :class:`LRUCache` — a generic bounded mapping with hit/miss/eviction
  counters, safe to share between the request threads of
  :class:`repro.serving.engine.InferenceServer`;
* :class:`OperatorCache` — an LRU specialised to ``preprocess()`` results,
  keyed by ``(model signature, graph fingerprint)``.  A hit skips *all*
  sparse precomputation (DP operator construction, K-step propagation),
  which is the dominant cost of the decoupled models.

The operator cache can also persist its entries to disk
(:meth:`OperatorCache.spill`) and reload them in another process
(:meth:`OperatorCache.warm`): each entry becomes one ``.npz`` file named by
a digest of its ``model-signature × graph-fingerprint`` key, so cold starts
are warm across processes and machines.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import zipfile
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np
import scipy.sparse as sp

from ..obs.histogram import HistogramStats, LatencyHistogram
from .fingerprint import preprocess_key
from .stats import Stats, StatsSource

PathLike = Union[str, Path]

#: default number of (model, graph) preprocess results kept in memory.
DEFAULT_CAPACITY = 8

#: bumped whenever the on-disk spill layout changes.
SPILL_FORMAT_VERSION = 1

#: the structure-descriptor array stored inside every spill file.
_SPILL_META = "__spill__"


@dataclass
class CacheStats(Stats):
    """Counters snapshot; hits/misses count lookups, not stores."""

    derived = ("hit_rate",)

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class OperatorCacheStats(CacheStats):
    """Cache counters plus the ``preprocess()`` call-latency histogram.

    Every call is recorded — hits and misses alike — so the distribution is
    bimodal by construction: a floor of near-zero hit lookups under a tail
    of full sparse-precompute misses.  The p99/hit-rate pair makes cache
    sizing decisions directly readable from ``/stats``.
    """

    preprocess_latency: HistogramStats = field(default_factory=HistogramStats)


class LRUCache(StatsSource):
    """A bounded least-recently-used mapping with instrumentation.

    ``get_or_compute`` holds the lock across the factory call, so concurrent
    requests for the same key compute the value exactly once.  That
    serialises cache *fills* — acceptable here because the inference engine
    funnels all preprocessing through a single worker thread and fills are
    rare by design (that is the point of the cache).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return default

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_or_compute(self, key: Any, factory: Callable[[], Any]) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            value = factory()
            self.put(key, value)
            return value

    def grow(self, capacity: int) -> None:
        """Raise the capacity to at least ``capacity`` (never shrinks)."""
        with self._lock:
            if capacity > self.capacity:
                self.capacity = capacity

    def entries(self) -> List[Tuple[Any, Any]]:
        """The (key, value) pairs, oldest first, without touching counters."""
        with self._lock:
            return list(self._entries.items())

    def discard(self, key: Any) -> bool:
        """Drop one entry if present (no hit/miss accounting); True if dropped."""
        with self._lock:
            if key in self._entries:
                del self._entries[key]
                return True
            return False

    def discard_where(self, predicate: Callable[[Any], bool]) -> int:
        """Drop every entry whose *key* matches; returns the count dropped.

        This is the surgical-invalidation primitive behind live graph
        updates: only entries keyed by a retired graph fingerprint go,
        everything else stays warm.
        """
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )


# ---------------------------------------------------------------------- #
# On-disk spill codec
# ---------------------------------------------------------------------- #
# A preprocess result is an arbitrary nesting of dicts / lists / tuples
# over ndarrays, autograd Tensors, scipy sparse operators, DirectedGraph
# objects and JSON scalars.  The codec flattens every array into a numbered
# slot of one .npz payload and records the nesting as a JSON structure
# descriptor, so a reload is byte-identical (dtypes and shapes included).


def _encode(value: Any, arrays: List[np.ndarray]) -> Dict[str, Any]:
    """Encode ``value`` into a JSON node, appending its arrays to ``arrays``."""
    from ..graph.digraph import DirectedGraph
    from ..nn.tensor import Tensor

    def slot(array: np.ndarray) -> int:
        arrays.append(np.ascontiguousarray(array))
        return len(arrays) - 1

    if isinstance(value, (np.integer, np.floating, np.bool_)):
        value = value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return {"t": "scalar", "v": value}
    if isinstance(value, slice):
        bounds = [value.start, value.stop, value.step]
        if not all(b is None or isinstance(b, int) for b in bounds):
            raise TypeError("cannot spill a slice with non-integer bounds")
        return {"t": "slice", "v": bounds}
    if isinstance(value, Tensor):
        return {"t": "tensor", "i": slot(value.data)}
    if isinstance(value, np.ndarray):
        return {"t": "array", "i": slot(value)}
    if sp.issparse(value):
        csr = value.tocsr()
        return {
            "t": "sparse",
            "format": value.getformat(),
            "data": slot(csr.data),
            "indices": slot(csr.indices),
            "indptr": slot(csr.indptr),
            "shape": list(csr.shape),
        }
    if isinstance(value, DirectedGraph):
        node: Dict[str, Any] = {
            "t": "graph",
            "name": value.name,
            "meta": json.dumps(value.meta, default=str),
            "adjacency": _encode(value.adjacency, arrays),
            "features": slot(value.features),
            "labels": slot(value.labels),
        }
        for mask_name in ("train_mask", "val_mask", "test_mask"):
            mask = getattr(value, mask_name)
            node[mask_name] = None if mask is None else slot(mask)
        return node
    if isinstance(value, dict):
        items = []
        for key, entry in value.items():
            if not isinstance(key, str):
                raise TypeError(f"cannot spill dict key of type {type(key).__name__}")
            items.append([key, _encode(entry, arrays)])
        return {"t": "dict", "items": items}
    if isinstance(value, (list, tuple)):
        return {
            "t": "list" if isinstance(value, list) else "tuple",
            "items": [_encode(entry, arrays) for entry in value],
        }
    raise TypeError(f"cannot spill value of type {type(value).__name__}")


def _decode(node: Dict[str, Any], data) -> Any:
    """Inverse of :func:`_encode`; ``data`` is the opened ``.npz`` payload."""
    from ..graph.digraph import DirectedGraph
    from ..nn.tensor import Tensor

    kind = node["t"]
    if kind == "scalar":
        return node["v"]
    if kind == "slice":
        return slice(*node["v"])
    if kind == "tensor":
        return Tensor(data[f"a{node['i']}"])
    if kind == "array":
        return data[f"a{node['i']}"].copy()
    if kind == "sparse":
        csr = sp.csr_matrix(
            (data[f"a{node['data']}"], data[f"a{node['indices']}"], data[f"a{node['indptr']}"]),
            shape=tuple(node["shape"]),
        )
        return csr.asformat(node["format"])
    if kind == "graph":
        masks = {
            mask_name: data[f"a{node[mask_name]}"].astype(bool)
            for mask_name in ("train_mask", "val_mask", "test_mask")
            if node[mask_name] is not None
        }
        return DirectedGraph(
            adjacency=_decode(node["adjacency"], data),
            features=data[f"a{node['features']}"].copy(),
            labels=data[f"a{node['labels']}"].copy(),
            name=node["name"],
            meta=json.loads(node["meta"]),
            **masks,
        )
    if kind == "dict":
        return {key: _decode(entry, data) for key, entry in node["items"]}
    if kind == "list":
        return [_decode(entry, data) for entry in node["items"]]
    if kind == "tuple":
        return tuple(_decode(entry, data) for entry in node["items"])
    raise ValueError(f"unknown spill node type {kind!r}")


def _spill_filename(key: str) -> str:
    return hashlib.blake2b(key.encode(), digest_size=16).hexdigest() + ".npz"


def _atomic_savez(path: Path, payload: Dict[str, np.ndarray]) -> None:
    """Write an ``.npz`` payload so readers never observe a partial file.

    Concurrent workers spill into one shared directory without any
    coordination step, so two processes can decide to write the same key at
    the same time.  A plain ``savez`` on the final path would let ``warm()``
    in a third process open a half-written zip.  Writing to a unique
    temporary file in the same directory and ``os.replace``-ing it into
    place makes the final name appear atomically; the losing writer of a
    race simply replaces the file with identical bytes (the content is a
    deterministic function of the key).
    """
    handle, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.stem + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            np.savez_compressed(stream, **payload)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


#: everything a corrupt or foreign .npz in a cache directory can raise.
_WARM_ERRORS = (OSError, ValueError, KeyError, TypeError, zipfile.BadZipFile)


class OperatorCache(StatsSource):
    """LRU cache of ``model.preprocess(graph)`` results.

    The key combines the model signature (registry name, constructor kwargs,
    dimensions) with the graph content fingerprint, so a hit is guaranteed to
    be the byte-identical cache the model would have rebuilt.  Stored values
    are whatever ``preprocess`` returned — including the DP operator sets the
    decoupled models stash in their caches — so repeated requests on the same
    graph skip every sparse product.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._cache = LRUCache(capacity)
        self._preprocess_latency = LatencyHistogram()

    def preprocess(self, model, graph) -> Dict[str, object]:
        """Return the cached preprocess result, computing it on first use.

        Every call is timed into the ``preprocess_latency`` histogram, hits
        included, so the snapshot shows the bimodal hit/miss split."""
        started = time.perf_counter()
        try:
            return model.preprocess_cached(graph, self._cache)
        finally:
            self._preprocess_latency.record_seconds(time.perf_counter() - started)

    def lookup(self, model, graph) -> Optional[Dict[str, object]]:
        """Peek without computing; ``None`` on a miss."""
        return self._cache.get(preprocess_key(model, graph))

    def seed(self, model, graph, value: Dict[str, object]) -> None:
        """Insert an already-computed preprocess result (artifact restore)."""
        self._cache.put(preprocess_key(model, graph), value)

    def invalidate_graph(self, fingerprint: str) -> int:
        """Drop every entry keyed by one graph fingerprint, for any model.

        Surgical: entries for other fingerprints — other shards, or the
        successor graph a live update just warmed — are untouched.  Returns
        the number of entries dropped.
        """
        suffix = f"/{fingerprint}"
        return self._cache.discard_where(
            lambda key: isinstance(key, str) and key.endswith(suffix)
        )

    def grow(self, capacity: int) -> None:
        """Raise the capacity to at least ``capacity`` (never shrinks).

        The ShardRouter calls this as shards register, so a router with more
        shards than :data:`DEFAULT_CAPACITY` does not thrash its own
        per-shard preprocess entries."""
        self._cache.grow(capacity)

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()

    def stats(self) -> OperatorCacheStats:
        counters = self._cache.stats()
        return OperatorCacheStats(
            hits=counters.hits,
            misses=counters.misses,
            evictions=counters.evictions,
            size=counters.size,
            capacity=counters.capacity,
            preprocess_latency=self._preprocess_latency.stats(),
        )

    # ------------------------------------------------------------------ #
    # On-disk persistence
    # ------------------------------------------------------------------ #
    def spill(self, directory: PathLike, overwrite: bool = False) -> int:
        """Persist the cached preprocess entries under ``directory``.

        Each entry becomes one ``.npz`` file named by a digest of its
        ``model-signature × graph-fingerprint`` key (the key itself rides
        inside the file).  Returns the number of entries written.  A key
        whose file already exists is skipped unless ``overwrite`` is set —
        the content is a deterministic function of the key, so re-encoding
        it (e.g. on every warm benchmark run) would only burn CPU writing
        identical bytes.  Writes go through a temp-file + atomic-rename
        path, so any number of worker processes can spill into one shared
        directory concurrently without a coordination step — a reader never
        sees a partial file.  Two entry classes are skipped by design:
        hand-constructed models carry a per-process ``#token`` signature
        that is meaningless in another process, and values the codec cannot
        represent (a preprocess result holding e.g. an open resource) are
        left in memory only.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        written = 0
        for key, value in self._cache.entries():
            if "#" in str(key).split("/", 1)[0]:
                continue
            if not overwrite and (directory / _spill_filename(key)).exists():
                continue
            arrays: List[np.ndarray] = []
            try:
                structure = _encode(value, arrays)
            except TypeError:
                continue
            payload = {f"a{index}": array for index, array in enumerate(arrays)}
            payload[_SPILL_META] = np.array(
                json.dumps(
                    {
                        "format_version": SPILL_FORMAT_VERSION,
                        "key": key,
                        "structure": structure,
                    }
                )
            )
            _atomic_savez(directory / _spill_filename(key), payload)
            written += 1
        return written

    def warm(self, directory: PathLike) -> int:
        """Reload spilled entries from ``directory`` into the cache.

        Unreadable, foreign or version-mismatched files are skipped — a
        stale cache directory must never take serving down.  The capacity
        grows to hold everything loaded (it never shrinks), and returns
        the number of entries restored.
        """
        directory = Path(directory)
        if not directory.is_dir():
            return 0
        loaded: List[Tuple[str, Any]] = []
        for path in sorted(directory.glob("*.npz")):
            try:
                with np.load(path, allow_pickle=False) as data:
                    meta = json.loads(str(data[_SPILL_META]))
                    if meta.get("format_version") != SPILL_FORMAT_VERSION:
                        continue
                    if meta.get("kind") not in (None, "operator"):
                        continue  # e.g. a trace spill sharing the directory
                    loaded.append((meta["key"], _decode(meta["structure"], data)))
            except _WARM_ERRORS:
                continue
        if loaded:
            self._cache.grow(len(self._cache) + len(loaded))
            for key, value in loaded:
                self._cache.put(key, value)
        return len(loaded)
