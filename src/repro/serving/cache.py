"""Bounded, thread-safe LRU caches for the serving layer.

Two layers of reuse make warm inference cheap:

* :class:`LRUCache` — a generic bounded mapping with hit/miss/eviction
  counters, safe to share between the request threads of
  :class:`repro.serving.engine.InferenceServer`;
* :class:`OperatorCache` — an LRU specialised to ``preprocess()`` results,
  keyed by ``(model signature, graph fingerprint)``.  A hit skips *all*
  sparse precomputation (DP operator construction, K-step propagation),
  which is the dominant cost of the decoupled models.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from .fingerprint import preprocess_key

#: default number of (model, graph) preprocess results kept in memory.
DEFAULT_CAPACITY = 8


@dataclass
class CacheStats:
    """Counters snapshot; hits/misses count lookups, not stores."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "capacity": self.capacity,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """A bounded least-recently-used mapping with instrumentation.

    ``get_or_compute`` holds the lock across the factory call, so concurrent
    requests for the same key compute the value exactly once.  That
    serialises cache *fills* — acceptable here because the inference engine
    funnels all preprocessing through a single worker thread and fills are
    rare by design (that is the point of the cache).
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: Any, default: Any = None) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            return default

    def put(self, key: Any, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._evictions += 1

    def get_or_compute(self, key: Any, factory: Callable[[], Any]) -> Any:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return self._entries[key]
            self._misses += 1
            value = factory()
            self.put(key, value)
            return value

    def grow(self, capacity: int) -> None:
        """Raise the capacity to at least ``capacity`` (never shrinks)."""
        with self._lock:
            if capacity > self.capacity:
                self.capacity = capacity

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                capacity=self.capacity,
            )


class OperatorCache:
    """LRU cache of ``model.preprocess(graph)`` results.

    The key combines the model signature (registry name, constructor kwargs,
    dimensions) with the graph content fingerprint, so a hit is guaranteed to
    be the byte-identical cache the model would have rebuilt.  Stored values
    are whatever ``preprocess`` returned — including the DP operator sets the
    decoupled models stash in their caches — so repeated requests on the same
    graph skip every sparse product.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._cache = LRUCache(capacity)

    def preprocess(self, model, graph) -> Dict[str, object]:
        """Return the cached preprocess result, computing it on first use."""
        return model.preprocess_cached(graph, self._cache)

    def lookup(self, model, graph) -> Optional[Dict[str, object]]:
        """Peek without computing; ``None`` on a miss."""
        return self._cache.get(preprocess_key(model, graph))

    def seed(self, model, graph, value: Dict[str, object]) -> None:
        """Insert an already-computed preprocess result (artifact restore)."""
        self._cache.put(preprocess_key(model, graph), value)

    def grow(self, capacity: int) -> None:
        """Raise the capacity to at least ``capacity`` (never shrinks).

        The ShardRouter calls this as shards register, so a router with more
        shards than :data:`DEFAULT_CAPACITY` does not thrash its own
        per-shard preprocess entries."""
        self._cache.grow(capacity)

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()

    def stats(self) -> CacheStats:
        return self._cache.stats()
