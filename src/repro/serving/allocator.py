"""Opt-in glibc allocator tuning for live-update churn.

A sustained ``swap_graph`` workload allocates and frees a few multi-MB
arrays per delta (the patched propagation steps).  glibc's default trim
threshold (128 KiB) returns each freed block to the kernel immediately,
so every swap pays page-fault + zeroing cost for the same memory over
and over — easily 3-5 ms per 10 MB array.  Raising the trim/mmap
thresholds keeps those blocks on the heap free list and cuts the
steady-state swap cost to plain memcpy speed.

This is process-global, so it is never applied implicitly; call
:func:`tune_allocator_for_churn` from the serving entrypoint (the delta
benchmark and ``repro serve-bench --mutate`` do).  On non-glibc
platforms it is a no-op returning ``False``.
"""

from __future__ import annotations

import ctypes

_M_TRIM_THRESHOLD = -1
_M_MMAP_THRESHOLD = -3

DEFAULT_THRESHOLD_BYTES = 256 * 1024 * 1024


def tune_allocator_for_churn(threshold_bytes: int = DEFAULT_THRESHOLD_BYTES) -> bool:
    """Raise glibc's trim/mmap thresholds; True if both mallopts took."""
    try:
        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        trim_ok = bool(libc.mallopt(_M_TRIM_THRESHOLD, int(threshold_bytes)))
        mmap_ok = bool(libc.mallopt(_M_MMAP_THRESHOLD, int(threshold_bytes)))
        return trim_ok and mmap_ok
    except (OSError, AttributeError):
        return False
