"""Micro-batching inference engine for node-classification requests.

The serving observation behind the paper's decoupled design: once
``preprocess()`` is cached, a forward pass prices the *whole graph* at MLP
cost, so concurrent requests for node subsets should never each pay for
their own forward.  :class:`InferenceServer` therefore runs a single worker
thread that

1. pulls the first pending request off a thread-safe queue,
2. coalesces everything else that arrives within ``max_wait_ms`` (up to
   ``max_batch_size`` requests) into one micro-batch,
3. groups the batch by graph fingerprint, runs **one** forward per distinct
   graph (preprocess served from the shared :class:`OperatorCache`),
4. fans the logit rows back out to each request's ticket.

Observability is built in: per-request latencies stream into a bounded
log-bucketed :class:`repro.obs.LatencyHistogram` (exact mean/max plus
p50/p95/p99 readout, O(1) per request — no latency list that grows with
traffic), every ticket carries a :class:`repro.obs.RequestTrace` whose
queue / cache / forward / deliver spans account exactly for its
end-to-end latency, and completed traces land in a bounded ring buffer
(:meth:`InferenceServer.recent_traces`) for post-hoc debugging of slow
requests.
"""

from __future__ import annotations

import copy
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..graph.delta import GraphDelta
from ..graph.digraph import DirectedGraph
from ..models.base import NodeClassifier
from ..obs.histogram import HistogramStats, LatencyHistogram
from ..obs.spans import RequestTrace, TraceBuffer
from .artifacts import ModelArtifact, restore_model
from .cache import CacheStats, LRUCache, OperatorCache
from .fingerprint import state_fingerprint
from .stats import Stats, StatsSource
from .trace import COMPILE_MODES, TraceCache, TraceCacheStats

#: queue sentinel telling the worker thread to exit.
_STOP = object()


class ServerOverloaded(RuntimeError):
    """Raised when a bounded request queue rejects a non-blocking submit."""


def _clone_exception(error: BaseException) -> BaseException:
    """A per-ticket copy of a shared batch failure.

    Concurrent ``result()`` calls re-raise their ticket's exception on
    multiple client threads; ``raise`` mutates ``__traceback__`` in place,
    so handing the *same* exception object to every ticket in a failed
    group is a data race.  Each ticket gets its own shallow copy (falling
    back to a ``RuntimeError`` wrapper for exceptions that refuse to
    copy), chained to the original via ``__cause__``.
    """
    try:
        clone = copy.copy(error)
    except Exception:
        clone = None
    if clone is None or clone is error:
        clone = RuntimeError(f"{type(error).__name__}: {error}")
    clone.__cause__ = error
    clone.__traceback__ = None
    return clone


class GraphSwapTicket:
    """Handle returned by :meth:`InferenceServer.swap_graph`.

    Resolves once the worker has warmed the new fingerprint, swapped the
    bound graph and surgically invalidated entries keyed by the old one.
    ``in_place`` reports whether the model patched its preprocess cache
    incrementally (``True``) or took the full re-preprocess fallback;
    ``invalidated`` counts the entries dropped per cache layer.
    """

    def __init__(self, delta: GraphDelta) -> None:
        self.delta = delta
        self.old_fingerprint: Optional[str] = None
        self.new_fingerprint: Optional[str] = None
        self.in_place: Optional[bool] = None
        self.invalidated: Dict[str, int] = {}
        self._done = threading.Event()
        self._graph: Optional[DirectedGraph] = None
        self._error: Optional[BaseException] = None

    def _complete(self, graph: DirectedGraph) -> None:
        if self._done.is_set():
            return
        self._graph = graph
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        if self._done.is_set():
            return
        self._error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> DirectedGraph:
        """Block until applied; returns the mutated graph now being served."""
        if not self._done.wait(timeout):
            raise TimeoutError("graph swap did not complete in time")
        if self._error is not None:
            raise self._error
        return self._graph


class _RetireMarker:
    """Queue sentinel that retires a swapped-out fingerprint.

    Enqueued by the worker right after it applies a swap.  FIFO ordering
    guarantees every ticket that bound the old graph (submitted before the
    swap was applied) drains ahead of the marker, so when the marker is
    processed the old fingerprint's cache entries have no remaining
    readers and can be dropped without anyone repaying a preprocess.
    The swap ticket completes here, so blocking callers still observe
    "invalidation done" when :meth:`GraphSwapTicket.result` returns.
    """

    __slots__ = ("swap", "graph")

    def __init__(self, swap: GraphSwapTicket, graph: DirectedGraph) -> None:
        self.swap = swap
        self.graph = graph


class InferenceTicket:
    """Handle returned by :meth:`InferenceServer.submit`.

    ``result()`` blocks until the worker has fanned the batch back out and
    returns the predicted class per requested node; ``logits`` holds the raw
    rows for callers that need scores.
    """

    def __init__(self, node_ids: Optional[np.ndarray], graph: DirectedGraph) -> None:
        self.node_ids = node_ids
        self.graph = graph
        self.enqueued_at = time.perf_counter()
        #: stage spans (queue / cache / forward / deliver) on the same
        #: clock as ``enqueued_at``; populated by the worker as the
        #: request moves through the pipeline.
        self.trace = RequestTrace(started_at=self.enqueued_at)
        if node_ids is not None:
            self.trace.annotate("nodes", int(node_ids.size))
        self.latency_seconds: Optional[float] = None
        self._done = threading.Event()
        self._predictions: Optional[np.ndarray] = None
        self._logits: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self._callback_lock = threading.Lock()
        self._callbacks: List = []

    def _complete(self, logits: np.ndarray) -> None:
        if self._done.is_set():  # completion is final; never re-resolve
            return
        self._logits = logits
        self._predictions = logits.argmax(axis=1)
        self.latency_seconds = time.perf_counter() - self.enqueued_at
        self.trace.mark("deliver")
        self.trace.annotate("outcome", "ok")
        self._done.set()
        self._fire_callbacks()

    def _fail(self, error: BaseException) -> None:
        if self._done.is_set():
            return
        self._error = error
        self.latency_seconds = time.perf_counter() - self.enqueued_at
        self.trace.mark("deliver")
        self.trace.annotate("outcome", "error")
        self.trace.annotate("error", type(error).__name__)
        self._done.set()
        self._fire_callbacks()

    def _fire_callbacks(self) -> None:
        with self._callback_lock:
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:
                # A broken callback (e.g. an asubmit resolving into a closed
                # event loop) must not corrupt the ticket, skip later
                # callbacks, or take down the worker thread.
                traceback.print_exc()

    def add_done_callback(self, callback) -> None:
        """Run ``callback(ticket)`` once the request completes (or fails).

        Registered after completion, the callback runs immediately on the
        caller's thread; otherwise it runs on the worker thread, so it must
        be quick.  A raising callback is printed and swallowed — completion
        is final and later callbacks still run.  The
        :class:`repro.serving.ShardRouter` uses this to release its
        back-pressure slot, and ``asubmit`` to resolve asyncio futures.
        """
        with self._callback_lock:
            if not self._done.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        if not self._done.wait(timeout):
            raise TimeoutError("inference request did not complete in time")
        if self._error is not None:
            raise self._error
        return self._predictions

    @property
    def logits(self) -> np.ndarray:
        if not self._done.is_set() or self._logits is None:
            raise RuntimeError("request has not completed successfully")
        return self._logits

    def spans(self) -> Dict[str, float]:
        """Per-stage timings (ms) of the completed request.

        Keys are ``queue`` / ``cache`` / ``forward`` / ``deliver``; the
        values sum to the trace's ``total_ms`` by construction.
        """
        return self.trace.spans()


@dataclass
class ServerStats(Stats):
    """Point-in-time serving counters (see :class:`repro.serving.stats.Stats`).

    ``mean_latency_ms``/``max_latency_ms`` keep their historical meaning
    (exact values, tracked alongside the histogram); ``latency`` carries
    the full log-bucketed distribution, from which the derived
    ``p50/p95/p99_latency_ms`` tails are read.
    """

    derived = ("p50_latency_ms", "p95_latency_ms", "p99_latency_ms")

    requests: int
    batches: int
    forwards: int
    mean_batch_size: float
    mean_latency_ms: float
    max_latency_ms: float
    uptime_seconds: float
    requests_per_second: float
    cache: CacheStats
    logit_cache: CacheStats
    #: full request-latency distribution (log-spaced buckets, mergeable).
    latency: HistogramStats = field(default_factory=HistogramStats)
    #: shared-trace-cache counters; ``None`` on an eager-only server.
    trace: Optional[TraceCacheStats] = None

    @property
    def p50_latency_ms(self) -> float:
        return self.latency.p50_ms

    @property
    def p95_latency_ms(self) -> float:
        return self.latency.p95_ms

    @property
    def p99_latency_ms(self) -> float:
        return self.latency.p99_ms


class InferenceServer(StatsSource):
    """Serve node predictions from a trained model under concurrent load.

    The model is owned by the single worker thread (the autograd modules are
    not thread-safe); client threads only touch the queue and their tickets.
    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        model: NodeClassifier,
        graph: DirectedGraph,
        *,
        operator_cache: Optional[OperatorCache] = None,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        cache_logits: bool = True,
        logit_cache_capacity: int = 8,
        logit_cache: Optional[LRUCache] = None,
        max_pending: Optional[int] = None,
        compile: str = "auto",
        trace_cache: Optional[TraceCache] = None,
    ) -> None:
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        if max_pending is not None and max_pending < 1:
            raise ValueError(f"max_pending must be >= 1 (or None), got {max_pending}")
        if compile not in COMPILE_MODES:
            raise ValueError(
                f"unknown compile mode {compile!r}; expected one of {COMPILE_MODES}"
            )
        self.model = model.eval()
        self.graph = graph
        self.cache = operator_cache if operator_cache is not None else OperatorCache()
        # Serving assumes frozen weights, so full-graph eval logits are a
        # pure function of (weights version, graph fingerprint) and can be
        # memoised; call :meth:`clear_logit_cache` if the model's parameters
        # are mutated.  The cache may be shared between servers (the
        # ShardRouter does) — the weights-version key field keeps entries of
        # side-by-side hot-swapped artifacts apart.
        self.cache_logits = cache_logits
        self._logit_cache = (
            logit_cache if logit_cache is not None else LRUCache(logit_cache_capacity)
        )
        # Computed lazily by the worker *after* the first preprocess, so
        # lazily-built modules (ADPA's attention) exist before their weights
        # are hashed into the version.  The (signature, weights-version)
        # cache-key prefix is frozen alongside it: both only reset through
        # clear_logit_cache(), so the hot batch loop never rehashes them.
        self._weights_version: Optional[str] = None
        self._logit_key_prefix: Optional[Tuple[str, str]] = None
        # Compiled-trace serving: cache-miss forwards replay a flat,
        # grad-free numpy program instead of the autograd graph (see
        # :mod:`repro.serving.trace`).  "auto" remembers keys that failed
        # to trace and stops retrying them; "trace" retries every miss;
        # "eager" never compiles and allocates no trace cache.
        self.compile_mode = compile
        if trace_cache is None and compile != "eager":
            trace_cache = TraceCache()
        self._trace_cache = trace_cache if compile != "eager" else None
        self._broken_traces: set = set()
        self.max_batch_size = max_batch_size
        self.max_wait_seconds = max_wait_ms / 1000.0
        self.max_pending = max_pending
        # Back-pressure is a semaphore over *in-flight* tickets (queued or
        # being processed), released on completion — not a bounded queue.
        # A bounded queue would make submit() block inside put() while
        # holding the lifecycle lock, stalling stop() and other submitters'
        # block=False fast path; the queue itself stays unbounded so the
        # stop sentinel can always be enqueued.
        self._capacity = (
            None if max_pending is None else threading.BoundedSemaphore(max_pending)
        )
        self._queue: "queue.Queue" = queue.Queue()
        self._worker: Optional[threading.Thread] = None
        self._running = False
        # Guards the running-flag check-then-enqueue in submit() against a
        # concurrent stop(): without it a ticket could land behind the
        # sentinel after the drain and leave its client blocked forever.
        self._lifecycle_lock = threading.Lock()
        self._started_at: Optional[float] = None
        self._metrics_lock = threading.Lock()
        self._requests = 0
        self._batches = 0
        self._forwards = 0
        # Bounded observability state: a fixed-bucket histogram instead of
        # a latency list that scales with traffic, and a ring of recent
        # request traces for debugging tail latencies.
        self._latency = LatencyHistogram()
        self._trace_log = TraceBuffer()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_artifact(
        cls,
        directory: Union[str, Path],
        graph: Optional[DirectedGraph] = None,
        **server_kwargs,
    ) -> Tuple["InferenceServer", ModelArtifact]:
        """Load an artifact and build a server with a pre-warmed cache.

        The preprocess performed while restoring the weights is seeded into
        the operator cache, so the very first request is already warm.
        """
        model, cache, artifact, target = restore_model(directory, graph)
        server = cls(model, target, **server_kwargs)
        server.cache.seed(model, target, cache)
        return server, artifact

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "InferenceServer":
        with self._lifecycle_lock:
            if self._running:
                return self
            if self._worker is not None:
                raise RuntimeError(
                    "previous worker thread has not exited; refusing to start a "
                    "second worker against the same model"
                )
            self._running = True
            self._started_at = time.perf_counter()
            self._worker = threading.Thread(target=self._serve_loop, daemon=True)
            self._worker.start()
            return self

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        with self._lifecycle_lock:
            if not self._running:
                return
            self._running = False
            self._queue.put(_STOP)
            if self._worker is not None:
                self._worker.join(timeout)
                if self._worker.is_alive():
                    # The worker still owns the queue and the model; leave
                    # both alone (start() will refuse until it exits).
                    return
                self._worker = None
            # The worker exits at the sentinel, but tickets enqueued before
            # it (or left behind by an early stop_after_batch exit) would
            # otherwise block their clients forever; fail them instead.
            while True:
                try:
                    leftover = self._queue.get_nowait()
                except queue.Empty:
                    break
                if isinstance(leftover, _RetireMarker):
                    # The swap behind it already applied; finish its
                    # bookkeeping inline rather than reporting a failure.
                    self._finish_retire(leftover)
                elif leftover is not _STOP:
                    leftover._fail(
                        RuntimeError("InferenceServer stopped before serving request")
                    )

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Client API
    # ------------------------------------------------------------------ #
    def warm(self, graph: Optional[DirectedGraph] = None) -> None:
        """Populate the operator cache for ``graph`` (default: the bound one).

        Must be called before :meth:`start`: preprocessing can mutate the
        model (lazy module construction), and once the server is running the
        model belongs exclusively to the worker thread.  A running server
        warms lazily through the request path instead.
        """
        with self._lifecycle_lock:
            if self._running:
                raise RuntimeError(
                    "warm() is only allowed before start(); a running server "
                    "warms caches through the request path"
                )
            self.cache.preprocess(self.model, graph if graph is not None else self.graph)

    def swap_graph(
        self,
        delta: GraphDelta,
        *,
        block: bool = True,
        timeout: Optional[float] = 30.0,
    ) -> GraphSwapTicket:
        """Apply a live :class:`GraphDelta` to the bound graph.

        On a running server the swap is a control message on the request
        queue: the worker finishes the batch in flight, applies the delta
        (incremental fingerprint), **warms the new fingerprint before
        swapping** — via the model's in-place ``update_preprocess`` when
        supported, a full re-preprocess otherwise — rebinds ``self.graph``
        and then surgically invalidates operator/trace/logit entries keyed
        by the old fingerprint.  The invalidation is deferred through a
        queue marker so requests already bound to the old graph (they sit
        between the swap and the marker in FIFO order) keep answering from
        the still-warm cache — nobody repays a preprocess of a retired
        graph.  On a stopped server the swap applies inline.

        ``block=True`` (default) waits for completion and re-raises any
        failure; do not block from the worker thread itself (done
        callbacks), it would deadlock.
        """
        swap = GraphSwapTicket(delta)
        with self._lifecycle_lock:
            running = self._running
            if running:
                self._queue.put(swap)
            else:
                self._apply_swap(swap)
        if running and block:
            swap.result(timeout)
        return swap

    def clear_logit_cache(self) -> None:
        """Drop memoised logits (required after any weight mutation).

        Also invalidates the cached weights version, so the next forward
        rehashes the (possibly mutated) state dict.  With a shared logit
        cache this clears every server's entries, which is safe — they all
        recompute on the next request.
        """
        self._logit_cache.clear()
        self._weights_version = None
        self._logit_key_prefix = None

    def submit(
        self,
        node_ids: Optional[Sequence[int]] = None,
        graph: Optional[DirectedGraph] = None,
        *,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> InferenceTicket:
        """Enqueue a prediction request for a node subset (``None`` = all).

        With ``max_pending`` set, at most that many tickets may be in
        flight (queued or being processed); a saturated server blocks the
        caller (back-pressure) until a ticket completes — pass
        ``block=False`` or a ``timeout`` to get :class:`ServerOverloaded`
        instead of waiting.
        """
        ids = None if node_ids is None else np.asarray(node_ids, dtype=np.int64)
        if ids is not None and ids.size and ids.min() < 0:
            # Negative ids would wrap via fancy indexing and silently return
            # another node's prediction; reject them at the door instead.
            raise ValueError(f"node_ids must be non-negative, got min {ids.min()}")
        ticket = InferenceTicket(ids, graph if graph is not None else self.graph)
        # Capacity is claimed *outside* the lifecycle lock so a blocked
        # submitter never stalls stop() or another caller's fast path.
        if self._capacity is not None:
            acquired = self._capacity.acquire(
                blocking=block, timeout=timeout if block else None
            )
            if not acquired:
                raise ServerOverloaded(
                    f"server is at capacity ({self.max_pending} requests in flight)"
                )
        try:
            with self._lifecycle_lock:
                if not self._running:
                    raise RuntimeError("InferenceServer is not running; call start() first")
                self._queue.put(ticket)  # unbounded: never blocks under the lock
        except BaseException:
            if self._capacity is not None:
                self._capacity.release()
            raise
        if self._capacity is not None:
            # Fires on the worker thread at completion (or immediately if
            # the ticket already resolved).
            ticket.add_done_callback(lambda _ticket: self._capacity.release())
        return ticket

    def predict(
        self,
        node_ids: Optional[Sequence[int]] = None,
        graph: Optional[DirectedGraph] = None,
        timeout: Optional[float] = 60.0,
    ) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`.

        ``timeout`` bounds each phase separately: the capacity wait of a
        bounded server (:class:`ServerOverloaded` on expiry) and then the
        wait for the prediction itself.
        """
        return self.submit(node_ids, graph, timeout=timeout).result(timeout)

    def stats(self) -> ServerStats:
        with self._metrics_lock:
            requests, batches, forwards = self._requests, self._batches, self._forwards
        latency = self._latency.stats()
        uptime = (
            time.perf_counter() - self._started_at if self._started_at is not None else 0.0
        )
        return ServerStats(
            requests=requests,
            batches=batches,
            forwards=forwards,
            mean_batch_size=requests / batches if batches else 0.0,
            mean_latency_ms=latency.mean_ms,
            max_latency_ms=latency.max_ms,
            uptime_seconds=uptime,
            requests_per_second=requests / uptime if uptime > 0 else 0.0,
            cache=self.cache.stats(),
            logit_cache=self._logit_cache.stats(),
            latency=latency,
            trace=self._trace_cache.stats() if self._trace_cache is not None else None,
        )

    def recent_traces(self, limit: Optional[int] = None) -> List[Dict[str, object]]:
        """Most-recent-first span dicts of completed requests (bounded ring)."""
        return self._trace_log.snapshot(limit)

    @property
    def trace_cache(self) -> Optional["TraceCache"]:
        """The compiled-program cache (``None`` on an eager-only server)."""
        return self._trace_cache

    # ------------------------------------------------------------------ #
    # Worker
    # ------------------------------------------------------------------ #
    def _compiled_logits(self, graph_fp: str, graph, cache) -> Optional[np.ndarray]:
        """Replay (compiling on first sight) the traced program for a graph.

        Runs on the worker thread, which owns the model — tracing performs
        one ordinary eager forward under a thread-local recorder, so it is
        exactly as safe as the eager path it replaces.  Returns ``None``
        when the model cannot be traced (or a program fails to replay); the
        caller answers through the eager path and the failure is counted.
        In ``"auto"`` mode a failed key is remembered and never retried;
        ``"trace"`` retries on every miss.
        """
        trace_key = f"{self._logit_key_prefix[0]}/{graph_fp}"
        if self.compile_mode == "auto" and trace_key in self._broken_traces:
            return None
        program = self._trace_cache.get(trace_key)
        if program is not None and program.weights_version != self._weights_version:
            # Hot-swapped weights (e.g. a warmed spill from an older
            # artifact): recompile rather than serve stale logits.
            program = None
        try:
            if program is None:
                program = self._trace_cache.compile_and_store(self.model, graph, cache)
            return program.run(cache=cache, model=self.model)
        except Exception:  # any compile/replay failure degrades to eager
            self._trace_cache.note_fallback()
            if self.compile_mode == "auto":
                self._broken_traces.add(trace_key)
            return None

    def _apply_swap(self, swap: GraphSwapTicket, *, defer_retire: bool = False) -> None:
        """Worker-side (or stopped-server inline) application of one swap.

        Order matters: the new fingerprint is warmed first — so the old
        graph keeps serving while the expensive part runs — then the bound
        graph flips, then the old fingerprint's cache entries drop.

        With ``defer_retire`` (the running-server path) the drop does not
        happen here: tickets submitted while the swap sat in the queue are
        bound to the old graph and are still *behind* it in FIFO order —
        invalidating now would force each of their batches to repay a full
        preprocess of a graph we just stopped serving.  Instead a
        :class:`_RetireMarker` is enqueued; the old entries retire when it
        drains, after every old-graph ticket has been answered from the
        still-warm cache.  The swap ticket completes at the marker, so
        ``block=True`` callers still return with invalidation finished.
        """
        old_graph = self.graph
        try:
            old_fp = old_graph.fingerprint()
            swap.old_fingerprint = old_fp
            new_graph = old_graph.apply_delta(swap.delta)
            new_fp = new_graph.fingerprint()
            swap.new_fingerprint = new_fp
            updated = None
            old_cache = self.cache.lookup(self.model, old_graph)
            if old_cache is not None:
                updated = self.model.update_preprocess(
                    old_graph, new_graph, swap.delta, old_cache
                )
            # Old and new entries coexist until the marker drains; make
            # room so seeding the successor cannot LRU-evict the entry the
            # queued old-graph tickets are about to read.
            self.cache.grow(len(self.cache) + 1)
            if updated is not None:
                self.cache.seed(self.model, new_graph, updated)
                swap.in_place = True
            else:
                self.cache.preprocess(self.model, new_graph)
                swap.in_place = False
            self.graph = new_graph
            if new_fp == old_fp:  # an empty delta must not drop its own entries
                swap._complete(new_graph)
            elif defer_retire:
                self._queue.put(_RetireMarker(swap, new_graph))
            else:
                swap.invalidated = self._retire_fingerprint(old_fp)
                swap._complete(new_graph)
        except BaseException as error:
            swap._fail(error)

    def _retire_fingerprint(self, old_fp: str) -> Dict[str, int]:
        """Surgically drop every cache entry keyed by ``old_fp``."""
        invalidated = {
            "operator": self.cache.invalidate_graph(old_fp),
            "logits": self._logit_cache.discard_where(
                lambda key: isinstance(key, tuple) and bool(key) and key[-1] == old_fp
            ),
        }
        if self._trace_cache is not None:
            invalidated["traces"] = self._trace_cache.invalidate_graph(old_fp)
        return invalidated

    def _finish_retire(self, marker: _RetireMarker) -> None:
        """Process a drained :class:`_RetireMarker`: invalidate, then resolve."""
        swap = marker.swap
        try:
            swap.invalidated = self._retire_fingerprint(swap.old_fingerprint)
            swap._complete(marker.graph)
        except BaseException as error:  # pragma: no cover - cache layer is robust
            swap._fail(error)

    def _serve_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            if isinstance(item, GraphSwapTicket):
                self._apply_swap(item, defer_retire=True)
                continue
            if isinstance(item, _RetireMarker):
                self._finish_retire(item)
                continue
            batch = [item]
            deadline = time.perf_counter() + self.max_wait_seconds
            stop_after_batch = False
            pending_control = None
            while len(batch) < self.max_batch_size:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    nxt = self._queue.get(timeout=remaining)
                except queue.Empty:
                    break
                if nxt is _STOP:
                    stop_after_batch = True
                    break
                if isinstance(nxt, (GraphSwapTicket, _RetireMarker)):
                    # Close the batch: tickets behind the swap/marker see
                    # the post-control state, tickets ahead of it the old
                    # one (FIFO order).
                    pending_control = nxt
                    break
                batch.append(nxt)
            self._process_batch(batch)
            if isinstance(pending_control, GraphSwapTicket):
                self._apply_swap(pending_control, defer_retire=True)
            elif isinstance(pending_control, _RetireMarker):
                self._finish_retire(pending_control)
            if stop_after_batch:
                break

    def _process_batch(self, batch: List[InferenceTicket]) -> None:
        # One shared timestamp closes every ticket's queue span: they all
        # left the queue when this batch started processing.
        dequeued_at = time.perf_counter()
        groups: Dict[str, List[InferenceTicket]] = {}
        graphs: Dict[str, DirectedGraph] = {}
        for ticket in batch:
            ticket.trace.mark("queue", dequeued_at)
            key = ticket.graph.fingerprint()
            groups.setdefault(key, []).append(ticket)
            graphs.setdefault(key, ticket.graph)

        forwards = 0
        for key, tickets in groups.items():
            graph = graphs[key]
            try:
                # Shared-cache keys need the model signature on top of the
                # weights version: hyper-parameters outside the state dict
                # (e.g. SGC's num_steps) change the forward output without
                # changing any weight, same as preprocess_key does for the
                # operator cache.
                logits = None
                if self.cache_logits and self._logit_key_prefix is not None:
                    logits = self._logit_cache.get((*self._logit_key_prefix, key))
                if logits is None:
                    cache = self.cache.preprocess(self.model, graph)
                    if self._weights_version is None:
                        # All lazily-built modules exist after preprocess, so
                        # the state dict now covers every weight.
                        self._weights_version = state_fingerprint(self.model.state_dict())
                        self._logit_key_prefix = (
                            self.model.signature(),
                            self._weights_version,
                        )
                    cache_done = time.perf_counter()
                    logits = None
                    if self._trace_cache is not None:
                        logits = self._compiled_logits(key, graph, cache)
                    path = "compiled" if logits is not None else "eager"
                    if logits is None:
                        logits = self.model.predict_logits(graph, cache)
                    forwards += 1
                    if self.cache_logits:
                        # Full-graph tickets alias this array; freeze it so a
                        # client mutating ticket.logits in place cannot
                        # corrupt the cached copy served to later requests.
                        logits.setflags(write=False)
                        self._logit_cache.put((*self._logit_key_prefix, key), logits)
                    forward_done = time.perf_counter()
                else:
                    # Memoised hit: the whole compute stage was a dict read.
                    cache_done = forward_done = time.perf_counter()
                    path = "memoised"
            except BaseException as error:  # fan the failure out, keep serving
                for ticket in tickets:
                    # Each ticket gets its own exception object: clients
                    # re-raise concurrently and must not share a traceback.
                    ticket._fail(_clone_exception(error))
                continue
            for ticket in tickets:
                ticket.trace.mark("cache", cache_done)
                ticket.trace.mark("forward", forward_done)
                ticket.trace.annotate("path", path)
                try:
                    rows = logits if ticket.node_ids is None else logits[ticket.node_ids]
                    ticket._complete(rows)
                except BaseException as error:  # e.g. out-of-range node ids
                    ticket._fail(error)

        with self._metrics_lock:
            self._requests += len(batch)
            self._batches += 1
            self._forwards += forwards
        for ticket in batch:
            if ticket.latency_seconds is not None:
                self._latency.record_seconds(ticket.latency_seconds)
                self._trace_log.append(ticket.trace.as_dict())
