"""Serving layer: artifacts, operator caching and micro-batched inference.

Takes any trained registry model or :class:`repro.pipeline.AmudPipeline`
from "trained in memory" to "served under concurrent load":

* :mod:`repro.serving.artifacts` — versioned save/load of weights + config;
* :mod:`repro.serving.fingerprint` — content hashes of graphs and models;
* :mod:`repro.serving.cache` — bounded LRU reuse of ``preprocess()`` output;
* :mod:`repro.serving.engine` — the micro-batching :class:`InferenceServer`;
* :mod:`repro.serving.router` — the multi-artifact :class:`ShardRouter`
  front door with sync ``submit`` and asyncio ``asubmit``.
"""

from .artifacts import (
    FORMAT_VERSION,
    ModelArtifact,
    load_artifact,
    load_artifact_graph,
    restore_model,
    save_model,
)
from .cache import CacheStats, LRUCache, OperatorCache
from .engine import (
    InferenceServer,
    InferenceTicket,
    ServerOverloaded,
    ServerStats,
)
from .fingerprint import (
    array_digest,
    graph_fingerprint,
    model_fingerprint,
    preprocess_key,
    state_fingerprint,
)
from .router import RouterStats, ShardInfo, ShardRouter, UnknownShard

__all__ = [
    "FORMAT_VERSION",
    "ModelArtifact",
    "save_model",
    "load_artifact",
    "load_artifact_graph",
    "restore_model",
    "LRUCache",
    "OperatorCache",
    "CacheStats",
    "InferenceServer",
    "InferenceTicket",
    "ServerOverloaded",
    "ServerStats",
    "ShardRouter",
    "ShardInfo",
    "RouterStats",
    "UnknownShard",
    "array_digest",
    "graph_fingerprint",
    "model_fingerprint",
    "preprocess_key",
    "state_fingerprint",
]
