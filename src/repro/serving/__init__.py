"""Serving layer: artifacts, operator caching and micro-batched inference.

Takes any trained registry model or :class:`repro.api.ModelHandle` from
"trained in memory" to "served under concurrent load":

* :mod:`repro.serving.artifacts` — versioned save/load of weights + config;
* :mod:`repro.serving.fingerprint` — content hashes of graphs and models;
* :mod:`repro.serving.cache` — bounded LRU reuse of ``preprocess()`` output;
* :mod:`repro.serving.trace` — traced grad-free inference kernels: one
  eager forward compiled into a flat numpy program, replayed on cache-miss
  traffic (the ``compile`` mode of the engine and router);
* :mod:`repro.serving.stats` — the shared ``as_dict()``/``snapshot()``
  stats protocol every component speaks;
* :mod:`repro.serving.engine` — the micro-batching :class:`InferenceServer`;
* :mod:`repro.serving.router` — the multi-artifact :class:`ShardRouter`
  front door with sync ``submit`` and asyncio ``asubmit``;
* :mod:`repro.serving.http` — the stdlib-asyncio :class:`HttpServer`
  exposing a router over HTTP (``/predict``, ``/stats``, ``/metrics``,
  ``/traces``) with 429 load shedding.
"""

from .artifacts import (
    FORMAT_VERSION,
    ModelArtifact,
    load_artifact,
    load_artifact_graph,
    restore_model,
    save_model,
)
from .allocator import tune_allocator_for_churn
from .cache import CacheStats, LRUCache, OperatorCache, OperatorCacheStats
from .engine import (
    GraphSwapTicket,
    InferenceServer,
    InferenceTicket,
    ServerOverloaded,
    ServerStats,
)
from .http import BaseHttpServer, HttpServer, HttpStats
from .fingerprint import (
    array_digest,
    graph_fingerprint,
    model_fingerprint,
    preprocess_key,
    state_fingerprint,
)
from .router import RouterStats, ShardInfo, ShardRouter, UnknownShard
from .stats import Stats, StatsSource
from .trace import (
    COMPILE_MODES,
    FOLD_MODES,
    TraceCache,
    TraceCacheStats,
    TracedProgram,
    TraceError,
    compile_forward,
)

__all__ = [
    "FORMAT_VERSION",
    "ModelArtifact",
    "save_model",
    "load_artifact",
    "load_artifact_graph",
    "restore_model",
    "LRUCache",
    "OperatorCache",
    "CacheStats",
    "OperatorCacheStats",
    "BaseHttpServer",
    "HttpServer",
    "HttpStats",
    "GraphSwapTicket",
    "InferenceServer",
    "InferenceTicket",
    "ServerOverloaded",
    "ServerStats",
    "ShardRouter",
    "ShardInfo",
    "RouterStats",
    "UnknownShard",
    "Stats",
    "StatsSource",
    "COMPILE_MODES",
    "FOLD_MODES",
    "TraceCache",
    "TraceCacheStats",
    "tune_allocator_for_churn",
    "TracedProgram",
    "TraceError",
    "compile_forward",
    "array_digest",
    "graph_fingerprint",
    "model_fingerprint",
    "preprocess_key",
    "state_fingerprint",
]
