"""Asyncio HTTP front door over the :class:`~repro.serving.router.ShardRouter`.

Pure stdlib — ``asyncio.start_server`` plus hand-rolled HTTP/1.1 framing —
so serving over the network costs no dependency.  The framing, lifecycle
and counting machinery lives in :class:`BaseHttpServer`, which subclasses
specialise by providing a route table (:meth:`BaseHttpServer._handlers`)
and a ``/metrics`` payload; :class:`HttpServer` is the single-process
front door over one in-process router, and
:class:`repro.cluster.serve.ClusterHttpServer` reuses the same base over
a pool of worker processes.

One :class:`HttpServer` exposes a registered router as:

``POST /predict``
    ``{"node_ids": [...], "shard": "..."}`` → predictions plus the
    request's per-stage trace spans and latency.  Back-pressure is load
    *shedding*: a router at capacity answers ``429`` immediately instead
    of queueing the connection.
``GET /health``
    liveness plus shard count and uptime;
``GET /shards``
    the registered shards with their full engine snapshots (including the
    per-shard latency histograms);
``GET /stats``
    the router snapshot (JSON) with the HTTP layer's own counters under
    ``"http"``;
``GET /metrics``
    Prometheus text exposition 0.0.4 of every counter and histogram
    (:func:`repro.obs.prometheus.render_prometheus`);
``GET /traces``
    the most recent completed request traces across all shards
    (``?limit=`` bounds the count).

The server runs its own event loop on a daemon thread —
:meth:`BaseHttpServer.start` returns once the socket is bound (``port=0``
picks a free port), :meth:`BaseHttpServer.stop` shuts it down from any
thread — so it composes with the synchronous training / session code
without the caller owning an event loop.  Shutdown *drains*: requests
already being handled finish and deliver their responses (bounded by
``drain_timeout``); only idle keep-alive connections are cancelled.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from ..obs.prometheus import escape_label_value, render_prometheus
from .engine import ServerOverloaded
from .router import ShardRouter, UnknownShard
from .stats import Stats, StatsSource

#: default bind address; loopback because nothing here authenticates.
DEFAULT_HOST = "127.0.0.1"

#: default port (0 lets the OS pick, which tests and benchmarks use).
DEFAULT_PORT = 8100

#: default cap on a request body; /predict payloads are node-id lists.
DEFAULT_MAX_BODY_BYTES = 1 << 20

#: default bound on one /predict round trip through the router.
DEFAULT_REQUEST_TIMEOUT = 60.0

#: default bound on waiting for in-flight requests during shutdown.
DEFAULT_DRAIN_TIMEOUT = 5.0

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

#: routes counted by name; anything else folds into one bucket so a scan
#: of random paths cannot blow up the stats (or /metrics) cardinality.
KNOWN_ROUTES = ("/predict", "/health", "/shards", "/stats", "/metrics", "/traces")

_OTHER_ROUTE = "<other>"


@dataclass
class HttpStats(Stats):
    """Front-door HTTP counters.

    ``routes`` maps route → status code (as a string, for JSON) → count;
    unknown paths share the ``<other>`` bucket.  ``shed`` counts the 429
    and 503 responses — the load the server refused rather than queued.
    """

    connections: int = 0
    requests: int = 0
    shed: int = 0
    routes: Dict[str, Dict[str, int]] = field(default_factory=dict)


class BaseHttpServer(StatsSource):
    """HTTP/1.1 keep-alive server skeleton on a private event loop.

    Owns everything that is not application-specific: the daemon serving
    thread, socket lifecycle, request framing, per-route/status counters,
    and drain-on-shutdown.  A subclass provides :meth:`_handlers` — a
    mapping of path → (method, async handler) — and (optionally) its own
    :meth:`metrics_text`.  ``start()``/``stop()`` are safe to call from
    synchronous code.

    ``stop()`` first closes the listener, then waits up to
    ``drain_timeout`` seconds for requests that are mid-handler to write
    their responses, and only then cancels whatever is left (idle
    keep-alive connections, or handlers that overstayed the drain).
    """

    def __init__(
        self,
        *,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    ) -> None:
        if max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        if drain_timeout < 0:
            raise ValueError(f"drain_timeout must be >= 0, got {drain_timeout}")
        self.host = host
        self.port = port
        self.max_body_bytes = max_body_bytes
        self.request_timeout = request_timeout
        self.drain_timeout = drain_timeout
        self._lock = threading.Lock()
        self._connections = 0
        self._requests = 0
        self._shed = 0
        self._routes: Dict[str, Dict[str, int]] = {}
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._active: set = set()
        self._busy: set = set()
        self._ready = threading.Event()
        self._failure: Optional[BaseException] = None
        self._started_at = time.time()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "BaseHttpServer":
        """Bind and serve on a daemon thread; returns once the port is open."""
        if self._thread is not None:
            raise RuntimeError("HTTP server is already started")
        self._ready.clear()
        self._failure = None
        self._thread = threading.Thread(
            target=self._run, name="repro-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("HTTP server did not come up within 30s")
        if self._failure is not None:
            failure, self._failure = self._failure, None
            self._thread.join(timeout=5.0)
            self._thread = None
            raise failure
        return self

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        """Stop listening, drain in-flight requests, join the thread."""
        thread = self._thread
        if thread is None:
            return
        loop, shutdown = self._loop, self._shutdown
        if loop is not None and shutdown is not None and loop.is_running():
            loop.call_soon_threadsafe(shutdown.set)
        thread.join(timeout)
        self._thread = None

    def __enter__(self) -> "BaseHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._amain())
        except BaseException as error:  # surfaced to start() via _failure
            self._failure = error
        finally:
            self._loop = None
            loop.close()
            self._ready.set()

    async def _amain(self) -> None:
        self._shutdown = asyncio.Event()
        server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        # port=0 binds an ephemeral port; publish the real one before the
        # starting thread is released.
        self.port = server.sockets[0].getsockname()[1]
        self._started_at = time.time()
        self._ready.set()
        async with server:
            await self._shutdown.wait()
        # Drain: a request that is mid-handler gets to finish and deliver
        # its response — killing it would turn a graceful restart into a
        # dropped request.  Only after the drain window do we cancel what
        # is left (idle keep-alive connections, overstaying handlers).
        loop = asyncio.get_event_loop()
        deadline = loop.time() + self.drain_timeout
        while self._busy and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for task in list(self._active):
            task.cancel()
        if self._active:
            await asyncio.gather(*self._active, return_exceptions=True)

    # ------------------------------------------------------------------ #
    # Stats
    # ------------------------------------------------------------------ #
    def stats(self) -> HttpStats:
        with self._lock:
            return HttpStats(
                connections=self._connections,
                requests=self._requests,
                shed=self._shed,
                routes={route: dict(by) for route, by in self._routes.items()},
            )

    def _count(self, route: str, status: int) -> None:
        if route not in KNOWN_ROUTES:
            route = _OTHER_ROUTE
        with self._lock:
            self._requests += 1
            if status in (429, 503):
                self._shed += 1
            by_status = self._routes.setdefault(route, {})
            key = str(status)
            by_status[key] = by_status.get(key, 0) + 1

    def _http_metrics_lines(self) -> str:
        """Prometheus exposition of the base HTTP counters."""
        stats = self.stats()
        lines = [
            "# HELP repro_http_connections_total TCP connections accepted",
            "# TYPE repro_http_connections_total counter",
            f"repro_http_connections_total {stats.connections}",
            "# HELP repro_http_shed_total requests answered 429/503 under back-pressure",
            "# TYPE repro_http_shed_total counter",
            f"repro_http_shed_total {stats.shed}",
            "# HELP repro_http_requests_total HTTP requests by route and status",
            "# TYPE repro_http_requests_total counter",
        ]
        for route in sorted(stats.routes):
            for status in sorted(stats.routes[route]):
                labels = (
                    f'route="{escape_label_value(route)}",'
                    f'status="{escape_label_value(status)}"'
                )
                lines.append(
                    f"repro_http_requests_total{{{labels}}} {stats.routes[route][status]}"
                )
        return "\n".join(lines) + "\n"

    def metrics_text(self) -> str:
        """The ``/metrics`` payload; subclasses prepend their own series."""
        return self._http_metrics_lines()

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._active.add(task)
        with self._lock:
            self._connections += 1
        try:
            while await self._handle_one(reader, writer):
                if self._shutdown is not None and self._shutdown.is_set():
                    break  # draining: no new requests on this connection
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
            TimeoutError,
        ):
            pass  # client hung up mid-request; nothing to answer
        except asyncio.CancelledError:
            pass  # server shutting down under this idle connection
        finally:
            if task is not None:
                self._active.discard(task)
                self._busy.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                pass

    async def _handle_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns whether to keep the connection open."""
        try:
            request_line = await reader.readline()
        except ValueError:  # line longer than the stream limit
            await self._respond(writer, _OTHER_ROUTE, 400, {"error": "request line too long"}, close=True)
            return False
        if not request_line:
            return False  # clean EOF between requests
        # From here this connection is mid-request: the drain in _amain
        # waits for it to write its response before tearing anything down.
        task = asyncio.current_task()
        if task is not None:
            self._busy.add(task)
        try:
            return await self._serve_request(request_line, reader, writer)
        finally:
            if task is not None:
                self._busy.discard(task)

    async def _serve_request(
        self,
        request_line: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> bool:
        parts = request_line.decode("latin-1", "replace").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            await self._respond(writer, _OTHER_ROUTE, 400, {"error": "malformed request line"}, close=True)
            return False
        method, target, version = parts

        headers: Dict[str, str] = {}
        while True:
            try:
                header_line = await reader.readline()
            except ValueError:
                await self._respond(writer, _OTHER_ROUTE, 400, {"error": "header too long"}, close=True)
                return False
            if header_line in (b"\r\n", b"\n", b""):
                break
            name, separator, value = header_line.decode("latin-1", "replace").partition(":")
            if not separator or len(headers) >= 100:
                await self._respond(writer, _OTHER_ROUTE, 400, {"error": "malformed header"}, close=True)
                return False
            headers[name.strip().lower()] = value.strip()

        try:
            content_length = int(headers.get("content-length", "0") or "0")
        except ValueError:
            await self._respond(writer, _OTHER_ROUTE, 400, {"error": "bad Content-Length"}, close=True)
            return False
        if content_length < 0 or content_length > self.max_body_bytes:
            await self._respond(
                writer,
                _OTHER_ROUTE,
                413,
                {"error": f"body exceeds {self.max_body_bytes} bytes"},
                close=True,
            )
            return False
        body = await reader.readexactly(content_length) if content_length else b""

        url = urlsplit(target)
        path = url.path or "/"
        keep_alive = headers.get("connection", "").lower() != "close" and version != "HTTP/1.0"

        status, payload = await self._route(method, path, url.query, body)
        if isinstance(payload, str):
            raw = payload.encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        else:
            raw = (json.dumps(payload) + "\n").encode("utf-8")
            content_type = "application/json"
        self._count(path, status)
        await self._write(writer, status, raw, content_type, close=not keep_alive)
        return keep_alive

    async def _respond(
        self, writer: asyncio.StreamWriter, route: str, status: int, payload: Dict[str, object], *, close: bool
    ) -> None:
        self._count(route, status)
        raw = (json.dumps(payload) + "\n").encode("utf-8")
        await self._write(writer, status, raw, "application/json", close=close)

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        raw: bytes,
        content_type: str,
        *,
        close: bool,
    ) -> None:
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(raw)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + raw)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _handlers(
        self,
    ) -> Dict[str, Tuple[str, Callable[..., Awaitable[Tuple[int, object]]]]]:
        """path → (expected method, async handler); provided by subclasses."""
        raise NotImplementedError

    async def _route(
        self, method: str, path: str, query: str, body: bytes
    ) -> Tuple[int, object]:
        handlers = self._handlers()
        entry = handlers.get(path)
        if entry is None:
            return 404, {"error": f"unknown path {path!r}", "routes": list(handlers)}
        expected, handler = entry
        if method != expected:
            return 405, {"error": f"{path} expects {expected}, got {method}"}
        try:
            return await handler(query=query, body=body)
        except Exception as error:  # a handler bug must not kill the loop
            return 500, {"error": f"{type(error).__name__}: {error}"}


class HttpServer(BaseHttpServer):
    """Serve one in-process :class:`ShardRouter` over HTTP/1.1.

    Request handling awaits :meth:`ShardRouter.asubmit_ticket`, so slot
    waits and inference never block the loop.  The router's lifecycle
    stays the caller's (a stopped HTTP server leaves the router serving
    in-process traffic).
    """

    def __init__(
        self,
        router: ShardRouter,
        *,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
    ) -> None:
        super().__init__(
            host=host,
            port=port,
            max_body_bytes=max_body_bytes,
            request_timeout=request_timeout,
            drain_timeout=drain_timeout,
        )
        self.router = router

    def metrics_text(self) -> str:
        """The ``/metrics`` payload: router snapshot + HTTP counters."""
        return (
            render_prometheus(self.router.snapshot(), prefix="repro_router")
            + self._http_metrics_lines()
        )

    def _handlers(
        self,
    ) -> Dict[str, Tuple[str, Callable[..., Awaitable[Tuple[int, object]]]]]:
        return {
            "/predict": ("POST", self._handle_predict),
            "/health": ("GET", self._handle_health),
            "/shards": ("GET", self._handle_shards),
            "/stats": ("GET", self._handle_stats),
            "/metrics": ("GET", self._handle_metrics),
            "/traces": ("GET", self._handle_traces),
        }

    async def _handle_health(self, *, query: str, body: bytes) -> Tuple[int, object]:
        return 200, {
            "status": "ok",
            "shards": len(self.router),
            "uptime_s": round(time.time() - self._started_at, 3),
        }

    async def _handle_shards(self, *, query: str, body: bytes) -> Tuple[int, object]:
        return 200, {
            "shards": [
                {
                    "name": info.name,
                    "model": info.model_name,
                    "fingerprint": info.fingerprint,
                    "stats": info.engine.snapshot(),
                }
                for info in self.router.shards()
            ]
        }

    async def _handle_stats(self, *, query: str, body: bytes) -> Tuple[int, object]:
        snapshot = self.router.snapshot()
        snapshot["http"] = self.snapshot()
        return 200, snapshot

    async def _handle_metrics(self, *, query: str, body: bytes) -> Tuple[int, object]:
        return 200, self.metrics_text()

    async def _handle_traces(self, *, query: str, body: bytes) -> Tuple[int, object]:
        params = parse_qs(query)
        raw_limit = params.get("limit", ["50"])[-1]
        try:
            limit = int(raw_limit)
        except ValueError:
            return 400, {"error": f"limit must be an integer, got {raw_limit!r}"}
        return 200, {"traces": self.router.recent_traces(limit=limit)}

    async def _handle_predict(self, *, query: str, body: bytes) -> Tuple[int, object]:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, {"error": f"body is not valid JSON: {error}"}
        if not isinstance(payload, dict):
            return 400, {"error": "body must be a JSON object"}

        node_ids = payload.get("node_ids")
        if node_ids is not None:
            if not isinstance(node_ids, list) or not all(
                isinstance(node, int) and not isinstance(node, bool) for node in node_ids
            ):
                return 400, {"error": "node_ids must be a list of integers"}
        shard = payload.get("shard")
        if shard is not None and not isinstance(shard, str):
            return 400, {"error": "shard must be a string"}

        # Resolve before paying for a back-pressure slot so an unknown
        # shard is a routing error (404), never an overload signal.
        try:
            info = self.router.resolve(shard=shard)
        except UnknownShard as error:
            # KeyError subclasses repr() their message in __str__; unwrap it.
            return 404, {"error": error.args[0] if error.args else str(error)}

        try:
            ticket = await self.router.asubmit_ticket(
                node_ids,
                shard=info.name,
                block=False,
                timeout=self.request_timeout,
            )
            predictions = ticket.result(timeout=0)
        except ServerOverloaded:
            return 429, {
                "error": "router is at capacity; retry later",
                "max_pending": self.router.max_pending,
            }
        except asyncio.TimeoutError:
            return 500, {"error": f"request timed out after {self.request_timeout}s"}
        except (IndexError, ValueError, TypeError) as error:
            return 400, {"error": f"{type(error).__name__}: {error}"}

        spans = ticket.spans()
        return 200, {
            "shard": info.name,
            "predictions": predictions.tolist(),
            "latency_ms": round(1e3 * (ticket.latency_seconds or 0.0), 4),
            "spans": {stage: round(value, 4) for stage, value in spans.items()},
            "total_ms": round(sum(spans.values()), 4),
        }
