"""Serving-layer view of the content-hashing primitives.

The implementations live in the leaf module :mod:`repro.fingerprint` (so
the graph and model layers can use them without importing the serving
package); this module re-exports them under the serving namespace.
"""

from __future__ import annotations

from ..fingerprint import (
    DIGEST_SIZE,
    GraphFingerprint,
    array_digest,
    canonical_csr,
    fingerprint_state,
    graph_fingerprint,
    model_fingerprint,
    preprocess_key,
    state_fingerprint,
)

__all__ = [
    "DIGEST_SIZE",
    "GraphFingerprint",
    "array_digest",
    "canonical_csr",
    "fingerprint_state",
    "graph_fingerprint",
    "model_fingerprint",
    "preprocess_key",
    "state_fingerprint",
]
