"""Multi-artifact shard routing: many engines behind one front door.

One :class:`repro.serving.engine.InferenceServer` serves one loaded
artifact.  :class:`ShardRouter` scales that to many: each registered shard
binds a trained model to the graph it serves, requests are routed by
fingerprinting their graph (or by explicit shard name), and a bounded
front-door slot pool applies back-pressure across all shards.

Two submission paths share that pool:

``submit()``
    Synchronous; blocks while the router is at capacity (or raises
    :class:`repro.serving.engine.ServerOverloaded` with ``block=False``)
    and returns the engine's :class:`InferenceTicket`.

``asubmit()``
    A coroutine for asyncio front-ends; slot acquisition runs in a thread
    so the event loop never blocks, and the ticket resolves into an asyncio
    future completed from the worker thread.

All shards share one :class:`OperatorCache` and one logit LRU.  The logit
entries are keyed by (weights version, graph fingerprint), so hot-swapped
re-trains of the same architecture on the same graph serve side by side
without stale hits.
"""

from __future__ import annotations

import asyncio
import functools
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..graph.delta import GraphDelta
from ..graph.digraph import DirectedGraph
from ..models.base import NodeClassifier
from ..obs.histogram import HistogramStats
from .artifacts import ModelArtifact, restore_model
from .cache import LRUCache, OperatorCache
from .engine import (
    GraphSwapTicket,
    InferenceServer,
    InferenceTicket,
    ServerOverloaded,
    ServerStats,
)
from .stats import Stats, StatsSource
from .trace import COMPILE_MODES, TraceCache, TraceCacheStats

PathLike = Union[str, Path]

#: default cap on in-flight requests across every shard of one router.
DEFAULT_MAX_PENDING = 256

#: default capacity of the logit LRU shared by all shards.
DEFAULT_LOGIT_CAPACITY = 32


class UnknownShard(KeyError):
    """No registered shard matches the requested name or graph fingerprint."""


@dataclass
class ShardInfo:
    """One registered shard: a named engine bound to a fingerprinted graph."""

    name: str
    fingerprint: str
    engine: InferenceServer
    artifact: Optional[ModelArtifact] = None

    @property
    def model_name(self) -> str:
        if self.artifact is not None:
            return self.artifact.model_name
        return getattr(self.engine.model, "_registry_name", type(self.engine.model).__name__)


@dataclass
class RouterStats(Stats):
    """Front-door counters plus a per-shard engine snapshot."""

    derived = ("p50_latency_ms", "p95_latency_ms", "p99_latency_ms")

    submitted: int
    rejected: int
    max_pending: int
    shards: Dict[str, ServerStats]
    #: router-wide request latency: the per-shard engine histograms merged
    #: bucket-by-bucket, so the quantiles cover every shard's traffic.
    latency: HistogramStats = field(default_factory=HistogramStats)
    #: counters of the trace cache shared by every shard (``None`` when
    #: the router serves eagerly).
    trace: Optional[TraceCacheStats] = None

    @property
    def p50_latency_ms(self) -> float:
        return self.latency.p50_ms

    @property
    def p95_latency_ms(self) -> float:
        return self.latency.p95_ms

    @property
    def p99_latency_ms(self) -> float:
        return self.latency.p99_ms


class ShardRouter(StatsSource):
    """Fan requests out to per-artifact inference engines.

    Routing rules, in order:

    1. an explicit ``shard=`` name wins;
    2. otherwise the request graph's fingerprint selects the shard bound to
       that exact graph content;
    3. with neither, a single-shard router routes to its only shard.

    Several shards may serve the *same* graph (hot-swapped weights); their
    shared fingerprint is then ambiguous and those requests must name their
    shard explicitly.
    """

    def __init__(
        self,
        *,
        max_pending: int = DEFAULT_MAX_PENDING,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        cache_logits: bool = True,
        logit_cache_capacity: int = DEFAULT_LOGIT_CAPACITY,
        operator_cache: Optional[OperatorCache] = None,
        engine_max_pending: Optional[int] = None,
        compile: str = "auto",
        trace_cache: Optional[TraceCache] = None,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        if compile not in COMPILE_MODES:
            raise ValueError(
                f"unknown compile mode {compile!r}; expected one of {COMPILE_MODES}"
            )
        self.max_pending = max_pending
        self.compile_mode = compile
        # One trace cache for the whole router, like the operator cache:
        # compiled programs are keyed by (signature, graph fingerprint) and
        # versioned by weights, so shards can never collide.
        if trace_cache is None and compile != "eager":
            trace_cache = TraceCache()
        self._trace_cache = trace_cache if compile != "eager" else None
        self._engine_kwargs = {
            "max_batch_size": max_batch_size,
            "max_wait_ms": max_wait_ms,
            "cache_logits": cache_logits,
            # Per-engine in-flight bound on top of the router-wide slots,
            # so one hot shard cannot monopolise the whole front door.
            "max_pending": engine_max_pending,
            "compile": compile,
            "trace_cache": self._trace_cache,
        }
        self._operator_cache = operator_cache if operator_cache is not None else OperatorCache()
        self._logit_cache = LRUCache(logit_cache_capacity)
        self._shards: Dict[str, ShardInfo] = {}
        self._by_fingerprint: Dict[str, List[str]] = {}
        self._slots = threading.BoundedSemaphore(max_pending)
        self._lock = threading.Lock()
        self._running = False
        self._submitted = 0
        self._rejected = 0
        # Lazily-built pool for asubmit's blocking slot waits; owning it
        # (instead of borrowing asyncio's default executor) keeps a
        # saturated router from starving unrelated run_in_executor work.
        self._submit_executor: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ #
    # Shard registration
    # ------------------------------------------------------------------ #
    def add_shard(
        self,
        model: NodeClassifier,
        graph: DirectedGraph,
        *,
        name: Optional[str] = None,
        artifact: Optional[ModelArtifact] = None,
        preprocess_cache: Optional[Dict[str, object]] = None,
    ) -> str:
        """Register a trained model + graph as a shard; returns its name."""
        fingerprint = graph.fingerprint()
        engine = InferenceServer(
            model,
            graph,
            operator_cache=self._operator_cache,
            logit_cache=self._logit_cache,
            **self._engine_kwargs,
        )
        with self._lock:
            if name is None:
                # Prefer the graph's dataset name — the natural routing key
                # for HTTP clients (`/predict {"shard": "texas"}`) — unless
                # it is the DirectedGraph default or already registered.
                if graph.name and graph.name != "graph" and graph.name not in self._shards:
                    name = graph.name
                else:
                    index = len(self._shards)
                    name = f"shard-{index}"
                    while name in self._shards:  # an explicit name may sit on shard-N
                        index += 1
                        name = f"shard-{index}"
            if name in self._shards:
                raise ValueError(f"shard name {name!r} is already registered")
            self._shards[name] = ShardInfo(
                name=name, fingerprint=fingerprint, engine=engine, artifact=artifact
            )
            self._by_fingerprint.setdefault(fingerprint, []).append(name)
            # Keep one preprocess entry per shard resident; otherwise a
            # router with more shards than the cache default silently falls
            # back to cold-path latency on every request.
            self._operator_cache.grow(len(self._shards))
            if self._trace_cache is not None:
                self._trace_cache.grow(len(self._shards))
            # Seeded after the capacity grows — the other order could evict
            # an existing shard's entry from a cache already at capacity.
            if preprocess_cache is not None:
                self._operator_cache.seed(model, graph, preprocess_cache)
            # Started under the lock: a stale running snapshot would let a
            # concurrent stop() finish first and leave this worker orphaned.
            if self._running:
                engine.start()
        return name

    def update_shard(
        self,
        name: str,
        delta: "GraphDelta",
        *,
        timeout: Optional[float] = 30.0,
    ) -> GraphSwapTicket:
        """Apply a live :class:`~repro.graph.GraphDelta` to a named shard.

        Delegates to the shard engine's :meth:`InferenceServer.swap_graph`
        — the old fingerprint keeps serving until the new one is warm,
        and its cache entries survive until every request bound to it has
        drained — and then atomically re-points the router's fingerprint
        index, so in-flight fingerprint-routed traffic never sees a torn
        route: requests resolve either the old fingerprint (answered with
        pre-delta state) or the new one, never an error.  Only cache
        entries keyed by the touched graph's old fingerprint drop;
        untouched shards stay warm.  Returns the completed
        :class:`GraphSwapTicket`.
        """
        with self._lock:
            info = self._shards.get(name)
        if info is None:
            raise UnknownShard(
                f"unknown shard {name!r}; registered: {sorted(self._shards)}"
            )
        swap = info.engine.swap_graph(delta, block=True, timeout=timeout)
        new_graph = swap.result(timeout=0)  # re-raise engine-side failures
        new_fingerprint = new_graph.fingerprint()
        with self._lock:
            old_fingerprint = info.fingerprint
            names = self._by_fingerprint.get(old_fingerprint)
            if names is not None and name in names:
                names.remove(name)
                if not names:
                    del self._by_fingerprint[old_fingerprint]
            info.fingerprint = new_fingerprint
            peers = self._by_fingerprint.setdefault(new_fingerprint, [])
            if name not in peers:
                peers.append(name)
        return swap

    def add_artifact(self, directory: PathLike, *, name: Optional[str] = None) -> str:
        """Load a serving artifact and register it as a shard.

        The restore runs its preprocess *through* the shared operator
        cache: a hit — a previously-registered shard of the same
        configuration, or an entry warmed from an on-disk spill directory
        (:meth:`OperatorCache.warm`) — skips the precomputation entirely,
        and a miss seeds the cache so the shard's first request is warm.
        """
        # Grown before the restore fills the cache: the fill would otherwise
        # evict an entry another shard (or a warmed-from-disk artifact still
        # to be loaded) needs.  Sized against both the shard count and the
        # current entry count, because warm() may have preloaded more
        # entries than there are registered shards.
        self._operator_cache.grow(
            max(len(self) + 1, len(self._operator_cache) + 1)
        )
        model, cache, artifact, graph = restore_model(
            directory, operator_cache=self._operator_cache
        )
        return self.add_shard(
            model, graph, name=name, artifact=artifact, preprocess_cache=cache
        )

    @classmethod
    def from_artifacts(
        cls, directories: Sequence[PathLike], **router_kwargs
    ) -> "ShardRouter":
        """Build a router serving one shard per artifact directory."""
        router = cls(**router_kwargs)
        for directory in directories:
            router.add_artifact(directory)
        return router

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def operator_cache(self) -> OperatorCache:
        """The preprocess cache shared by every shard (warm/spill target)."""
        return self._operator_cache

    @property
    def trace_cache(self) -> Optional[TraceCache]:
        """The compiled-program cache shared by every shard (warm/spill
        target); ``None`` when the router serves eagerly."""
        return self._trace_cache

    def shards(self) -> List[ShardInfo]:
        with self._lock:
            return list(self._shards.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._shards)

    def stats(self) -> RouterStats:
        with self._lock:
            shards = dict(self._shards)
            submitted, rejected = self._submitted, self._rejected
        shard_stats = {name: info.engine.stats() for name, info in shards.items()}
        return RouterStats(
            submitted=submitted,
            rejected=rejected,
            max_pending=self.max_pending,
            shards=shard_stats,
            latency=HistogramStats.merged(s.latency for s in shard_stats.values()),
            trace=self._trace_cache.stats() if self._trace_cache is not None else None,
        )

    def recent_traces(self, limit: Optional[int] = 50) -> List[Dict[str, object]]:
        """Most-recent-first request traces across every shard.

        Each trace dict gains a ``shard`` key naming the engine that served
        it; ordering merges the per-engine ring buffers by submission time.
        """
        with self._lock:
            shards = list(self._shards.values())
        traces: List[Dict[str, object]] = []
        for info in shards:
            for trace in info.engine.recent_traces():
                entry = dict(trace)
                entry["shard"] = info.name
                traces.append(entry)
        traces.sort(key=lambda entry: entry.get("started_at", 0.0), reverse=True)
        return traces if limit is None else traces[: max(0, limit)]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ShardRouter":
        with self._lock:
            self._running = True
            engines = [info.engine for info in self._shards.values()]
        for engine in engines:
            engine.start()
        return self

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        with self._lock:
            self._running = False
            engines = [info.engine for info in self._shards.values()]
            executor, self._submit_executor = self._submit_executor, None
        for engine in engines:
            engine.stop(timeout)
        if executor is not None:
            executor.shutdown(wait=False)

    def __enter__(self) -> "ShardRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _resolve(self, graph: Optional[DirectedGraph], shard: Optional[str]) -> ShardInfo:
        with self._lock:
            if not self._shards:
                raise UnknownShard("router has no shards; add_shard()/add_artifact() first")
            if shard is not None:
                info = self._shards.get(shard)
                if info is None:
                    raise UnknownShard(
                        f"unknown shard {shard!r}; registered: {sorted(self._shards)}"
                    )
                return info
            if graph is not None:
                fingerprint = graph.fingerprint()
                names = self._by_fingerprint.get(fingerprint, [])
                if not names:
                    raise UnknownShard(
                        f"no shard serves graph fingerprint {fingerprint[:12]}…; "
                        f"registered: {sorted(self._shards)}"
                    )
                if len(names) > 1:
                    raise UnknownShard(
                        f"graph fingerprint {fingerprint[:12]}… is served by several "
                        f"shards ({names}); pass shard= to pick one"
                    )
                return self._shards[names[0]]
            if len(self._shards) == 1:
                return next(iter(self._shards.values()))
            raise UnknownShard(
                f"router serves {len(self._shards)} shards; pass graph= or shard= to route"
            )

    def resolve(
        self, graph: Optional[DirectedGraph] = None, shard: Optional[str] = None
    ) -> ShardInfo:
        """Apply the routing rules without submitting anything.

        Front-ends use this to validate a request's target — raising
        :class:`UnknownShard` with the full routing diagnostics — before
        paying for a slot."""
        return self._resolve(graph, shard)

    # ------------------------------------------------------------------ #
    # Front door
    # ------------------------------------------------------------------ #
    def submit(
        self,
        node_ids: Optional[Sequence[int]] = None,
        graph: Optional[DirectedGraph] = None,
        *,
        shard: Optional[str] = None,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> InferenceTicket:
        """Route one request and return the owning engine's ticket.

        A front-door slot is held from submission until the ticket
        completes; at ``max_pending`` in-flight requests further submits
        block (``block=True``) or raise :class:`ServerOverloaded`.
        """
        info = self._resolve(graph, shard)
        if not self._slots.acquire(blocking=block, timeout=timeout if block else None):
            with self._lock:
                # Only capacity rejections count here — engine-side
                # validation errors below are the client's problem, not an
                # overload signal for operators to alert on.
                self._rejected += 1
            raise ServerOverloaded(
                f"router is at capacity ({self.max_pending} requests in flight)"
            )
        try:
            # Forward the caller's waiting policy: with a per-engine
            # max_pending, a saturated shard must honour block=False /
            # timeout= too, not fall back to an unbounded wait.
            ticket = info.engine.submit(node_ids, graph, block=block, timeout=timeout)
        except BaseException as error:
            self._slots.release()
            if isinstance(error, ServerOverloaded):
                # An engine at capacity is an overload signal too, same as
                # a saturated front door.
                with self._lock:
                    self._rejected += 1
            raise
        ticket.add_done_callback(lambda _ticket: self._slots.release())
        with self._lock:
            self._submitted += 1
        return ticket

    def predict(
        self,
        node_ids: Optional[Sequence[int]] = None,
        graph: Optional[DirectedGraph] = None,
        *,
        shard: Optional[str] = None,
        timeout: Optional[float] = 60.0,
    ) -> np.ndarray:
        """Blocking convenience wrapper around :meth:`submit`.

        ``timeout`` bounds each phase separately: slot acquisition on a
        saturated front door (:class:`ServerOverloaded` on expiry) and then
        the wait for the prediction itself.
        """
        return self.submit(node_ids, graph, shard=shard, timeout=timeout).result(timeout)

    async def asubmit_ticket(
        self,
        node_ids: Optional[Sequence[int]] = None,
        graph: Optional[DirectedGraph] = None,
        *,
        shard: Optional[str] = None,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> InferenceTicket:
        """Async submit resolving to the *completed* ticket.

        The HTTP front door uses this instead of :meth:`asubmit` because the
        ticket carries more than the predictions: the trace spans and
        latency that go into the response payload.  The returned ticket is
        already done — ``ticket.result(timeout=0)`` never blocks (it raises
        the request's failure, if any).  ``block=False`` makes a saturated
        front door raise :class:`ServerOverloaded` immediately, which the
        HTTP layer maps to 429.
        """
        loop = asyncio.get_running_loop()
        submit = functools.partial(
            self.submit, node_ids, graph, shard=shard, block=block, timeout=timeout
        )
        with self._lock:
            if self._submit_executor is None:
                self._submit_executor = ThreadPoolExecutor(
                    max_workers=min(32, self.max_pending),
                    thread_name_prefix="shard-router-submit",
                )
            executor = self._submit_executor
        ticket = await loop.run_in_executor(executor, submit)
        future: "asyncio.Future[InferenceTicket]" = loop.create_future()

        def resolve(completed: InferenceTicket) -> None:
            def apply() -> None:
                if not future.cancelled():
                    future.set_result(completed)

            loop.call_soon_threadsafe(apply)

        ticket.add_done_callback(resolve)
        if timeout is not None:
            return await asyncio.wait_for(future, timeout)
        return await future

    async def asubmit(
        self,
        node_ids: Optional[Sequence[int]] = None,
        graph: Optional[DirectedGraph] = None,
        *,
        shard: Optional[str] = None,
        block: bool = True,
        timeout: Optional[float] = None,
    ) -> np.ndarray:
        """Async front door: await the routed request's predictions.

        Back-pressure is preserved — the slot acquisition of :meth:`submit`
        runs in a pool owned by this router (never asyncio's shared default
        executor), so a saturated router suspends this coroutine without
        blocking the event loop or starving other ``run_in_executor`` users,
        and the slot is held until the prediction resolves.  ``timeout``
        bounds each phase separately: a saturated front door raises
        :class:`ServerOverloaded` after ``timeout`` seconds (immediately
        with ``block=False``), and a routed request that misses its deadline
        raises ``asyncio.TimeoutError``.
        """
        ticket = await self.asubmit_ticket(
            node_ids, graph, shard=shard, block=block, timeout=timeout
        )
        return ticket.result(timeout=0)
