"""Sparsity-scenario runner (paper Fig. 7).

Three kinds of sparsity are injected into a base dataset and a model suite
is retrained at every level:

* feature sparsity — a fraction of (non-training) nodes lose their feature
  vectors entirely;
* edge sparsity — a fraction of directed edges is removed;
* label sparsity — the training set shrinks to a fixed number of labelled
  nodes per class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.transforms import sparsify_edges, sparsify_features, sparsify_labels
from .experiment import ExperimentResult, _repeated_impl
from .trainer import Trainer

SPARSITY_KINDS = ("feature", "edge", "label")


@dataclass
class SparsityPoint:
    """Result of one (model, sparsity-kind, level) cell."""

    kind: str
    level: float
    result: ExperimentResult


def apply_sparsity(
    graph: DirectedGraph,
    kind: str,
    level: float,
    seed: int = 0,
) -> DirectedGraph:
    """Produce the sparsified variant of ``graph`` for one sweep point."""
    if kind not in SPARSITY_KINDS:
        raise ValueError(f"unknown sparsity kind {kind!r}; expected one of {SPARSITY_KINDS}")
    rng = np.random.default_rng(seed)
    if kind == "feature":
        return sparsify_features(graph, missing_rate=level, rng=rng)
    if kind == "edge":
        return sparsify_edges(graph, drop_rate=level, rng=rng)
    return sparsify_labels(graph, labels_per_class=int(level), rng=rng)


def sparsity_sweep(
    model_names: Iterable[str],
    graph: DirectedGraph,
    kind: str,
    levels: Sequence[float],
    seeds: Sequence[int] = (0, 1),
    trainer: Optional[Trainer] = None,
    model_kwargs: Optional[Dict[str, Dict]] = None,
) -> List[SparsityPoint]:
    """Retrain every model at every sparsity level of one kind."""
    model_kwargs = model_kwargs or {}
    points: List[SparsityPoint] = []
    for level in levels:
        sparsified = apply_sparsity(graph, kind, level, seed=0)
        for name in model_names:
            result = _repeated_impl(
                name,
                sparsified,
                seeds,
                trainer,
                model_kwargs.get(name),
            )
            points.append(SparsityPoint(kind=kind, level=float(level), result=result))
    return points


def format_sparsity_table(points: Sequence[SparsityPoint]) -> str:
    """Render a sweep as ``model x level`` rows of test accuracy."""
    levels = sorted({point.level for point in points})
    models: List[str] = []
    for point in points:
        if point.result.model not in models:
            models.append(point.result.model)
    lookup = {(point.result.model, point.level): point.result for point in points}
    kind = points[0].kind if points else "?"
    header = [f"{kind + ' level':>16s}"] + [f"{level:>10.2f}" for level in levels]
    lines = ["  ".join(header)]
    for model in models:
        cells = [f"{model:>16s}"]
        for level in levels:
            result = lookup.get((model, level))
            cells.append(f"{100 * result.test_mean:>10.1f}" if result else f"{'-':>10s}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
