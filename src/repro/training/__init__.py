"""Training harness: trainer, repeated experiments and sparsity sweeps."""

from .experiment import (
    ExperimentResult,
    average_rank,
    format_results_table,
    rank_results,
    run_model_suite,
    run_repeated,
    run_single,
)
from .sparsity import (
    SPARSITY_KINDS,
    SparsityPoint,
    apply_sparsity,
    format_sparsity_table,
    sparsity_sweep,
)
from .trainer import Trainer, TrainResult

__all__ = [
    "Trainer",
    "TrainResult",
    "ExperimentResult",
    "run_single",
    "run_repeated",
    "run_model_suite",
    "rank_results",
    "average_rank",
    "format_results_table",
    "SparsityPoint",
    "SPARSITY_KINDS",
    "apply_sparsity",
    "sparsity_sweep",
    "format_sparsity_table",
]
