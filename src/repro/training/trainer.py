"""Full-batch semi-supervised training loop with early stopping.

The :class:`Trainer` drives any :class:`repro.models.NodeClassifier`:

1. ``model.preprocess(graph)`` builds the training-independent cache (this
   is where decoupled models do their propagation);
2. each epoch runs a forward pass, masked cross-entropy on the training
   nodes, backward pass and an Adam/SGD step;
3. validation accuracy is tracked every epoch; the parameters of the best
   validation epoch are restored before the final test evaluation
   (early stopping with patience).

The per-epoch history is kept so the convergence-curve benchmark (Fig. 5)
can be regenerated directly from :class:`TrainResult`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..graph.digraph import DirectedGraph
from ..graph.splits import validate_splits
from ..metrics.classification import accuracy
from ..models.base import NodeClassifier
from ..nn import Adam, SGD
from ..nn import functional as F


@dataclass
class TrainResult:
    """Outcome of one training run."""

    train_accuracy: float
    val_accuracy: float
    test_accuracy: float
    best_epoch: int
    epochs_run: int
    history: Dict[str, List[float]] = field(default_factory=dict)
    fit_seconds: float = 0.0
    preprocess_seconds: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrainResult(test={self.test_accuracy:.3f}, val={self.val_accuracy:.3f}, "
            f"best_epoch={self.best_epoch}, epochs={self.epochs_run})"
        )


class Trainer:
    """Configurable training harness for node classifiers."""

    def __init__(
        self,
        lr: float = 0.01,
        weight_decay: float = 5e-4,
        epochs: int = 200,
        patience: int = 30,
        optimizer: str = "adam",
        verbose: bool = False,
    ) -> None:
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {epochs}")
        if patience < 1:
            raise ValueError(f"patience must be >= 1, got {patience}")
        if optimizer not in ("adam", "sgd"):
            raise ValueError(f"unknown optimizer {optimizer!r}; expected 'adam' or 'sgd'")
        self.lr = lr
        self.weight_decay = weight_decay
        self.epochs = epochs
        self.patience = patience
        self.optimizer_name = optimizer
        self.verbose = verbose

    def _build_optimizer(self, model: NodeClassifier):
        parameters = model.parameters()
        if self.optimizer_name == "adam":
            return Adam(parameters, lr=self.lr, weight_decay=self.weight_decay)
        return SGD(parameters, lr=self.lr, weight_decay=self.weight_decay)

    def fit(self, model: NodeClassifier, graph: DirectedGraph) -> TrainResult:
        """Train ``model`` on ``graph`` and return accuracies + history."""
        validate_splits(graph)
        preprocess_start = time.perf_counter()
        cache = model.preprocess(graph)
        preprocess_seconds = time.perf_counter() - preprocess_start

        optimizer = self._build_optimizer(model)
        labels = graph.labels
        train_mask, val_mask, test_mask = graph.train_mask, graph.val_mask, graph.test_mask

        history: Dict[str, List[float]] = {"loss": [], "train_acc": [], "val_acc": []}
        best_val = -1.0
        best_epoch = -1
        best_state: Optional[Dict[str, np.ndarray]] = None
        epochs_without_improvement = 0

        fit_start = time.perf_counter()
        epoch = 0
        for epoch in range(1, self.epochs + 1):
            model.train()
            optimizer.zero_grad()
            logits = model.forward(cache)
            loss = F.cross_entropy(logits, labels, train_mask)
            loss.backward()
            optimizer.step()

            model.eval()
            eval_logits = model.forward(cache)
            predictions = eval_logits.numpy().argmax(axis=1)
            train_acc = accuracy(predictions, labels, train_mask)
            val_acc = accuracy(predictions, labels, val_mask)
            history["loss"].append(loss.item())
            history["train_acc"].append(train_acc)
            history["val_acc"].append(val_acc)
            if self.verbose and epoch % 20 == 0:  # pragma: no cover - console output
                print(f"epoch {epoch:4d}  loss {loss.item():.4f}  val {val_acc:.4f}")

            if val_acc > best_val:
                best_val = val_acc
                best_epoch = epoch
                best_state = model.state_dict()
                epochs_without_improvement = 0
            else:
                epochs_without_improvement += 1
                if epochs_without_improvement >= self.patience:
                    break
        fit_seconds = time.perf_counter() - fit_start

        if best_state is not None:
            model.load_state_dict(best_state)
        model.eval()
        final_logits = model.forward(cache)
        predictions = final_logits.numpy().argmax(axis=1)
        return TrainResult(
            train_accuracy=accuracy(predictions, labels, train_mask),
            val_accuracy=accuracy(predictions, labels, val_mask),
            test_accuracy=accuracy(predictions, labels, test_mask),
            best_epoch=best_epoch,
            epochs_run=epoch,
            history=history,
            fit_seconds=fit_seconds,
            preprocess_seconds=preprocess_seconds,
        )
