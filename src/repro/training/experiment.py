"""Repeated-trial experiment helpers.

The paper repeats every experiment 10 times and reports mean ± std.  The
helpers here wrap :class:`repro.training.Trainer` with seed control, model
construction from the registry, and result aggregation, so the benchmark
scripts stay declarative: "run these models on these datasets".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..graph.digraph import DirectedGraph
from ..metrics.classification import summarize_runs
from ..models.registry import create_model, get_spec
from .trainer import Trainer, TrainResult


@dataclass
class ExperimentResult:
    """Aggregated accuracies of one (model, dataset) cell."""

    model: str
    dataset: str
    test_mean: float
    test_std: float
    val_mean: float
    runs: List[TrainResult] = field(default_factory=list)

    def as_row(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "dataset": self.dataset,
            "test_mean": round(self.test_mean, 4),
            "test_std": round(self.test_std, 4),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExperimentResult({self.model} on {self.dataset}: "
            f"{100 * self.test_mean:.1f}±{100 * self.test_std:.1f})"
        )


def run_single(
    model_name: str,
    graph: DirectedGraph,
    seed: int = 0,
    trainer: Optional[Trainer] = None,
    model_kwargs: Optional[Dict] = None,
) -> TrainResult:
    """Train one model once on one graph."""
    trainer = trainer if trainer is not None else Trainer()
    model_kwargs = dict(model_kwargs or {})
    model_kwargs.setdefault("seed", seed)
    model = create_model(model_name, graph, **model_kwargs)
    return trainer.fit(model, graph)


def run_repeated(
    model_name: str,
    graph: DirectedGraph,
    seeds: Sequence[int] = (0, 1, 2),
    trainer: Optional[Trainer] = None,
    model_kwargs: Optional[Dict] = None,
) -> ExperimentResult:
    """Train one model several times (different seeds) and aggregate."""
    runs = [
        run_single(model_name, graph, seed=seed, trainer=trainer, model_kwargs=model_kwargs)
        for seed in seeds
    ]
    test_summary = summarize_runs(run.test_accuracy for run in runs)
    val_summary = summarize_runs(run.val_accuracy for run in runs)
    return ExperimentResult(
        model=get_spec(model_name).name,
        dataset=graph.name,
        test_mean=test_summary["mean"],
        test_std=test_summary["std"],
        val_mean=val_summary["mean"],
        runs=runs,
    )


def run_model_suite(
    model_names: Iterable[str],
    graph: DirectedGraph,
    seeds: Sequence[int] = (0, 1, 2),
    trainer: Optional[Trainer] = None,
    model_kwargs: Optional[Dict[str, Dict]] = None,
) -> List[ExperimentResult]:
    """Run a list of models on one dataset; per-model kwargs are optional."""
    model_kwargs = model_kwargs or {}
    results = []
    for name in model_names:
        results.append(
            run_repeated(
                name,
                graph,
                seeds=seeds,
                trainer=trainer,
                model_kwargs=model_kwargs.get(name, model_kwargs.get(name.lower())),
            )
        )
    return results


def rank_results(results: Sequence[ExperimentResult]) -> Dict[str, float]:
    """Rank models by mean test accuracy (1 = best), as in the Rank column."""
    ordered = sorted(results, key=lambda result: result.test_mean, reverse=True)
    return {result.model: float(rank) for rank, result in enumerate(ordered, start=1)}


def average_rank(per_dataset_results: Sequence[Sequence[ExperimentResult]]) -> Dict[str, float]:
    """Average each model's rank across datasets (the paper's Rank column)."""
    accumulator: Dict[str, List[float]] = {}
    for dataset_results in per_dataset_results:
        ranks = rank_results(dataset_results)
        for model, rank in ranks.items():
            accumulator.setdefault(model, []).append(rank)
    return {model: float(np.mean(ranks)) for model, ranks in accumulator.items()}


def format_results_table(
    per_dataset_results: Dict[str, List[ExperimentResult]],
    include_rank: bool = True,
) -> str:
    """Render results as a fixed-width text table (one row per model)."""
    datasets = list(per_dataset_results)
    models: List[str] = []
    for results in per_dataset_results.values():
        for result in results:
            if result.model not in models:
                models.append(result.model)
    lookup = {
        (result.model, dataset): result
        for dataset, results in per_dataset_results.items()
        for result in results
    }
    ranks = (
        average_rank(list(per_dataset_results.values())) if include_rank and datasets else {}
    )

    header = ["Model"] + datasets + (["Rank"] if include_rank else [])
    lines = ["  ".join(f"{column:>16s}" for column in header)]
    for model in models:
        cells = [f"{model:>16s}"]
        for dataset in datasets:
            result = lookup.get((model, dataset))
            if result is None:
                cells.append(f"{'-':>16s}")
            else:
                cells.append(f"{100 * result.test_mean:13.1f}±{100 * result.test_std:.1f}")
        if include_rank:
            cells.append(f"{ranks.get(model, float('nan')):>16.1f}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
