"""Repeated-trial experiment helpers (deprecated shims).

The paper repeats every experiment 10 times and reports mean ± std.  That
protocol now lives in the typed :mod:`repro.api` surface —
:meth:`repro.api.GraphHandle.fit_repeated` for one cell and
:meth:`repro.api.Session.experiment` for a full sweep.  The free functions
here (``run_single`` / ``run_repeated`` / ``run_model_suite``) are kept as
:class:`DeprecationWarning` shims that delegate to the new executor and
return the legacy :class:`ExperimentResult` shape.

The rank/table helpers at the bottom are not deprecated; they also accept
the typed :class:`repro.api.ExperimentReport` cells (same attributes).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..graph.digraph import DirectedGraph
from .trainer import Trainer, TrainResult


@dataclass
class ExperimentResult:
    """Aggregated accuracies of one (model, dataset) cell (legacy shape)."""

    model: str
    dataset: str
    test_mean: float
    test_std: float
    val_mean: float
    runs: List[TrainResult] = field(default_factory=list)

    def as_row(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "dataset": self.dataset,
            "test_mean": round(self.test_mean, 4),
            "test_std": round(self.test_std, 4),
            "val_mean": round(self.val_mean, 4),
            "test_accuracies": [round(run.test_accuracy, 4) for run in self.runs],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ExperimentResult({self.model} on {self.dataset}: "
            f"{100 * self.test_mean:.1f}±{100 * self.test_std:.1f})"
        )


def _warn_deprecated(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.training.experiment.{name} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def _repeated_impl(
    model_name: str,
    graph: DirectedGraph,
    seeds: Sequence[int],
    trainer: Optional[Trainer],
    model_kwargs: Optional[Dict],
) -> ExperimentResult:
    """Non-warning delegation target shared by the shims and sparsity sweeps."""
    # Imported lazily: repro.api sits above the training layer, so a
    # module-level import here would be circular.
    from ..api.experiment import execute_repeated

    report, results = execute_repeated(
        model_name,
        graph,
        seeds=seeds,
        train=trainer if trainer is not None else Trainer(),
        model_kwargs=model_kwargs,
    )
    return ExperimentResult(
        model=report.model,
        dataset=graph.name,
        test_mean=report.test_mean,
        test_std=report.test_std,
        val_mean=report.val_mean,
        runs=list(results),
    )


def run_single(
    model_name: str,
    graph: DirectedGraph,
    seed: int = 0,
    trainer: Optional[Trainer] = None,
    model_kwargs: Optional[Dict] = None,
) -> TrainResult:
    """Deprecated: use ``Session.from_graph(graph).fit(model_name, ...)``."""
    _warn_deprecated("run_single", "repro.api GraphHandle.fit")
    from ..api.experiment import execute_single

    return execute_single(
        model_name, graph, seed=seed, trainer=trainer, model_kwargs=model_kwargs
    )


def run_repeated(
    model_name: str,
    graph: DirectedGraph,
    seeds: Sequence[int] = (0, 1, 2),
    trainer: Optional[Trainer] = None,
    model_kwargs: Optional[Dict] = None,
) -> ExperimentResult:
    """Deprecated: use ``Session.from_graph(graph).fit_repeated(model_name)``.

    Note the legacy default of three seeds; the new surface defaults to the
    paper's ten-trial protocol (:data:`repro.api.DEFAULT_SEEDS`).
    """
    _warn_deprecated("run_repeated", "repro.api GraphHandle.fit_repeated")
    return _repeated_impl(model_name, graph, seeds, trainer, model_kwargs)


def run_model_suite(
    model_names: Iterable[str],
    graph: DirectedGraph,
    seeds: Sequence[int] = (0, 1, 2),
    trainer: Optional[Trainer] = None,
    model_kwargs: Optional[Dict[str, Dict]] = None,
) -> List[ExperimentResult]:
    """Deprecated: use ``Session.experiment`` with a :class:`SweepSpec`."""
    _warn_deprecated("run_model_suite", "repro.api Session.experiment")
    model_kwargs = model_kwargs or {}
    results = []
    for name in model_names:
        results.append(
            _repeated_impl(
                name,
                graph,
                seeds,
                trainer,
                model_kwargs.get(name, model_kwargs.get(name.lower())),
            )
        )
    return results


def rank_results(results: Sequence[ExperimentResult]) -> Dict[str, float]:
    """Rank models by mean test accuracy (1 = best), as in the Rank column."""
    ordered = sorted(results, key=lambda result: result.test_mean, reverse=True)
    return {result.model: float(rank) for rank, result in enumerate(ordered, start=1)}


def average_rank(per_dataset_results: Sequence[Sequence[ExperimentResult]]) -> Dict[str, float]:
    """Average each model's rank across datasets (the paper's Rank column)."""
    accumulator: Dict[str, List[float]] = {}
    for dataset_results in per_dataset_results:
        ranks = rank_results(dataset_results)
        for model, rank in ranks.items():
            accumulator.setdefault(model, []).append(rank)
    return {model: float(np.mean(ranks)) for model, ranks in accumulator.items()}


def format_results_table(
    per_dataset_results: Dict[str, List[ExperimentResult]],
    include_rank: bool = True,
) -> str:
    """Render results as a fixed-width text table (one row per model)."""
    datasets = list(per_dataset_results)
    models: List[str] = []
    for results in per_dataset_results.values():
        for result in results:
            if result.model not in models:
                models.append(result.model)
    lookup = {
        (result.model, dataset): result
        for dataset, results in per_dataset_results.items()
        for result in results
    }
    ranks = (
        average_rank(list(per_dataset_results.values())) if include_rank and datasets else {}
    )

    header = ["Model"] + datasets + (["Rank"] if include_rank else [])
    lines = ["  ".join(f"{column:>16s}" for column in header)]
    for model in models:
        cells = [f"{model:>16s}"]
        for dataset in datasets:
            result = lookup.get((model, dataset))
            if result is None:
                cells.append(f"{'-':>16s}")
            else:
                cells.append(f"{100 * result.test_mean:13.1f}±{100 * result.test_std:.1f}")
        if include_rank:
            cells.append(f"{ranks.get(model, float('nan')):>16.1f}")
        lines.append("  ".join(cells))
    return "\n".join(lines)
