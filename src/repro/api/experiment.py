"""Execution engine behind ``Session.experiment`` / ``fit_repeated``.

The paper's protocol — repeat every (model, dataset) cell over fixed seeds
and report mean ± std — is implemented here once, for every caller: the
typed handles of :mod:`repro.api.session`, the ``repro experiment`` CLI
sub-command, the benchmark scripts and the deprecated
:mod:`repro.training.experiment` shims.

Runs execute on a bounded thread pool (training is NumPy-heavy, so worker
threads overlap well).  Determinism is structural, not accidental: every
run is seeded explicitly, no run shares mutable state with another, and
results are aggregated by their position in the seed/cell order — so a
parallel sweep is bit-identical to a serial one.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..datasets.synthetic import load_dataset
from ..graph.digraph import DirectedGraph
from ..graph.transforms import to_undirected
from ..models.registry import PROPOSED, create_model, get_spec
from ..training.trainer import Trainer, TrainResult
from .config import ExperimentConfig, SweepSpec, TrainConfig
from .report import ExperimentReport, RunReport, SweepReport

#: upper bound on auto-sized worker pools; training runs are CPU-bound, so
#: more threads than cores only adds scheduler churn.
MAX_AUTO_WORKERS = 16


def resolve_view(
    model_name: str,
    graph: DirectedGraph,
    view: str,
    *,
    undirected: Union[DirectedGraph, Callable[[], DirectedGraph], None] = None,
) -> DirectedGraph:
    """Pick the input view of one cell under a named protocol.

    ``natural`` and ``undirected`` are unconditional.  The two ``paper-*``
    protocols follow Sec. V-A: undirected GNNs always get the coarse
    undirected transformation (U-), directed GNNs the natural digraph (D-),
    and the proposed model (ADPA) the AMUD output — U- under
    ``paper-undirected``, D- under ``paper-directed``.  ``amud`` feeds
    every model the dataset's AMUD-regime view (the Fig. 1 workflow),
    taken from the graph's ``amud_regime`` metadata when present and from a
    fresh AMUD decision otherwise.

    ``undirected`` may pass a precomputed undirected transformation (or a
    zero-arg factory for one) so a sweep symmetrises each dataset once, not
    once per cell.
    """

    def undirected_view() -> DirectedGraph:
        if callable(undirected):
            return undirected()
        return undirected if undirected is not None else to_undirected(graph)

    if view == "natural":
        return graph
    if view == "undirected":
        return undirected_view()
    if view == "amud":
        regime = graph.meta.get("amud_regime")
        if regime is None:
            from ..amud.guidance import amud_decide

            regime = "directed" if amud_decide(graph).keep_directed else "undirected"
        return graph if regime == "directed" else undirected_view()
    if view in ("paper-undirected", "paper-directed"):
        spec = get_spec(model_name)
        if spec.category == PROPOSED:
            return graph if view == "paper-directed" else undirected_view()
        return graph if spec.is_directed else undirected_view()
    raise ValueError(f"unknown view {view!r}")


def execute_single(
    model_name: str,
    graph: DirectedGraph,
    *,
    seed: int = 0,
    trainer: Optional[Trainer] = None,
    model_kwargs: Optional[Dict] = None,
) -> TrainResult:
    """Train one registry model once on one graph (the run primitive)."""
    trainer = trainer if trainer is not None else Trainer()
    kwargs = dict(model_kwargs or {})
    kwargs.setdefault("seed", seed)
    model = create_model(model_name, graph, **kwargs)
    return trainer.fit(model, graph)


def _worker_count(num_tasks: int, max_workers: Optional[int]) -> int:
    if max_workers is None:
        max_workers = min(MAX_AUTO_WORKERS, os.cpu_count() or 1)
    return max(1, min(num_tasks, max_workers))


def execute_runs(
    tasks: Sequence[Callable[[], TrainResult]],
    max_workers: Optional[int] = None,
) -> List[TrainResult]:
    """Run independent tasks on a bounded pool; results keep task order."""
    workers = _worker_count(len(tasks), max_workers)
    if workers == 1:
        return [task() for task in tasks]
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(task) for task in tasks]
    return [future.result() for future in futures]


def _resolve_trainer(train: Union[TrainConfig, Trainer, None]) -> Trainer:
    if isinstance(train, Trainer):
        return train
    if isinstance(train, TrainConfig):
        return train.build_trainer()
    if train is None:
        return Trainer()
    raise TypeError(f"train must be a TrainConfig or Trainer, got {type(train).__name__}")


def execute_repeated(
    model_name: str,
    graph: DirectedGraph,
    *,
    seeds: Sequence[int],
    train: Union[TrainConfig, Trainer, None] = None,
    model_kwargs: Optional[Dict] = None,
    max_workers: Optional[int] = 1,
    dataset: Optional[str] = None,
    variant: str = "",
) -> Tuple[ExperimentReport, List[TrainResult]]:
    """Run one cell over its seeds and aggregate.

    Returns both the typed :class:`ExperimentReport` and the raw
    :class:`TrainResult` list (which still carries the per-epoch history
    the convergence benchmarks need).
    """
    seeds = tuple(seeds)
    if model_kwargs and "seed" in model_kwargs:
        # A pinned constructor seed would silently collapse every trial to
        # one run (std = 0) while the report still lists distinct seeds.
        raise ValueError(
            "model_kwargs must not contain 'seed' for repeated runs; the "
            "per-trial seed comes from the seeds list"
        )
    trainer = _resolve_trainer(train)
    tasks = [
        (lambda s=seed: execute_single(
            model_name, graph, seed=s, trainer=trainer, model_kwargs=model_kwargs
        ))
        for seed in seeds
    ]
    results = execute_runs(tasks, max_workers=max_workers)
    label = get_spec(model_name).name
    dataset_label = dataset if dataset is not None else graph.name
    runs = tuple(
        RunReport.from_train_result(
            result, model=label, dataset=dataset_label, seed=seed, variant=variant
        )
        for seed, result in zip(seeds, results)
    )
    return ExperimentReport.from_runs(runs), results


def shard_cells(
    spec: SweepSpec, shard_index: int, shard_count: int
) -> List[int]:
    """Canonical cell indices owned by one shard (round-robin by index).

    The assignment is a pure function of the spec and the shard coordinates
    — cell ``i`` of :meth:`SweepSpec.cells` belongs to shard ``i %
    shard_count`` — so every participant in a distributed sweep computes
    the same partition without coordination, and the merge can verify a
    shard report claims exactly the cells it should.
    """
    if shard_count < 1:
        raise ValueError(f"shard count must be >= 1, got {shard_count}")
    if not 0 <= shard_index < shard_count:
        raise ValueError(
            f"shard index must be in [0, {shard_count}), got {shard_index}"
        )
    return [
        index
        for index in range(len(spec.cells()))
        if index % shard_count == shard_index
    ]


def run_sweep(
    spec: SweepSpec, shard: Optional[Tuple[int, int]] = None
) -> SweepReport:
    """Execute a full models × datasets × variants grid.

    Datasets are loaded (and symmetrised, when a view needs it) once each;
    every (cell, seed) run is an independent task on one shared bounded
    pool, so parallelism crosses cell boundaries.  Cells aggregate in the
    spec's canonical order regardless of scheduling.

    ``shard=(i, n)`` restricts execution to the cells
    :func:`shard_cells` assigns to shard ``i`` of ``n`` (loading only the
    datasets those cells touch).  Each run is an independent deterministic
    function of (model, view, seed, kwargs) and cells are never split
    across shards, so a shard's cell reports are bit-identical to the same
    cells of the serial sweep up to wall-clock timing fields — that is
    what lets ``merge_shard_reports`` reassemble the serial report.
    """
    config = spec.config
    trainer = config.build_trainer()
    all_cells = spec.cells()
    if shard is None:
        owned = list(range(len(all_cells)))
    else:
        owned = shard_cells(spec, *shard)
    needed_datasets = {all_cells[index][0] for index in owned}
    graphs = {
        name: load_dataset(name, seed=spec.dataset_seed)
        for name in spec.datasets
        if name in needed_datasets
    }
    undirected_views: Dict[str, DirectedGraph] = {}

    def undirected_for(name: str) -> DirectedGraph:
        if name not in undirected_views:
            undirected_views[name] = to_undirected(graphs[name])
        return undirected_views[name]

    cells: List[Tuple[str, str, str, DirectedGraph, Dict[str, object]]] = []
    for index in owned:
        dataset, model, variant = all_cells[index]
        view = resolve_view(
            model,
            graphs[dataset],
            spec.view,
            undirected=lambda name=dataset: undirected_for(name),
        )
        cells.append((dataset, model, variant, view, spec.kwargs_for(model, variant)))

    seeds = config.seeds
    tasks: List[Callable[[], TrainResult]] = []
    for _, model, _, view, kwargs in cells:
        for seed in seeds:
            tasks.append(
                lambda m=model, g=view, s=seed, k=kwargs: execute_single(
                    m, g, seed=s, trainer=trainer, model_kwargs=k
                )
            )
    results = execute_runs(tasks, max_workers=config.max_workers)

    reports: List[ExperimentReport] = []
    for index, (dataset, model, variant, _, _) in enumerate(cells):
        cell_results = results[index * len(seeds):(index + 1) * len(seeds)]
        runs = tuple(
            RunReport.from_train_result(
                result,
                model=get_spec(model).name,
                dataset=dataset,
                seed=seed,
                variant=variant,
            )
            for seed, result in zip(seeds, cell_results)
        )
        reports.append(ExperimentReport.from_runs(runs))
    return SweepReport(cells=tuple(reports), spec=spec.as_dict())
