"""The :class:`Session` facade: one typed surface for the whole workflow.

The paper's Fig. 1 loop — load a natural digraph, run AMUD guidance, pick
the paradigm, train, export, serve — used to be spread over four
uncoordinated entrypoints.  A :class:`Session` holds the frozen default
configs and hands out immutable-ish handles that chain the steps::

    from repro.api import Session, TrainConfig

    handle = Session(train=TrainConfig(epochs=100)).load("chameleon")
    model = handle.amud().fit()          # guidance-selected model, trained
    model.save("runs/chameleon")         # versioned serving artifact

    restored = Session().restore("runs/chameleon")
    router = Session().serve("runs/chameleon", "runs/texas")  # front door

:class:`GraphHandle` wraps a loaded graph (optionally with its AMUD
decision); :class:`ModelHandle` wraps a trained model bound to the graph it
was trained on.  Both are thin, explicit and serializable through the
artifact layer, so programs, the CLI and a network front-end share exactly
one code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from ..amud.guidance import AmudDecision, apply_amud
from ..datasets.synthetic import load_dataset
from ..graph.delta import GraphDelta
from ..graph.digraph import DirectedGraph
from ..graph.transforms import to_undirected
from ..metrics.homophily import homophily_report
from ..models.base import NodeClassifier
from ..models.registry import create_model, get_spec
from ..serving.artifacts import ModelArtifact, restore_model, save_model
from ..serving.engine import InferenceServer
from ..serving.http import HttpServer
from ..serving.router import ShardRouter
from ..serving.trace import TracedProgram, compile_forward
from ..training.trainer import Trainer, TrainResult
from .config import (
    AmudConfig,
    ExperimentConfig,
    HttpConfig,
    ServeConfig,
    SweepSpec,
    TrainConfig,
)
from .experiment import execute_repeated, run_sweep
from .report import ExperimentReport, SweepReport

PathLike = Union[str, Path]

#: metadata kind stamped on artifacts exported through :meth:`ModelHandle.save`.
ARTIFACT_KIND = "api-model"


def decision_to_dict(decision: AmudDecision) -> Dict[str, object]:
    """JSON-ready form of an AMUD decision (artifact metadata)."""
    return {
        "score": float(decision.score),
        "keep_directed": bool(decision.keep_directed),
        "threshold": float(decision.threshold),
        "r_squared": {k: float(v) for k, v in decision.r_squared.items()},
        "correlations": {k: float(v) for k, v in decision.correlations.items()},
    }


def decision_from_dict(payload: Dict[str, object]) -> AmudDecision:
    return AmudDecision(
        score=payload["score"],
        keep_directed=payload["keep_directed"],
        threshold=payload["threshold"],
        r_squared=dict(payload.get("r_squared", {})),
        correlations=dict(payload.get("correlations", {})),
    )


def train_result_to_dict(result: TrainResult) -> Dict[str, object]:
    return {
        "train_accuracy": float(result.train_accuracy),
        "val_accuracy": float(result.val_accuracy),
        "test_accuracy": float(result.test_accuracy),
        "best_epoch": int(result.best_epoch),
        "epochs_run": int(result.epochs_run),
    }


def train_result_from_dict(payload: Dict[str, object]) -> TrainResult:
    return TrainResult(
        train_accuracy=payload["train_accuracy"],
        val_accuracy=payload["val_accuracy"],
        test_accuracy=payload["test_accuracy"],
        best_epoch=payload["best_epoch"],
        epochs_run=payload["epochs_run"],
    )


def width_kwargs(model_name: str, hidden: int) -> Dict[str, int]:
    """Constructor width kwargs for one registry model.

    SGC is the one registered model without a ``hidden`` kwarg (a single
    linear map by design); everyone else takes the width.
    """
    return {} if model_name.lower() == "sgc" else {"hidden": hidden}


class Session:
    """Entry point of the public API; holds seeds and default configs.

    A session is cheap — it owns no trained state, only configuration — so
    creating one per request or one per program are both fine.  All
    defaults can be overridden per call on the handles.
    """

    def __init__(
        self,
        seed: int = 0,
        train: Optional[TrainConfig] = None,
        amud: Optional[AmudConfig] = None,
        serve: Optional[ServeConfig] = None,
    ) -> None:
        self.seed = seed
        self.train_config = train if train is not None else TrainConfig()
        self.amud_config = amud if amud is not None else AmudConfig()
        self.serve_config = serve if serve is not None else ServeConfig()

    # ------------------------------------------------------------------ #
    # Data in
    # ------------------------------------------------------------------ #
    def load(self, dataset: str, seed: Optional[int] = None) -> "GraphHandle":
        """Load a registered dataset into a :class:`GraphHandle`."""
        graph = load_dataset(dataset, seed=self.seed if seed is None else seed)
        return GraphHandle(session=self, graph=graph)

    def from_graph(self, graph: DirectedGraph) -> "GraphHandle":
        """Wrap an existing :class:`DirectedGraph` (custom data)."""
        return GraphHandle(session=self, graph=graph)

    # ------------------------------------------------------------------ #
    # Artifacts in
    # ------------------------------------------------------------------ #
    def restore(self, directory: PathLike) -> "ModelHandle":
        """Reload any serving artifact as a ready-to-predict handle.

        Accepts artifacts written by :meth:`ModelHandle.save`, the CLI
        ``export`` command or the removed legacy ``AmudPipeline.save`` —
        the decision / training summary blocks are recovered when present.
        """
        model, cache, artifact, graph = restore_model(directory)
        metadata = artifact.metadata
        decision = (
            decision_from_dict(metadata["decision"]) if "decision" in metadata else None
        )
        train_result = (
            train_result_from_dict(metadata["train_result"])
            if "train_result" in metadata
            else None
        )
        return ModelHandle(
            session=self,
            model=model,
            graph=graph,
            model_name=artifact.model_name,
            decision=decision,
            train_result=train_result,
            artifact=artifact,
            preprocess_cache=cache,
        )

    # ------------------------------------------------------------------ #
    # Experiments
    # ------------------------------------------------------------------ #
    def experiment(self, spec: Union[SweepSpec, Dict[str, object]]) -> SweepReport:
        """Execute a declarative models × datasets × variants sweep.

        ``spec`` is a :class:`SweepSpec` (or a plain mapping parsed from a
        TOML/JSON spec file).  A :class:`SweepSpec` is self-contained — its
        :class:`ExperimentConfig` carries the training protocol, so the
        session's ``train`` default does not apply; a mapping without
        ``train`` settings inherits the session's training config.  Runs
        execute on a bounded worker pool; the report lists cells in the
        spec's canonical order with aggregates bit-identical to serial
        execution.
        """
        if not isinstance(spec, SweepSpec):
            spec = dict(spec)
            if "train" not in spec and "train" not in spec.get("config", {}):
                config = dict(spec.get("config", {}))
                config["train"] = self.train_config
                spec["config"] = config
            spec = SweepSpec.from_dict(spec)
        return run_sweep(spec)

    # ------------------------------------------------------------------ #
    # Serving front door
    # ------------------------------------------------------------------ #
    def serve(
        self,
        *sources: Union["ModelHandle", PathLike],
        config: Optional[ServeConfig] = None,
        cache_dir: Optional[PathLike] = None,
    ) -> ShardRouter:
        """Build a :class:`ShardRouter` over handles and/or artifact dirs.

        The router is returned un-started; use it as a context manager (or
        call ``start()``/``stop()``).  All shards share one operator cache,
        one weights-versioned logit cache and — unless
        ``config.compile == "eager"`` — one compiled-trace cache.
        ``cache_dir`` warms the operator cache from an on-disk spill
        directory *before* the artifacts load, so their preprocessing is
        skipped on a hit (see :meth:`repro.serving.OperatorCache.warm`);
        compiled programs spilled under ``<cache_dir>/traces`` are warmed
        into the trace cache the same way.
        """
        config = config if config is not None else self.serve_config
        router = ShardRouter(**config.router_kwargs())
        if cache_dir is not None:
            router.operator_cache.warm(cache_dir)
            if router.trace_cache is not None:
                router.trace_cache.warm(Path(cache_dir) / "traces")
        for source in sources:
            if isinstance(source, ModelHandle):
                router.add_shard(
                    source.model,
                    source.graph,
                    preprocess_cache=source._preprocess_cache,
                )
            else:
                router.add_artifact(source)
        return router

    def serve_http(
        self,
        *sources: Union["ModelHandle", PathLike],
        config: Optional[ServeConfig] = None,
        http: Optional[HttpConfig] = None,
        cache_dir: Optional[PathLike] = None,
    ) -> HttpServer:
        """Build (un-started) the HTTP front door over a :meth:`serve` router.

        Starting the returned :class:`repro.serving.HttpServer` starts the
        underlying router too, and stopping it stops both — one
        ``with session.serve_http(...) as server:`` block owns the whole
        stack.  ``http`` overrides the bind address and limits; it defaults
        to ``config.http`` and then to :class:`HttpConfig`'s defaults.
        """
        config = config if config is not None else self.serve_config
        if http is None:
            http = config.http if config.http is not None else HttpConfig()
        router = self.serve(*sources, config=config, cache_dir=cache_dir)
        return _SessionHttpServer(router, **http.server_kwargs())


class _SessionHttpServer(HttpServer):
    """An :class:`HttpServer` owning its router's lifecycle.

    :meth:`Session.serve_http` builds the router internally, so nobody
    else can start or stop it; binding both lifecycles here keeps the
    public surface to one object.
    """

    def start(self) -> "HttpServer":
        self.router.start()
        try:
            return super().start()
        except BaseException:
            self.router.stop()
            raise

    def stop(self, timeout: Optional[float] = 10.0) -> None:
        try:
            super().stop(timeout)
        finally:
            self.router.stop()


@dataclass
class GraphHandle:
    """A loaded graph, optionally carrying its AMUD decision.

    Handles are cheap views: transformations (:meth:`amud`,
    :meth:`undirected`) return new handles and never mutate the graph.
    """

    session: Session
    graph: DirectedGraph
    decision: Optional[AmudDecision] = None
    #: the config :meth:`amud` decided with; :meth:`fit` reuses it so the
    #: paradigm models of a custom config are not silently dropped.
    amud_config: Optional[AmudConfig] = None

    @property
    def name(self) -> str:
        return self.graph.name

    def homophily(self) -> Dict[str, float]:
        """The homophily profile the AMUD analysis is based on."""
        return homophily_report(self.graph)

    # ------------------------------------------------------------------ #
    # Paradigm choice
    # ------------------------------------------------------------------ #
    def amud(self, config: Optional[AmudConfig] = None) -> "GraphHandle":
        """Run AMUD guidance; returns a handle for the modeled view.

        The returned handle's graph is the directed original (Paradigm II)
        or its undirected transformation (Paradigm I), with the decision
        attached so :meth:`fit` can pick the paradigm's model.
        """
        config = config if config is not None else self.session.amud_config
        modeled, decision = apply_amud(self.graph, threshold=config.threshold)
        return GraphHandle(
            session=self.session, graph=modeled, decision=decision, amud_config=config
        )

    def undirected(self) -> "GraphHandle":
        """The coarse undirected transformation (no AMUD decision)."""
        return GraphHandle(session=self.session, graph=to_undirected(self.graph))

    def apply_delta(self, delta: GraphDelta, *, validate: bool = False) -> "GraphHandle":
        """Apply a live :class:`~repro.graph.GraphDelta`; returns a new handle.

        The mutated graph's fingerprint is maintained incrementally (only
        touched rows re-hashed), so serving caches key it without a full
        rehash.  Any attached AMUD decision is dropped — edge edits can
        change the directed-modeling guidance — re-run :meth:`amud` if the
        paradigm choice should follow the mutation.
        """
        return GraphHandle(
            session=self.session, graph=self.graph.apply_delta(delta, validate=validate)
        )

    # ------------------------------------------------------------------ #
    # Training
    # ------------------------------------------------------------------ #
    def fit(
        self,
        model: Optional[str] = None,
        train: Optional[Union[TrainConfig, Trainer]] = None,
        amud: Optional[AmudConfig] = None,
        seed: Optional[int] = None,
        **model_kwargs,
    ) -> "ModelHandle":
        """Train one model on this handle's graph.

        ``model=None`` follows the AMUD guidance: if no decision is attached
        yet, :meth:`amud` runs first, and the decision's paradigm selects
        ``amud_config.directed_model`` or ``.undirected_model`` — from the
        ``amud=`` argument if given, else the config a previous
        :meth:`amud` call used, else the session default.  An explicit
        registry name trains that model on the graph exactly as it stands.
        ``train`` accepts a frozen :class:`TrainConfig` or a pre-built
        :class:`Trainer` (legacy call sites).
        """
        handle = self
        amud_config = (
            amud
            if amud is not None
            else (self.amud_config if self.amud_config is not None else self.session.amud_config)
        )
        if model is None:
            if handle.decision is None:
                handle = handle.amud(amud_config)
            model = amud_config.model_for(handle.decision.keep_directed)
        else:
            get_spec(model)  # unknown names fail before any training work

        if isinstance(train, Trainer):
            trainer = train
        else:
            config = train if train is not None else self.session.train_config
            trainer = config.build_trainer()

        kwargs = dict(model_kwargs)
        kwargs.setdefault("seed", self.session.seed if seed is None else seed)
        instance = create_model(model, handle.graph, **kwargs)
        train_result = trainer.fit(instance, handle.graph)
        return ModelHandle(
            session=self.session,
            model=instance,
            graph=handle.graph,
            model_name=get_spec(model).name,
            decision=handle.decision,
            train_result=train_result,
        )

    def fit_repeated(
        self,
        model: Optional[str] = None,
        config: Optional[ExperimentConfig] = None,
        seeds: Optional[Sequence[int]] = None,
        train: Optional[Union[TrainConfig, Trainer]] = None,
        amud: Optional[AmudConfig] = None,
        variant: str = "",
        **model_kwargs,
    ) -> ExperimentReport:
        """Train one model over repeated seeds and aggregate (paper protocol).

        Model selection mirrors :meth:`fit` — ``model=None`` follows the
        AMUD guidance.  The seed list, trainer settings and worker bound
        come from ``config`` (default: a fresh :class:`ExperimentConfig`
        whose training settings are the session's); ``seeds`` and ``train``
        override the corresponding config fields, and ``train`` may also be
        a pre-built :class:`Trainer`.  Runs execute on a bounded worker
        pool; aggregation is bit-identical to serial execution.
        """
        handle = self
        amud_config = (
            amud
            if amud is not None
            else (self.amud_config if self.amud_config is not None else self.session.amud_config)
        )
        if model is None:
            if handle.decision is None:
                handle = handle.amud(amud_config)
            model = amud_config.model_for(handle.decision.keep_directed)
        else:
            get_spec(model)

        if config is None:
            config = ExperimentConfig(train=self.session.train_config)
        if seeds is not None:
            config = config.replace(seeds=tuple(seeds))
        trainer: Union[TrainConfig, Trainer] = train if train is not None else config.train

        kwargs = {**config.model_kwargs, **model_kwargs}
        report, _ = execute_repeated(
            model,
            handle.graph,
            seeds=config.seeds,
            train=trainer,
            model_kwargs=kwargs,
            max_workers=config.max_workers,
            variant=variant,
        )
        return report


@dataclass
class ModelHandle:
    """A trained model bound to the graph it models.

    Everything downstream of training hangs off this handle: bit-exact
    prediction, artifact export (:meth:`save`), single-engine serving
    (:meth:`serve`) and registration as a router shard
    (:meth:`Session.serve`).
    """

    session: Session
    model: NodeClassifier
    graph: DirectedGraph
    model_name: str
    decision: Optional[AmudDecision] = None
    train_result: Optional[TrainResult] = None
    artifact: Optional[ModelArtifact] = None
    preprocess_cache: Optional[Dict[str, object]] = None

    @property
    def test_accuracy(self) -> Optional[float]:
        return self.train_result.test_accuracy if self.train_result else None

    @property
    def _preprocess_cache(self) -> Dict[str, object]:
        """The bound graph's preprocess output, computed once per handle."""
        if self.preprocess_cache is None:
            self.preprocess_cache = self.model.preprocess(self.graph)
        return self.preprocess_cache

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def predict_logits(self, graph: Optional[DirectedGraph] = None) -> np.ndarray:
        """Raw class logits; defaults to the bound graph (cached preprocess)."""
        if graph is None or graph is self.graph:
            return self.model.predict_logits(self.graph, self._preprocess_cache)
        return self.model.predict_logits(graph)

    def predict(self, graph: Optional[DirectedGraph] = None) -> np.ndarray:
        """Predicted class per node; defaults to the bound graph."""
        return self.predict_logits(graph).argmax(axis=1)

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, directory: PathLike, metadata: Optional[Dict] = None) -> Path:
        """Export as a versioned serving artifact (weights + config + graph).

        The AMUD decision and training summary (when known) ride along in
        the metadata, so :meth:`Session.restore` round-trips the handle and
        ``repro predict`` works on the directory as-is.
        """
        payload: Dict[str, object] = {"kind": ARTIFACT_KIND}
        if self.decision is not None:
            payload["decision"] = decision_to_dict(self.decision)
        if self.train_result is not None:
            payload["train_result"] = train_result_to_dict(self.train_result)
        if metadata:
            payload.update(metadata)
        return save_model(self.model, directory, metadata=payload, graph=self.graph)

    # ------------------------------------------------------------------ #
    # Serving
    # ------------------------------------------------------------------ #
    def compile(self, fold: str = "all") -> TracedProgram:
        """Trace one eager forward into a grad-free replayable program.

        Records the model's forward on the bound graph and returns the
        compiled :class:`repro.serving.TracedProgram` — validated
        bit-identical against the eager logits at compile time.  ``fold``
        selects the constant-folding policy: ``"all"`` (the serving
        default) folds frozen weights *and* frozen graph operators,
        ``"weights"`` keeps the preprocess cache re-bindable, ``"none"``
        keeps parameters re-bindable too.  Raises
        :class:`repro.serving.TraceError` if the model cannot be traced;
        :meth:`serve` applies the same compilation transparently (with
        eager fallback) on cache-miss traffic.
        """
        return compile_forward(self.model, self.graph, self._preprocess_cache, fold=fold)

    def serve(self, config: Optional[ServeConfig] = None) -> InferenceServer:
        """A micro-batching engine for this model, cache pre-warmed.

        Returned un-started; use as a context manager.  For several models
        behind one front door, use :meth:`Session.serve` instead.
        """
        config = config if config is not None else self.session.serve_config
        server = InferenceServer(self.model, self.graph, **config.engine_kwargs())
        server.cache.seed(self.model, self.graph, self._preprocess_cache)
        return server
