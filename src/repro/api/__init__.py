"""repro.api — the typed public facade over the whole reproduction.

One documented way to drive the system end to end::

    from repro.api import Session

    model = Session().load("chameleon").amud().fit()  # guidance-selected, trained
    server = model.serve()                            # one micro-batching engine
    model.save("runs/chameleon")
    router = Session().serve("runs/chameleon")        # multi-artifact front door

See :mod:`repro.api.session` for the Session / handle semantics and
:mod:`repro.api.config` for the frozen configuration dataclasses.
"""

from .config import AmudConfig, ServeConfig, TrainConfig
from .session import (
    ARTIFACT_KIND,
    GraphHandle,
    ModelHandle,
    Session,
    decision_from_dict,
    decision_to_dict,
    train_result_from_dict,
    train_result_to_dict,
    width_kwargs,
)

__all__ = [
    "Session",
    "GraphHandle",
    "ModelHandle",
    "TrainConfig",
    "AmudConfig",
    "ServeConfig",
    "ARTIFACT_KIND",
    "width_kwargs",
    "decision_to_dict",
    "decision_from_dict",
    "train_result_to_dict",
    "train_result_from_dict",
]
