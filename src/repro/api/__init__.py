"""repro.api — the typed public facade over the whole reproduction.

One documented way to drive the system end to end::

    from repro.api import Session, SweepSpec

    model = Session().load("chameleon").amud().fit()  # guidance-selected, trained
    server = model.serve()                            # one micro-batching engine
    model.save("runs/chameleon")
    router = Session().serve("runs/chameleon")        # multi-artifact front door

    cell = Session().load("texas").fit_repeated("MLP", hidden=16)  # mean ± std
    report = Session().experiment(                                 # full grid
        SweepSpec(models=("MLP", "GPRGNN"), datasets=("texas", "cornell"))
    )
    report.save("runs/report.json")

See :mod:`repro.api.session` for the Session / handle semantics,
:mod:`repro.api.config` for the frozen configuration dataclasses and
:mod:`repro.api.report` for the typed experiment reports.
"""

from .config import (
    DEFAULT_SEEDS,
    SWEEP_VIEWS,
    AmudConfig,
    ExperimentConfig,
    HttpConfig,
    ServeConfig,
    SweepSpec,
    TrainConfig,
)
from ..graph.delta import GraphDelta
from .experiment import (
    execute_repeated,
    execute_single,
    resolve_view,
    run_sweep,
    shard_cells,
)
from .report import ExperimentReport, RunReport, SweepReport
from .session import (
    ARTIFACT_KIND,
    GraphHandle,
    ModelHandle,
    Session,
    decision_from_dict,
    decision_to_dict,
    train_result_from_dict,
    train_result_to_dict,
    width_kwargs,
)

__all__ = [
    "Session",
    "GraphHandle",
    "GraphDelta",
    "ModelHandle",
    "TrainConfig",
    "AmudConfig",
    "ServeConfig",
    "HttpConfig",
    "ExperimentConfig",
    "SweepSpec",
    "RunReport",
    "ExperimentReport",
    "SweepReport",
    "DEFAULT_SEEDS",
    "SWEEP_VIEWS",
    "ARTIFACT_KIND",
    "width_kwargs",
    "resolve_view",
    "execute_single",
    "execute_repeated",
    "run_sweep",
    "shard_cells",
    "decision_to_dict",
    "decision_from_dict",
    "train_result_to_dict",
    "train_result_from_dict",
]
