"""Frozen configuration objects for the :mod:`repro.api` facade.

Every knob of the load → AMUD → train → serve workflow lives in one of
three immutable dataclasses, so a configuration can be validated once,
shared between threads, logged, and passed through the CLI, programs and a
network front-end without kwargs drift:

* :class:`TrainConfig` — optimisation hyper-parameters (builds a
  :class:`repro.training.Trainer`);
* :class:`AmudConfig` — the AMUD threshold θ and the model the guidance
  selects for each paradigm;
* :class:`ServeConfig` — micro-batching, caching and back-pressure limits
  for :class:`repro.serving.InferenceServer` / :class:`repro.serving.ShardRouter`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Dict, Optional

from ..models.registry import get_spec
from ..training.trainer import Trainer


@dataclass(frozen=True)
class TrainConfig:
    """Immutable training hyper-parameters; ``build_trainer()`` applies them."""

    lr: float = 0.01
    weight_decay: float = 5e-4
    epochs: int = 200
    patience: int = 30
    optimizer: str = "adam"
    verbose: bool = False

    def __post_init__(self) -> None:
        # Trainer re-validates, but failing here pins the error to the
        # config object the caller actually wrote.
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}; expected 'adam' or 'sgd'")

    def build_trainer(self) -> Trainer:
        return Trainer(
            lr=self.lr,
            weight_decay=self.weight_decay,
            epochs=self.epochs,
            patience=self.patience,
            optimizer=self.optimizer,
            verbose=self.verbose,
        )

    @classmethod
    def from_trainer(cls, trainer: Trainer) -> "TrainConfig":
        return cls(
            lr=trainer.lr,
            weight_decay=trainer.weight_decay,
            epochs=trainer.epochs,
            patience=trainer.patience,
            optimizer=trainer.optimizer_name,
            verbose=trainer.verbose,
        )

    def replace(self, **changes) -> "TrainConfig":
        """Return a copy with ``changes`` applied (the config is frozen)."""
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class AmudConfig:
    """The Fig. 1 guidance step: threshold θ and the per-paradigm models."""

    threshold: float = 0.5
    undirected_model: str = "GPRGNN"
    directed_model: str = "ADPA"

    def __post_init__(self) -> None:
        # The guidance score lives in [0, 1], but out-of-range thresholds are
        # a legitimate way to force one paradigm (θ > 1 pins undirected,
        # θ < 0 pins directed); only reject values that compare as nothing.
        if self.threshold != self.threshold:  # NaN
            raise ValueError("threshold must not be NaN")
        # Surface unknown registry names at configuration time, not mid-fit.
        get_spec(self.undirected_model)
        get_spec(self.directed_model)

    def model_for(self, keep_directed: bool) -> str:
        return self.directed_model if keep_directed else self.undirected_model

    def replace(self, **changes) -> "AmudConfig":
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class ServeConfig:
    """Serving limits shared by the single engine and the shard router."""

    max_batch_size: int = 64
    max_wait_ms: float = 2.0
    cache_logits: bool = True
    logit_cache_capacity: int = 32
    #: bound on each engine's request queue (``None`` = unbounded).
    max_pending: Optional[int] = None
    #: cap on in-flight requests across all shards of one router.
    router_max_pending: int = 256

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.logit_cache_capacity < 1:
            raise ValueError(
                f"logit_cache_capacity must be >= 1, got {self.logit_cache_capacity}"
            )
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1 or None, got {self.max_pending}")
        if self.router_max_pending < 1:
            raise ValueError(f"router_max_pending must be >= 1, got {self.router_max_pending}")

    def engine_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs for one :class:`InferenceServer`."""
        return {
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "cache_logits": self.cache_logits,
            "logit_cache_capacity": self.logit_cache_capacity,
            "max_pending": self.max_pending,
        }

    def router_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs for a :class:`ShardRouter`."""
        return {
            "max_pending": self.router_max_pending,
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "cache_logits": self.cache_logits,
            "logit_cache_capacity": self.logit_cache_capacity,
            "engine_max_pending": self.max_pending,
        }

    def replace(self, **changes) -> "ServeConfig":
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)
