"""Frozen configuration objects for the :mod:`repro.api` facade.

Every knob of the load → AMUD → train → serve workflow lives in one of
these immutable dataclasses, so a configuration can be validated once,
shared between threads, logged, and passed through the CLI, programs and a
network front-end without kwargs drift:

* :class:`TrainConfig` — optimisation hyper-parameters (builds a
  :class:`repro.training.Trainer`);
* :class:`AmudConfig` — the AMUD threshold θ and the model the guidance
  selects for each paradigm;
* :class:`ServeConfig` — micro-batching, caching and back-pressure limits
  for :class:`repro.serving.InferenceServer` / :class:`repro.serving.ShardRouter`;
* :class:`ExperimentConfig` — the paper's repeated-trial protocol (seeds,
  trainer settings, model kwargs, worker bound);
* :class:`SweepSpec` — a declarative models × datasets × variants grid
  executed by :meth:`repro.api.Session.experiment`.
"""

from __future__ import annotations

import inspect
import json
from dataclasses import asdict, dataclass, field, replace
from dataclasses import fields as dataclass_fields
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence, Tuple, Union

from ..models.registry import get_spec
from ..training.trainer import Trainer


def _validate_model_kwargs(model_name: str, kwargs: Mapping[str, object]) -> None:
    """Fail fast on constructor kwargs the model cannot accept.

    A sweep cell that dies on an unknown kwarg should do so when the spec
    is built, not a thousand training runs into the grid.  Constructors
    taking ``**kwargs`` (e.g. the lazy ADPA factory) cannot be checked
    statically and are skipped.
    """
    spec = get_spec(model_name)
    try:
        parameters = inspect.signature(spec.constructor).parameters.values()
    except (TypeError, ValueError):  # pragma: no cover - builtin constructors
        return
    if any(p.kind is inspect.Parameter.VAR_KEYWORD for p in parameters):
        return
    accepted = {p.name for p in parameters}
    unknown = sorted(set(kwargs) - accepted)
    if unknown:
        raise ValueError(
            f"model {spec.name} does not accept constructor kwargs {unknown}; "
            f"accepted: {sorted(accepted - {'num_features', 'num_classes'})}"
        )

#: the paper's experimental protocol: every result is mean ± std over ten
#: repeated seeded trials (Sec. V-A).
DEFAULT_SEEDS: Tuple[int, ...] = tuple(range(10))

#: input-view protocols a sweep cell can request (Sec. V-A conventions).
SWEEP_VIEWS = (
    "natural",  # the digraph exactly as loaded (D-)
    "undirected",  # the coarse undirected transformation (U-)
    "amud",  # the AMUD-regime view of each dataset (Fig. 1 workflow)
    "paper-undirected",  # per-model U-/D- protocol; ADPA fed the U- view
    "paper-directed",  # per-model U-/D- protocol; ADPA fed the D- view
)


@dataclass(frozen=True)
class TrainConfig:
    """Immutable training hyper-parameters; ``build_trainer()`` applies them."""

    lr: float = 0.01
    weight_decay: float = 5e-4
    epochs: int = 200
    patience: int = 30
    optimizer: str = "adam"
    verbose: bool = False

    def __post_init__(self) -> None:
        # Trainer re-validates, but failing here pins the error to the
        # config object the caller actually wrote.
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")
        if self.optimizer not in ("adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}; expected 'adam' or 'sgd'")

    def build_trainer(self) -> Trainer:
        return Trainer(
            lr=self.lr,
            weight_decay=self.weight_decay,
            epochs=self.epochs,
            patience=self.patience,
            optimizer=self.optimizer,
            verbose=self.verbose,
        )

    @classmethod
    def from_trainer(cls, trainer: Trainer) -> "TrainConfig":
        return cls(
            lr=trainer.lr,
            weight_decay=trainer.weight_decay,
            epochs=trainer.epochs,
            patience=trainer.patience,
            optimizer=trainer.optimizer_name,
            verbose=trainer.verbose,
        )

    def replace(self, **changes) -> "TrainConfig":
        """Return a copy with ``changes`` applied (the config is frozen)."""
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class AmudConfig:
    """The Fig. 1 guidance step: threshold θ and the per-paradigm models."""

    threshold: float = 0.5
    undirected_model: str = "GPRGNN"
    directed_model: str = "ADPA"

    def __post_init__(self) -> None:
        # The guidance score lives in [0, 1], but out-of-range thresholds are
        # a legitimate way to force one paradigm (θ > 1 pins undirected,
        # θ < 0 pins directed); only reject values that compare as nothing.
        if self.threshold != self.threshold:  # NaN
            raise ValueError("threshold must not be NaN")
        # Surface unknown registry names at configuration time, not mid-fit.
        get_spec(self.undirected_model)
        get_spec(self.directed_model)

    def model_for(self, keep_directed: bool) -> str:
        return self.directed_model if keep_directed else self.undirected_model

    def replace(self, **changes) -> "AmudConfig":
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class HttpConfig:
    """Bind address and body/time limits for the HTTP front door.

    ``port=0`` asks the OS for a free port (the bound one is published on
    the running :class:`repro.serving.HttpServer`), which is how tests and
    benchmarks avoid collisions.
    """

    host: str = "127.0.0.1"
    port: int = 8100
    max_body_bytes: int = 1 << 20
    request_timeout: float = 60.0

    def __post_init__(self) -> None:
        if not (0 <= self.port <= 65535):
            raise ValueError(f"port must be in [0, 65535], got {self.port}")
        if self.max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {self.max_body_bytes}")
        if self.request_timeout <= 0:
            raise ValueError(f"request_timeout must be > 0, got {self.request_timeout}")

    def server_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs for :class:`repro.serving.HttpServer`."""
        return {
            "host": self.host,
            "port": self.port,
            "max_body_bytes": self.max_body_bytes,
            "request_timeout": self.request_timeout,
        }

    def replace(self, **changes) -> "HttpConfig":
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class ServeConfig:
    """Serving limits shared by the single engine and the shard router."""

    max_batch_size: int = 64
    max_wait_ms: float = 2.0
    cache_logits: bool = True
    logit_cache_capacity: int = 32
    #: bound on each engine's request queue (``None`` = unbounded).
    max_pending: Optional[int] = None
    #: cap on in-flight requests across all shards of one router.
    router_max_pending: int = 256
    #: compiled-trace policy for cache-miss forwards (see
    #: :mod:`repro.serving.trace`): ``"auto"`` compiles with remembered
    #: eager fallback on failure, ``"trace"`` retries every miss,
    #: ``"eager"`` disables compilation entirely.
    compile: str = "auto"
    #: optional HTTP front-door settings; ``Session.serve_http`` uses the
    #: defaults when this is ``None``.
    http: Optional[HttpConfig] = None

    def __post_init__(self) -> None:
        from ..serving.trace import COMPILE_MODES

        if self.http is not None and not isinstance(self.http, HttpConfig):
            raise TypeError(
                f"http must be an HttpConfig or None, got {type(self.http).__name__}"
            )
        if self.compile not in COMPILE_MODES:
            raise ValueError(
                f"unknown compile mode {self.compile!r}; expected one of {COMPILE_MODES}"
            )
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.logit_cache_capacity < 1:
            raise ValueError(
                f"logit_cache_capacity must be >= 1, got {self.logit_cache_capacity}"
            )
        if self.max_pending is not None and self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1 or None, got {self.max_pending}")
        if self.router_max_pending < 1:
            raise ValueError(f"router_max_pending must be >= 1, got {self.router_max_pending}")

    def engine_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs for one :class:`InferenceServer`."""
        return {
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "cache_logits": self.cache_logits,
            "logit_cache_capacity": self.logit_cache_capacity,
            "max_pending": self.max_pending,
            "compile": self.compile,
        }

    def router_kwargs(self) -> Dict[str, object]:
        """Constructor kwargs for a :class:`ShardRouter`."""
        return {
            "max_pending": self.router_max_pending,
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "cache_logits": self.cache_logits,
            "logit_cache_capacity": self.logit_cache_capacity,
            "engine_max_pending": self.max_pending,
            "compile": self.compile,
        }

    def replace(self, **changes) -> "ServeConfig":
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass(frozen=True)
class ExperimentConfig:
    """The repeated-trial protocol: which seeds, how to train, how to run.

    One :class:`ExperimentConfig` describes everything a single experiment
    cell needs beyond the (model, dataset) pair: the seed list (defaulting
    to the paper's ten trials), the frozen training hyper-parameters,
    constructor kwargs applied to every cell, and the bound of the worker
    pool that executes runs (``max_workers=None`` sizes it automatically
    from the CPU count; ``1`` forces serial execution — both produce
    bit-identical aggregates by construction).
    """

    seeds: Tuple[int, ...] = DEFAULT_SEEDS
    train: TrainConfig = TrainConfig()
    model_kwargs: Mapping[str, object] = field(default_factory=dict)
    max_workers: Optional[int] = None

    def __post_init__(self) -> None:
        seeds = tuple(int(seed) for seed in self.seeds)
        if not seeds:
            raise ValueError("seeds must not be empty")
        if len(set(seeds)) != len(seeds):
            raise ValueError(f"duplicate seeds: {seeds}")
        object.__setattr__(self, "seeds", seeds)
        if not isinstance(self.train, TrainConfig):
            raise TypeError(
                f"train must be a TrainConfig, got {type(self.train).__name__}"
            )
        object.__setattr__(self, "model_kwargs", dict(self.model_kwargs))
        if self.max_workers is not None and self.max_workers < 1:
            raise ValueError(f"max_workers must be >= 1 or None, got {self.max_workers}")

    def build_trainer(self) -> Trainer:
        return self.train.build_trainer()

    def quick(self) -> "ExperimentConfig":
        """The one-seed smoke protocol (CI / ``repro experiment --quick``)."""
        return self.replace(
            seeds=(self.seeds[0],),
            train=self.train.replace(
                epochs=min(self.train.epochs, 40),
                patience=min(self.train.patience, 10),
            ),
        )

    def replace(self, **changes) -> "ExperimentConfig":
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        return {
            "seeds": list(self.seeds),
            "train": self.train.as_dict(),
            "model_kwargs": dict(self.model_kwargs),
            "max_workers": self.max_workers,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExperimentConfig":
        unknown = set(payload) - {"seeds", "train", "model_kwargs", "max_workers"}
        if unknown:
            raise ValueError(f"unknown ExperimentConfig keys: {sorted(unknown)}")
        train = payload.get("train", {})
        if not isinstance(train, TrainConfig):
            known_train = {field.name for field in dataclass_fields(TrainConfig)}
            unknown_train = set(train) - known_train
            if unknown_train:
                raise ValueError(
                    f"unknown train keys: {sorted(unknown_train)}; "
                    f"expected a subset of {sorted(known_train)}"
                )
            train = TrainConfig(**train)
        return cls(
            seeds=tuple(payload.get("seeds", DEFAULT_SEEDS)),
            train=train,
            model_kwargs=dict(payload.get("model_kwargs", {})),
            max_workers=payload.get("max_workers"),
        )


@dataclass(frozen=True)
class SweepSpec:
    """A declarative models × datasets × variants experiment grid.

    ``variants`` maps a variant label to constructor-kwarg overrides, which
    is how ablation grids (k-order sweeps, attention families, residual
    strengths) are expressed; the default is one unnamed variant with no
    overrides.  ``model_kwargs`` carries per-model constructor overrides
    (looked up by registry name, case-insensitively).  ``view`` selects the
    input-view protocol for every cell — see :data:`SWEEP_VIEWS`.

    The cell order — datasets outermost, then models, then variants — is
    part of the contract: reports list cells in exactly this order no
    matter how the runs were scheduled.
    """

    models: Tuple[str, ...]
    datasets: Tuple[str, ...]
    config: ExperimentConfig = ExperimentConfig()
    view: str = "natural"
    variants: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    model_kwargs: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    dataset_seed: int = 0

    def __post_init__(self) -> None:
        models = tuple(str(name) for name in self.models)
        if not models:
            raise ValueError("models must not be empty")
        for name in models:
            get_spec(name)  # unknown registry names fail at spec build time
        object.__setattr__(self, "models", models)

        # Normalised to the registry's lower-case names, matching what
        # load_dataset accepts, so report lookups have one canonical key.
        datasets = tuple(str(name).lower() for name in self.datasets)
        if not datasets:
            raise ValueError("datasets must not be empty")
        from ..datasets.registry import DATASET_CONFIGS

        for name in datasets:
            if name not in DATASET_CONFIGS:
                raise KeyError(
                    f"unknown dataset {name!r}; available: {sorted(DATASET_CONFIGS)}"
                )
        object.__setattr__(self, "datasets", datasets)

        if not isinstance(self.config, ExperimentConfig):
            raise TypeError(
                f"config must be an ExperimentConfig, got {type(self.config).__name__}"
            )
        if self.view not in SWEEP_VIEWS:
            raise ValueError(f"unknown view {self.view!r}; expected one of {SWEEP_VIEWS}")
        variants = self.variants or {"": {}}
        object.__setattr__(
            self,
            "variants",
            {str(label): dict(overrides) for label, overrides in variants.items()},
        )
        object.__setattr__(
            self,
            "model_kwargs",
            {str(name): dict(kwargs) for name, kwargs in self.model_kwargs.items()},
        )
        # Every cell's merged kwargs must be constructible; catching a typo
        # here beats dying mid-grid after hours of training.
        for model in self.models:
            for variant in self.variants:
                merged = self.kwargs_for(model, variant)
                if "seed" in merged:
                    raise ValueError(
                        "model kwargs must not pin 'seed'; the per-trial seed "
                        "comes from the config's seeds list"
                    )
                _validate_model_kwargs(model, merged)

    def cells(self) -> Sequence[Tuple[str, str, str]]:
        """The (dataset, model, variant) triples in canonical order."""
        return [
            (dataset, model, variant)
            for dataset in self.datasets
            for model in self.models
            for variant in self.variants
        ]

    def kwargs_for(self, model: str, variant: str) -> Dict[str, object]:
        """Merged constructor kwargs for one cell.

        Precedence (later wins): config-wide kwargs, per-model kwargs,
        variant overrides.
        """
        merged = dict(self.config.model_kwargs)
        per_model = self.model_kwargs.get(model, self.model_kwargs.get(model.lower()))
        if per_model:
            merged.update(per_model)
        merged.update(self.variants[variant])
        return merged

    def replace(self, **changes) -> "SweepSpec":
        return replace(self, **changes)

    def as_dict(self) -> Dict[str, object]:
        return {
            "models": list(self.models),
            "datasets": list(self.datasets),
            "config": self.config.as_dict(),
            "view": self.view,
            "variants": {label: dict(kw) for label, kw in self.variants.items()},
            "model_kwargs": {name: dict(kw) for name, kw in self.model_kwargs.items()},
            "dataset_seed": self.dataset_seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SweepSpec":
        """Build a spec from a plain mapping (parsed TOML/JSON).

        The experiment protocol may be given nested under ``config`` or as
        the top-level shortcuts ``seeds`` / ``train`` / ``max_workers``
        (friendlier in TOML).
        """
        payload = dict(payload)
        known = {
            "models", "datasets", "config", "view", "variants", "model_kwargs",
            "dataset_seed", "seeds", "train", "max_workers",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown SweepSpec keys: {sorted(unknown)}")
        config_payload = dict(payload.get("config", {}))
        for shortcut in ("seeds", "train", "max_workers"):
            if shortcut in payload:
                config_payload[shortcut] = payload[shortcut]
        return cls(
            models=tuple(payload.get("models", ())),
            datasets=tuple(payload.get("datasets", ())),
            config=ExperimentConfig.from_dict(config_payload),
            view=payload.get("view", "natural"),
            variants=payload.get("variants", {}),
            model_kwargs=payload.get("model_kwargs", {}),
            dataset_seed=int(payload.get("dataset_seed", 0)),
        )

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "SweepSpec":
        """Load a spec from a ``.json`` or ``.toml`` file."""
        path = Path(path)
        text = path.read_text()
        if path.suffix.lower() == ".toml":
            try:
                import tomllib
            except ImportError:  # pragma: no cover - version-dependent
                raise ValueError(
                    "TOML specs need Python 3.11+ (tomllib); use a JSON spec on "
                    "older interpreters"
                ) from None
            payload = tomllib.loads(text)
        else:
            payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError(f"spec file {path} must contain a table/object at top level")
        return cls.from_dict(payload)
