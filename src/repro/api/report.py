"""Typed experiment reports with stable JSON round-trips.

The paper reports every number as mean ± std over repeated seeded trials;
these dataclasses are the typed form of that protocol's output:

* :class:`RunReport` — one (model, dataset, variant, seed) training run;
* :class:`ExperimentReport` — one experiment cell: the aggregated runs of
  one (model, dataset, variant) triple;
* :class:`SweepReport` — every cell of one :class:`repro.api.SweepSpec`,
  with table rendering (:meth:`SweepReport.as_table`) and a versioned JSON
  form (:meth:`SweepReport.to_json` / :meth:`SweepReport.from_json`).

Aggregation is deterministic: runs are ordered by their position in the
config's seed tuple and cells by the spec's canonical order, independent of
how the worker pool scheduled them, so parallel and serial execution emit
byte-identical reports (up to wall-clock timing fields).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..metrics.classification import summarize_runs
from ..training.trainer import TrainResult

PathLike = Union[str, Path]

#: bumped whenever the JSON schema of the report types changes.
REPORT_FORMAT_VERSION = 1


@dataclass(frozen=True)
class RunReport:
    """One seeded training run of one experiment cell."""

    model: str
    dataset: str
    seed: int
    train_accuracy: float
    val_accuracy: float
    test_accuracy: float
    best_epoch: int
    epochs_run: int
    variant: str = ""
    fit_seconds: float = 0.0
    preprocess_seconds: float = 0.0

    @classmethod
    def from_train_result(
        cls,
        result: TrainResult,
        *,
        model: str,
        dataset: str,
        seed: int,
        variant: str = "",
    ) -> "RunReport":
        return cls(
            model=model,
            dataset=dataset,
            seed=int(seed),
            train_accuracy=float(result.train_accuracy),
            val_accuracy=float(result.val_accuracy),
            test_accuracy=float(result.test_accuracy),
            best_epoch=int(result.best_epoch),
            epochs_run=int(result.epochs_run),
            variant=variant,
            fit_seconds=float(result.fit_seconds),
            preprocess_seconds=float(result.preprocess_seconds),
        )

    def as_row(self) -> Dict[str, object]:
        """A self-describing flat row: identity, seed and all accuracies."""
        return {
            "model": self.model,
            "dataset": self.dataset,
            "variant": self.variant,
            "seed": self.seed,
            "train_accuracy": round(self.train_accuracy, 4),
            "val_accuracy": round(self.val_accuracy, 4),
            "test_accuracy": round(self.test_accuracy, 4),
            "best_epoch": self.best_epoch,
            "epochs_run": self.epochs_run,
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "dataset": self.dataset,
            "variant": self.variant,
            "seed": self.seed,
            "train_accuracy": self.train_accuracy,
            "val_accuracy": self.val_accuracy,
            "test_accuracy": self.test_accuracy,
            "best_epoch": self.best_epoch,
            "epochs_run": self.epochs_run,
            "fit_seconds": self.fit_seconds,
            "preprocess_seconds": self.preprocess_seconds,
        }

    def canonical(self) -> "RunReport":
        """This run with its wall-clock fields zeroed.

        Accuracies, epochs and seeds are deterministic functions of the
        spec; ``fit_seconds``/``preprocess_seconds`` are the only fields
        that vary between two executions of the same cell.  The canonical
        form is what distributed sweeps compare and merge bit-identically.
        """
        return replace(self, fit_seconds=0.0, preprocess_seconds=0.0)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "RunReport":
        return cls(
            model=str(payload["model"]),
            dataset=str(payload["dataset"]),
            seed=int(payload["seed"]),
            train_accuracy=float(payload["train_accuracy"]),
            val_accuracy=float(payload["val_accuracy"]),
            test_accuracy=float(payload["test_accuracy"]),
            best_epoch=int(payload["best_epoch"]),
            epochs_run=int(payload["epochs_run"]),
            variant=str(payload.get("variant", "")),
            fit_seconds=float(payload.get("fit_seconds", 0.0)),
            preprocess_seconds=float(payload.get("preprocess_seconds", 0.0)),
        )


@dataclass(frozen=True)
class ExperimentReport:
    """Aggregated runs of one (model, dataset, variant) cell."""

    model: str
    dataset: str
    test_mean: float
    test_std: float
    val_mean: float
    val_std: float
    runs: Tuple[RunReport, ...]
    variant: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "runs", tuple(self.runs))

    @classmethod
    def from_runs(cls, runs: Sequence[RunReport]) -> "ExperimentReport":
        """Aggregate run reports (in seed order) into one cell report."""
        if not runs:
            raise ValueError("an experiment cell needs at least one run")
        first = runs[0]
        for run in runs[1:]:
            if (run.model, run.dataset, run.variant) != (
                first.model, first.dataset, first.variant,
            ):
                raise ValueError(
                    "all runs of one cell must share (model, dataset, variant); "
                    f"got {(run.model, run.dataset, run.variant)} next to "
                    f"{(first.model, first.dataset, first.variant)}"
                )
        test = summarize_runs(run.test_accuracy for run in runs)
        val = summarize_runs(run.val_accuracy for run in runs)
        return cls(
            model=first.model,
            dataset=first.dataset,
            test_mean=test["mean"],
            test_std=test["std"],
            val_mean=val["mean"],
            val_std=val["std"],
            runs=tuple(runs),
            variant=first.variant,
        )

    @property
    def seeds(self) -> Tuple[int, ...]:
        return tuple(run.seed for run in self.runs)

    def as_row(self) -> Dict[str, object]:
        """A self-describing table row: aggregates, val stats, seed list."""
        return {
            "model": self.model,
            "dataset": self.dataset,
            "variant": self.variant,
            "test_mean": round(self.test_mean, 4),
            "test_std": round(self.test_std, 4),
            "val_mean": round(self.val_mean, 4),
            "val_std": round(self.val_std, 4),
            "seeds": list(self.seeds),
            "test_accuracies": [round(run.test_accuracy, 4) for run in self.runs],
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "model": self.model,
            "dataset": self.dataset,
            "variant": self.variant,
            "test_mean": self.test_mean,
            "test_std": self.test_std,
            "val_mean": self.val_mean,
            "val_std": self.val_std,
            "runs": [run.to_dict() for run in self.runs],
        }

    def canonical(self) -> "ExperimentReport":
        """This cell with every run's wall-clock fields zeroed."""
        return replace(self, runs=tuple(run.canonical() for run in self.runs))

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExperimentReport":
        return cls(
            model=str(payload["model"]),
            dataset=str(payload["dataset"]),
            test_mean=float(payload["test_mean"]),
            test_std=float(payload["test_std"]),
            val_mean=float(payload["val_mean"]),
            val_std=float(payload["val_std"]),
            runs=tuple(RunReport.from_dict(run) for run in payload["runs"]),
            variant=str(payload.get("variant", "")),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = self.model if not self.variant else f"{self.model}/{self.variant}"
        return (
            f"ExperimentReport({label} on {self.dataset}: "
            f"{100 * self.test_mean:.1f}±{100 * self.test_std:.1f})"
        )


@dataclass(frozen=True)
class SweepReport:
    """Every cell of one sweep, in the spec's canonical order."""

    cells: Tuple[ExperimentReport, ...]
    spec: Optional[Dict[str, object]] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "cells", tuple(self.cells))

    # ------------------------------------------------------------------ #
    # Lookup and grouping
    # ------------------------------------------------------------------ #
    def cell(self, model: str, dataset: str, variant: str = "") -> ExperimentReport:
        """The report of one (model, dataset, variant) cell."""
        for cell in self.cells:
            if (
                cell.model.lower() == model.lower()
                and cell.dataset == dataset
                and cell.variant == variant
            ):
                return cell
        raise KeyError(f"no cell for model={model!r} dataset={dataset!r} variant={variant!r}")

    def by_dataset(self) -> Dict[str, List[ExperimentReport]]:
        """Cells grouped per dataset (the shape the table formatters eat)."""
        grouped: Dict[str, List[ExperimentReport]] = {}
        for cell in self.cells:
            grouped.setdefault(cell.dataset, []).append(cell)
        return grouped

    def as_rows(self) -> List[Dict[str, object]]:
        return [cell.as_row() for cell in self.cells]

    def run_rows(self) -> List[Dict[str, object]]:
        """Every individual run as a flat row (seed-level detail)."""
        return [run.as_row() for cell in self.cells for run in cell.runs]

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #
    def as_table(self, include_rank: bool = True) -> str:
        """Fixed-width ``row × dataset`` table of ``mean±std`` cells.

        Rows are models, or ``model/variant`` when the sweep has named
        variants; the Rank column averages each row's per-dataset rank by
        test mean (1 = best), as in the paper's tables.
        """
        datasets: List[str] = []
        labels: List[str] = []
        lookup: Dict[Tuple[str, str], ExperimentReport] = {}
        for cell in self.cells:
            label = cell.model if not cell.variant else f"{cell.model}/{cell.variant}"
            if cell.dataset not in datasets:
                datasets.append(cell.dataset)
            if label not in labels:
                labels.append(label)
            lookup[(label, cell.dataset)] = cell

        ranks: Dict[str, List[float]] = {}
        for dataset in datasets:
            scored = [
                (label, lookup[(label, dataset)].test_mean)
                for label in labels
                if (label, dataset) in lookup
            ]
            ordered = sorted(scored, key=lambda pair: pair[1], reverse=True)
            for position, (label, _) in enumerate(ordered, start=1):
                ranks.setdefault(label, []).append(float(position))

        header = ["Model"] + datasets + (["Rank"] if include_rank else [])
        lines = ["  ".join(f"{column:>16s}" for column in header)]
        for label in labels:
            cells = [f"{label:>16s}"]
            for dataset in datasets:
                cell = lookup.get((label, dataset))
                if cell is None:
                    cells.append(f"{'-':>16s}")
                else:
                    cells.append(f"{100 * cell.test_mean:13.1f}±{100 * cell.test_std:.1f}")
            if include_rank:
                mean_rank = float(np.mean(ranks[label])) if ranks.get(label) else float("nan")
                cells.append(f"{mean_rank:>16.1f}")
            lines.append("  ".join(cells))
        return "\n".join(lines)

    def canonical(self) -> "SweepReport":
        """The report with all wall-clock timing fields zeroed.

        Two executions of the same spec — serial, thread-parallel, or
        sharded across processes and merged — produce byte-identical
        canonical JSON; only the timing fields differ between runs.
        """
        return replace(self, cells=tuple(cell.canonical() for cell in self.cells))

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[str, object]:
        return {
            "format_version": REPORT_FORMAT_VERSION,
            "kind": "sweep-report",
            "spec": self.spec,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SweepReport":
        version = int(payload.get("format_version", -1))
        if version != REPORT_FORMAT_VERSION:
            raise ValueError(
                f"unsupported report version {version}; expected {REPORT_FORMAT_VERSION}"
            )
        return cls(
            cells=tuple(ExperimentReport.from_dict(cell) for cell in payload["cells"]),
            spec=payload.get("spec"),
        )

    @classmethod
    def from_json(cls, text: str) -> "SweepReport":
        return cls.from_dict(json.loads(text))

    def save(self, path: PathLike, indent: int = 2) -> Path:
        """Write the report JSON to ``path`` (parents created)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(indent=indent) + "\n")
        return path

    @classmethod
    def load(cls, path: PathLike) -> "SweepReport":
        return cls.from_json(Path(path).read_text())
