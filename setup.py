"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that the package installs in
environments without the ``wheel`` package (legacy ``pip install -e .
--no-use-pep517`` path), which is the situation in the offline
reproduction environment.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Breaking the Entanglement of Homophily and Heterophily "
        "in Semi-supervised Node Classification' (AMUD + ADPA, ICDE 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy>=1.23", "scipy>=1.9", "networkx>=2.8"],
)
