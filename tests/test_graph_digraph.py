"""Tests for the DirectedGraph container and edge-list constructor."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import DirectedGraph, from_edge_list


def _simple_graph(**kwargs):
    adjacency = sp.csr_matrix(np.array([[0, 1, 0], [0, 0, 1], [0, 0, 0]], dtype=float))
    features = np.arange(6, dtype=float).reshape(3, 2)
    labels = np.array([0, 1, 1])
    return DirectedGraph(adjacency=adjacency, features=features, labels=labels, **kwargs)


class TestConstruction:
    def test_basic_properties(self):
        graph = _simple_graph(name="demo")
        assert graph.num_nodes == 3
        assert graph.num_edges == 2
        assert graph.num_features == 2
        assert graph.num_classes == 2
        assert graph.name == "demo"

    def test_rejects_non_square_adjacency(self):
        with pytest.raises(ValueError):
            DirectedGraph(
                adjacency=sp.csr_matrix(np.ones((2, 3))),
                features=np.zeros((2, 1)),
                labels=np.zeros(2, dtype=int),
            )

    def test_rejects_feature_mismatch(self):
        with pytest.raises(ValueError):
            DirectedGraph(
                adjacency=sp.identity(3, format="csr"),
                features=np.zeros((2, 1)),
                labels=np.zeros(3, dtype=int),
            )

    def test_rejects_label_mismatch(self):
        with pytest.raises(ValueError):
            DirectedGraph(
                adjacency=sp.identity(3, format="csr"),
                features=np.zeros((3, 1)),
                labels=np.zeros(2, dtype=int),
            )

    def test_rejects_bad_mask_length(self):
        with pytest.raises(ValueError):
            _simple_graph(train_mask=np.array([True, False]))

    def test_masks_coerced_to_bool(self):
        graph = _simple_graph(train_mask=np.array([1, 0, 1]))
        assert graph.train_mask.dtype == bool

    def test_from_edge_list(self):
        edges = np.array([[0, 1], [1, 2], [0, 1]])  # duplicate collapses
        graph = from_edge_list(edges, 3, np.zeros((3, 2)), np.array([0, 0, 1]))
        assert graph.num_edges == 2
        assert graph.adjacency[0, 1] == 1.0

    def test_from_edge_list_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            from_edge_list(np.array([0, 1, 2]), 3, np.zeros((3, 1)), np.zeros(3, dtype=int))


class TestDerivedQuantities:
    def test_degrees(self):
        graph = _simple_graph()
        np.testing.assert_array_equal(graph.out_degrees(), [1, 1, 0])
        np.testing.assert_array_equal(graph.in_degrees(), [0, 1, 1])

    def test_is_directed(self):
        assert _simple_graph().is_directed()
        symmetric = sp.csr_matrix(np.array([[0, 1], [1, 0]], dtype=float))
        graph = DirectedGraph(symmetric, np.zeros((2, 1)), np.array([0, 1]))
        assert not graph.is_directed()

    def test_edge_list_roundtrip(self):
        graph = _simple_graph()
        rows, cols = graph.edge_list()
        assert set(zip(rows.tolist(), cols.tolist())) == {(0, 1), (1, 2)}

    def test_label_distribution_sums_to_one(self):
        graph = _simple_graph()
        distribution = graph.label_distribution()
        assert distribution.sum() == pytest.approx(1.0)
        assert distribution[1] == pytest.approx(2 / 3)

    def test_summary_fields(self):
        summary = _simple_graph(name="demo").summary()
        assert summary["name"] == "demo"
        assert summary["nodes"] == 3
        assert summary["directed"] is True

    def test_has_splits(self):
        graph = _simple_graph()
        assert not graph.has_splits
        graph = _simple_graph(
            train_mask=np.array([1, 0, 0]),
            val_mask=np.array([0, 1, 0]),
            test_mask=np.array([0, 0, 1]),
        )
        assert graph.has_splits


class TestCopySemantics:
    def test_with_returns_new_object(self):
        graph = _simple_graph()
        renamed = graph.with_(name="other")
        assert renamed.name == "other"
        assert graph.name == "graph"

    def test_copy_is_deep_for_arrays(self):
        graph = _simple_graph()
        clone = graph.copy()
        clone.features[0, 0] = 99.0
        assert graph.features[0, 0] != 99.0
        clone.meta["x"] = 1
        assert "x" not in graph.meta
