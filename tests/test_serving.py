"""Serving layer: fingerprints, caches, artifacts and legacy-artifact persistence."""

import numpy as np
import pytest

from repro.models import available_models, create_model
from repro.models.mlp import MLPClassifier
from repro.nn.layers import MLP
from repro.api import Session, TrainConfig
from repro.api.session import decision_to_dict, train_result_to_dict
from repro.serving import (
    InferenceServer,
    LRUCache,
    OperatorCache,
    array_digest,
    graph_fingerprint,
    load_artifact,
    load_artifact_graph,
    model_fingerprint,
    restore_model,
    save_model,
)
from repro.training import Trainer


@pytest.fixture()
def short_trainer():
    """Just enough epochs to move the weights away from initialisation."""
    return Trainer(epochs=3, patience=3)


class TestFingerprint:
    def test_copy_has_same_fingerprint(self, homophilous_graph):
        assert homophilous_graph.fingerprint() == homophilous_graph.copy().fingerprint()

    def test_name_and_meta_do_not_change_fingerprint(self, homophilous_graph):
        renamed = homophilous_graph.with_(name="other", meta={"x": 1})
        assert renamed.fingerprint() == homophilous_graph.fingerprint()

    def test_content_changes_change_fingerprint(self, homophilous_graph):
        base = homophilous_graph.fingerprint()
        perturbed = homophilous_graph.with_(features=homophilous_graph.features + 1e-9)
        assert perturbed.fingerprint() != base
        flipped = homophilous_graph.with_(train_mask=~homophilous_graph.train_mask)
        assert flipped.fingerprint() != base
        transposed = homophilous_graph.with_(adjacency=homophilous_graph.adjacency.T)
        assert transposed.fingerprint() != base

    def test_fingerprint_is_cached(self, homophilous_graph):
        assert homophilous_graph.fingerprint() is homophilous_graph.fingerprint()

    def test_array_digest_separates_shape_and_dtype(self):
        data = np.arange(24, dtype=np.float64)
        assert array_digest(data) != array_digest(data.reshape(6, 4))
        assert array_digest(data) != array_digest(data.astype(np.float32))

    def test_model_fingerprint_ignores_kwarg_order(self):
        a = model_fingerprint("ADPA", {"hidden": 64, "num_steps": 3})
        b = model_fingerprint("ADPA", {"num_steps": 3, "hidden": 64})
        assert a == b
        assert a != model_fingerprint("ADPA", {"hidden": 32, "num_steps": 3})


class TestLRUCache:
    def test_eviction_order_and_stats(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        stats = cache.stats()
        assert stats.evictions == 1
        assert stats.size == 2

    def test_get_or_compute_computes_once(self):
        cache = LRUCache(capacity=4)
        calls = []
        for _ in range(3):
            value = cache.get_or_compute("key", lambda: calls.append(1) or "value")
            assert value == "value"
        assert len(calls) == 1
        stats = cache.stats()
        assert stats.hits == 2 and stats.misses == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)


class TestOperatorCache:
    def test_preprocess_computed_once_per_model_graph(self, homophilous_graph):
        cache = OperatorCache(capacity=4)
        model = create_model("SGC", homophilous_graph, seed=0)
        first = cache.preprocess(model, homophilous_graph)
        second = cache.preprocess(model, homophilous_graph)
        assert first is second
        assert cache.stats().misses == 1 and cache.stats().hits == 1

    def test_cache_hit_still_serves_lazily_built_twin(self, heterophilous_graph):
        # Two equal-signature ADPA instances share one preprocess entry; the
        # second never runs preprocess, so forward must build its modules
        # from the cached operator set instead of raising.
        cache = OperatorCache(capacity=4)
        first = create_model("ADPA", heterophilous_graph, seed=0, hidden=16)
        twin = create_model("ADPA", heterophilous_graph, seed=0, hidden=16)
        shared = cache.preprocess(first, heterophilous_graph)
        assert cache.preprocess(twin, heterophilous_graph) is shared
        twin.eval()
        logits = twin.forward(shared)
        assert logits.numpy().shape == (
            heterophilous_graph.num_nodes, heterophilous_graph.num_classes
        )

    def test_distinct_configs_do_not_share_entries(self, homophilous_graph):
        cache = OperatorCache(capacity=4)
        small = create_model("GCN", homophilous_graph, seed=0, hidden=8)
        large = create_model("GCN", homophilous_graph, seed=0, hidden=16)
        cache.preprocess(small, homophilous_graph)
        cache.preprocess(large, homophilous_graph)
        assert len(cache) == 2

    def test_hand_constructed_models_never_collide(self, homophilous_graph):
        cache = OperatorCache(capacity=4)
        a = MLPClassifier(homophilous_graph.num_features, homophilous_graph.num_classes)
        b = MLPClassifier(homophilous_graph.num_features, homophilous_graph.num_classes)
        cache.preprocess(a, homophilous_graph)
        cache.preprocess(b, homophilous_graph)
        assert len(cache) == 2


class TestBuffers:
    def test_batchnorm_running_stats_survive_state_dict(self):
        rng = np.random.default_rng(0)
        mlp = MLP(8, 16, 4, batch_norm=True, rng=rng)
        mlp.train()
        from repro.nn.tensor import Tensor

        mlp(Tensor(rng.normal(size=(32, 8))))  # move the running statistics
        state = mlp.state_dict()
        buffer_keys = [key for key in state if "running" in key]
        assert buffer_keys, "batch-norm buffers missing from the state dict"

        fresh = MLP(8, 16, 4, batch_norm=True, rng=np.random.default_rng(1))
        fresh.load_state_dict(state)
        for name, value in fresh.named_buffers():
            np.testing.assert_array_equal(value, state[name])

    def test_unknown_keys_still_rejected(self):
        mlp = MLP(4, 8, 2, batch_norm=True)
        with pytest.raises(KeyError):
            mlp.load_state_dict({"bogus": np.zeros(3)})


class TestArtifactRoundTrip:
    @pytest.mark.parametrize("model_name", available_models())
    def test_every_registry_model_reloads_bit_exactly(
        self, model_name, homophilous_graph, short_trainer, tmp_path
    ):
        kwargs = {"seed": 0} if model_name.lower() == "sgc" else {"seed": 0, "hidden": 16}
        model = create_model(model_name, homophilous_graph, **kwargs)
        short_trainer.fit(model, homophilous_graph)
        trained_logits = model.predict_logits(homophilous_graph)

        save_model(model, tmp_path / "artifact", graph=homophilous_graph)
        restored, cache, artifact, _ = restore_model(tmp_path / "artifact")
        restored_logits = restored.predict_logits(homophilous_graph, cache)

        assert artifact.model_name.lower() == model_name.lower()
        np.testing.assert_array_equal(trained_logits, restored_logits)

        # The equality must come from the loaded weights, not from seeding:
        # an untrained twin disagrees with the trained logits.
        fresh = artifact.build_model()
        fresh_cache = fresh.preprocess(homophilous_graph)
        fresh.eval()
        assert not np.array_equal(trained_logits, fresh.forward(fresh_cache).numpy())

    def test_shipped_graph_round_trips(self, homophilous_graph, tmp_path):
        model = create_model("SGC", homophilous_graph, seed=0)
        save_model(model, tmp_path / "art", graph=homophilous_graph)
        loaded = load_artifact_graph(tmp_path / "art")
        assert loaded.fingerprint() == homophilous_graph.fingerprint()

    def test_hand_constructed_model_requires_name(self, homophilous_graph, tmp_path):
        model = MLPClassifier(homophilous_graph.num_features, homophilous_graph.num_classes)
        with pytest.raises(ValueError, match="model_name"):
            save_model(model, tmp_path / "art")
        save_model(model, tmp_path / "named", model_name="MLP", model_kwargs={})
        assert load_artifact(tmp_path / "named").model_name == "MLP"

    def test_missing_artifact_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_artifact(tmp_path / "nope")

    def test_non_json_kwargs_fail_at_save_time(self, homophilous_graph, tmp_path):
        model = MLPClassifier(homophilous_graph.num_features, homophilous_graph.num_classes)
        with pytest.raises(ValueError, match="JSON"):
            save_model(
                model, tmp_path / "art",
                model_name="MLP", model_kwargs={"rng": np.random.default_rng(0)},
            )

    def test_version_mismatch_raises(self, homophilous_graph, tmp_path):
        model = create_model("MLP", homophilous_graph, seed=0)
        directory = save_model(model, tmp_path / "art")
        manifest = directory / "artifact.json"
        import json

        payload = json.loads(manifest.read_text())
        payload["format_version"] = 99
        manifest.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            load_artifact(directory)

    def test_restored_adpa_refuses_incompatible_operator_count(
        self, heterophilous_graph, tmp_path
    ):
        model = create_model("ADPA", heterophilous_graph, seed=0, hidden=16)
        Trainer(epochs=2, patience=2).fit(model, heterophilous_graph)
        save_model(model, tmp_path / "art", graph=heterophilous_graph)
        restored, _, _, _ = restore_model(tmp_path / "art")
        assert restored.architecture_frozen
        # A graph whose operator selection yields a different count must
        # raise instead of silently rebuilding (and re-randomising) the
        # restored attention modules.
        with pytest.raises(RuntimeError, match="incompatible"):
            restored._build_modules(num_operators=1)

    def test_restore_without_graph_needs_explicit_one(self, homophilous_graph, tmp_path):
        model = create_model("MLP", homophilous_graph, seed=0)
        save_model(model, tmp_path / "art")  # no graph shipped
        with pytest.raises(FileNotFoundError, match="graph"):
            restore_model(tmp_path / "art")
        restored, _, _, used = restore_model(tmp_path / "art", homophilous_graph)
        assert used is homophilous_graph
        assert restored.num_classes == homophilous_graph.num_classes


class TestLegacyPipelineArtifacts:
    """Artifacts written by the removed ``AmudPipeline.save`` stay loadable."""

    @staticmethod
    def _write_legacy_artifact(graph, directory):
        model = Session(train=TrainConfig(epochs=5, patience=5)).from_graph(graph).amud().fit()
        save_model(
            model.model,
            directory,
            metadata={
                "kind": "amud-pipeline",
                "pipeline": {
                    "undirected_model": "GPRGNN",
                    "directed_model": "ADPA",
                    "threshold": 0.5,
                    "seed": 0,
                    "model_kwargs": {},
                    "trainer": {
                        "lr": 0.01, "weight_decay": 5e-4, "epochs": 5,
                        "patience": 5, "optimizer": "adam",
                    },
                },
                "model_name": model.model_name,
                "decision": decision_to_dict(model.decision),
                "train_result": train_result_to_dict(model.train_result),
            },
            graph=model.graph,
        )
        return model

    def test_session_restore_reproduces_predictions(self, heterophilous_graph, tmp_path):
        model = self._write_legacy_artifact(heterophilous_graph, tmp_path / "pipe")
        restored = Session().restore(tmp_path / "pipe")
        np.testing.assert_array_equal(model.predict(), restored.predict())
        assert restored.model_name == model.model_name
        assert restored.decision.modeling == model.decision.modeling
        assert restored.train_result.test_accuracy == pytest.approx(model.test_accuracy)

    def test_restored_legacy_artifact_compiles(self, heterophilous_graph, tmp_path):
        model = self._write_legacy_artifact(heterophilous_graph, tmp_path / "pipe")
        restored = Session().restore(tmp_path / "pipe")
        program = restored.compile()
        np.testing.assert_array_equal(program.run(), model.predict_logits())


class TestPreprocessCachedContract:
    def test_preprocess_cached_uses_shared_cache(self, homophilous_graph):
        cache = LRUCache(capacity=4)
        model = create_model("GPRGNN", homophilous_graph, seed=0)
        first = model.preprocess_cached(homophilous_graph, cache)
        second = model.preprocess_cached(homophilous_graph, cache)
        assert first is second
        assert cache.stats().misses == 1

    def test_registry_models_have_content_signatures(self, homophilous_graph):
        one = create_model("GCN", homophilous_graph, seed=0, hidden=8)
        two = create_model("GCN", homophilous_graph, seed=0, hidden=8)
        assert one.signature() == two.signature()
