"""Transports, the HMAC handshake, and connect-back worker registration."""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cluster import (
    CONNECT_PLACEHOLDER,
    PROTOCOL_VERSION,
    HandshakeError,
    ProtocolError,
    TcpTransport,
    TransportClosed,
    WorkerListener,
    WorkerPool,
    decode_message,
    encode_message,
    parse_hostport,
    read_secret,
    ssh_worker_command,
    worker_connect_command,
)
from repro.cluster.net import client_handshake, server_handshake
from repro.cluster.protocol import PREVIEW_BYTES

SRC_ROOT = str(Path(__file__).resolve().parents[1] / "src")


def _worker_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return env


def _secret_file(tmp_path, secret: str = "s3cret") -> str:
    path = tmp_path / "secret"
    path.write_text(secret + "\n")
    return str(path)


def _wait_healthy(pool: WorkerPool, count: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(pool.healthy_workers()) >= count:
            return
        time.sleep(0.05)
    raise AssertionError(
        f"pool never reached {count} healthy workers; have {pool.healthy_workers()}"
    )


class TestDecodeDiagnostics:
    """ProtocolError must be debuggable from the message text alone."""

    def test_garbage_line_is_previewed_with_length(self):
        with pytest.raises(ProtocolError, match="not valid JSON") as exc_info:
            decode_message(b"GET / HTTP/1.1\r\n")
        message = str(exc_info.value)
        assert "16-byte line" in message
        assert "GET / HTTP/1.1" in message

    def test_long_line_preview_is_truncated(self):
        line = b"x" * 5000
        with pytest.raises(ProtocolError, match="not valid JSON") as exc_info:
            decode_message(line)
        message = str(exc_info.value)
        assert "5000-byte line" in message
        assert f"+{5000 - PREVIEW_BYTES} more bytes" in message
        # The preview itself stays bounded: the repr of 200 bytes plus the
        # framing, never the whole 5000-byte payload.
        assert len(message) < 5000

    def test_version_mismatch_carries_the_offending_line(self):
        line = encode_message({"v": PROTOCOL_VERSION})[:-1].replace(
            str(PROTOCOL_VERSION).encode(), b"99"
        ) + b"\n"
        with pytest.raises(ProtocolError, match="version mismatch") as exc_info:
            decode_message(line)
        assert "99" in str(exc_info.value)

    def test_non_object_names_the_type_and_line(self):
        with pytest.raises(ProtocolError, match="must be a JSON object") as exc_info:
            decode_message(b"[1, 2, 3]\n")
        assert "[1, 2, 3]" in str(exc_info.value)


class TestParsing:
    def test_parse_hostport(self):
        assert parse_hostport("127.0.0.1:8000") == ("127.0.0.1", 8000)
        assert parse_hostport("host.example:0") == ("host.example", 0)
        with pytest.raises(ValueError, match="HOST:PORT"):
            parse_hostport("no-port")
        with pytest.raises(ValueError, match="integer port"):
            parse_hostport("host:abc")
        with pytest.raises(ValueError, match="out of range"):
            parse_hostport("host:70000")

    def test_read_secret_strips_and_rejects_empty(self, tmp_path):
        path = tmp_path / "secret"
        path.write_text("  hunter2  \n")
        assert read_secret(path) == "hunter2"
        path.write_text("\n\n")
        with pytest.raises(ValueError, match="empty"):
            read_secret(path)

    def test_worker_connect_command_shape(self):
        argv = worker_connect_command(
            CONNECT_PLACEHOLDER, "/etc/secret", worker_id="w7", reconnect=2
        )
        assert argv[:3] == [sys.executable, "-m", "repro.cluster.worker"]
        assert argv[argv.index("--connect") + 1] == CONNECT_PLACEHOLDER
        assert argv[argv.index("--secret-file") + 1] == "/etc/secret"
        assert argv[argv.index("--worker-id") + 1] == "w7"
        assert argv[argv.index("--reconnect") + 1] == "2"

    def test_ssh_worker_command_wraps_the_connect_command(self):
        argv = ssh_worker_command("gpu-box", "10.0.0.1:9000", "/etc/secret")
        assert argv[:3] == ["ssh", "-o", "BatchMode=yes"]
        assert argv[3] == "gpu-box"
        assert "--connect" in argv and "10.0.0.1:9000" in argv
        # Secrets ride in files, never argv.
        assert all("s3cret" not in part for part in argv)


class TestHandshake:
    """Mutual HMAC verification over a socketpair, before any op."""

    def _pair(self):
        return socket.socketpair()

    def test_matching_secret_succeeds_both_ways(self):
        pool_sock, worker_sock = self._pair()
        results: dict = {}

        def worker_side():
            results["reader"] = client_handshake(
                worker_sock, "topsecret", worker_id="w0", host="hostA", pid=4242
            )

        thread = threading.Thread(target=worker_side)
        thread.start()
        reader, info = server_handshake(pool_sock, "topsecret")
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert info == {"worker_id": "w0", "host": "hostA", "pid": 4242}
        assert "reader" in results
        pool_sock.close()
        worker_sock.close()

    def test_wrong_secret_is_rejected_before_any_op(self):
        pool_sock, worker_sock = self._pair()
        worker_error: list = []

        def worker_side():
            try:
                client_handshake(
                    worker_sock, "wrong", worker_id="w0", host="h", pid=1
                )
            except ProtocolError as error:
                worker_error.append(error)

        thread = threading.Thread(target=worker_side)
        thread.start()
        with pytest.raises(HandshakeError, match="HMAC"):
            server_handshake(pool_sock, "right")
        pool_sock.close()
        thread.join(timeout=10)
        worker_sock.close()
        assert worker_error  # the worker saw the rejection too

    def test_wrong_protocol_version_is_rejected_loudly(self):
        pool_sock, worker_sock = self._pair()

        def impostor_side():
            # An old worker binary: speaks v999 frames.
            worker_sock.recv(65536)  # the challenge
            worker_sock.sendall(b'{"v": 999, "hello": "repro-cluster-worker"}\n')

        thread = threading.Thread(target=impostor_side)
        thread.start()
        with pytest.raises(HandshakeError, match="version mismatch"):
            server_handshake(pool_sock, "topsecret")
        thread.join(timeout=10)
        pool_sock.close()
        worker_sock.close()

    def test_worker_refuses_an_impostor_pool(self):
        pool_sock, worker_sock = self._pair()

        def impostor_pool():
            pool_sock.sendall(
                encode_message(
                    {"v": PROTOCOL_VERSION, "hello": "repro-cluster-pool", "nonce": "ab"}
                )
            )
            pool_sock.recv(65536)  # the worker's reply
            # Answer with a bogus counter-HMAC: we never knew the secret.
            pool_sock.sendall(
                encode_message(
                    {
                        "v": PROTOCOL_VERSION,
                        "ok": True,
                        "hello": "repro-cluster-pool",
                        "hmac": "deadbeef",
                    }
                )
            )

        thread = threading.Thread(target=impostor_pool)
        thread.start()
        with pytest.raises(HandshakeError, match="prove the shared secret"):
            client_handshake(
                worker_sock, "topsecret", worker_id="w0", host="h", pid=1
            )
        thread.join(timeout=10)
        pool_sock.close()
        worker_sock.close()


class TestTcpTransport:
    def _connected_transport(self):
        pool_sock, worker_sock = socket.socketpair()
        transport = TcpTransport(
            pool_sock, pool_sock.makefile("rb"), info={"pid": 7, "host": "h"}, peer="p"
        )
        return transport, worker_sock

    def test_frames_round_trip(self):
        transport, peer = self._connected_transport()
        transport.write(encode_message({"v": PROTOCOL_VERSION, "id": 1, "op": "ping"}))
        assert b'"op":"ping"' in peer.recv(65536)
        peer.sendall(encode_message({"v": PROTOCOL_VERSION, "id": 1, "ok": True}))
        assert decode_message(transport.readline())["id"] == 1
        transport.close()
        peer.close()

    def test_close_unblocks_reader_and_fails_writes(self):
        transport, peer = self._connected_transport()
        lines: list = []
        reader = threading.Thread(target=lambda: lines.append(transport.readline()))
        reader.start()
        time.sleep(0.1)
        transport.close()
        reader.join(timeout=10)
        assert not reader.is_alive()
        assert lines == [b""]  # EOF = the death signal
        with pytest.raises(TransportClosed):
            transport.write(b"late\n")
        assert transport.is_open() is False
        assert transport.wait_closed(1.0) is True
        peer.close()

    def test_write_timeout_fails_instead_of_wedging(self):
        pool_sock, worker_sock = socket.socketpair()
        # Shrink both kernel buffers so a non-draining peer backs up fast.
        pool_sock.setsockopt(socket.SOL_SOCKET, socket.SO_SNDBUF, 4096)
        worker_sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
        transport = TcpTransport(pool_sock, pool_sock.makefile("rb"), peer="stuck")
        chunk = b"x" * 65536
        with pytest.raises(TransportClosed, match="stalled"):
            for _ in range(64):  # never drained: must fail within ~seconds
                transport.write(chunk, timeout=0.2)
        transport.close()
        worker_sock.close()

    def test_describe_carries_registration_info(self):
        transport, peer = self._connected_transport()
        entry = transport.describe()
        assert entry["transport"] == "tcp"
        assert entry["pid"] == 7
        assert entry["host"] == "h"
        assert entry["peer"] == "p"
        transport.close()
        peer.close()


class TestWorkerListener:
    def test_rejects_wrong_secret_worker_subprocess(self, tmp_path):
        listener = WorkerListener("127.0.0.1:0", secret="right-secret")
        try:
            wrong = _secret_file(tmp_path, "wrong-secret")
            process = subprocess.Popen(
                worker_connect_command(listener.address, wrong),
                env=_worker_env(),
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
            )
            _, stderr = process.communicate(timeout=60)
            assert process.returncode == 1  # loud exit, never retried
            assert b"handshake" in stderr
            deadline = time.monotonic() + 10
            while listener.rejected < 1 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert listener.rejected >= 1
            assert listener.next_transport(0.2) is None  # nothing registered
        finally:
            listener.stop()

    def test_garbage_connection_does_not_block_real_workers(self, tmp_path):
        listener = WorkerListener("127.0.0.1:0", secret="s3cret")
        try:
            # A port scanner: connects and says nothing useful.
            scanner = socket.create_connection(parse_hostport(listener.address))
            scanner.sendall(b"GET / HTTP/1.1\r\n\r\n")
            process = subprocess.Popen(
                worker_connect_command(
                    listener.address, _secret_file(tmp_path), worker_id="real"
                ),
                env=_worker_env(),
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            try:
                transport = listener.next_transport(30.0)
                assert transport is not None
                assert transport.info["worker_id"] == "real"
                transport.close()
            finally:
                process.terminate()
                process.wait(timeout=10)
            scanner.close()
        finally:
            listener.stop()


class TestTcpWorkerPool:
    """Connect-back workers inside the ordinary supervision machinery."""

    def test_spawned_tcp_fleet_serves_and_respawns(self, tmp_path):
        secret_file = _secret_file(tmp_path)
        command = worker_connect_command(CONNECT_PLACEHOLDER, secret_file)
        with WorkerPool(
            2,
            listen="127.0.0.1:0",
            secret="s3cret",
            spawn_commands=[command, command],
        ) as pool:
            stats = pool.stats()
            assert {entry["transport"] for entry in stats.workers.values()} == {"tcp"}
            first_pid = stats.workers["w0"]["pid"]
            assert isinstance(pool.call("ping", {}, timeout=30.0)["pid"], int)
            # Sever w0's connection: the slot must respawn via its command.
            assert pool.kill_worker("w0")
            _wait_healthy(pool, 2)
            stats = pool.stats()
            assert stats.restarts >= 1
            assert stats.workers["w0"]["pid"] != first_pid
            assert pool.call("sleep", {"seconds": 0.01}, timeout=30.0) == {
                "slept": 0.01
            }

    def test_externally_started_worker_fills_a_remote_slot(self, tmp_path):
        secret_file = _secret_file(tmp_path)
        pool = WorkerPool(1, listen="127.0.0.1:0", secret="s3cret", register_timeout=30.0)
        assert pool.listen_address is not None
        process = subprocess.Popen(
            worker_connect_command(
                pool.listen_address, secret_file, worker_id="ext-0"
            ),
            env=_worker_env(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            with pool:
                result = pool.call("ping", {}, timeout=30.0)
                assert result["pid"] == process.pid
                entry = pool.stats().workers["w0"]
                assert entry["transport"] == "tcp"
                assert entry["worker_id"] == "ext-0"
                assert entry["host"]  # the hostname label for /metrics
        finally:
            if process.poll() is None:
                process.kill()
            process.wait(timeout=10)

    def test_listen_requires_a_secret(self):
        with pytest.raises(ValueError, match="secret"):
            WorkerPool(2, listen="127.0.0.1:0")

    def test_spawn_commands_require_listen(self):
        with pytest.raises(ValueError, match="listen"):
            WorkerPool(2, spawn_commands=[["true"], ["true"]])

    def test_remote_worker_uses_its_own_warm_dir(self, tmp_path):
        """A connect-back worker must ignore the supervisor's cache_dir."""
        from repro.api import Session, TrainConfig

        artifact = str(
            Session(train=TrainConfig(epochs=1, patience=1))
            .load("texas")
            .fit("MLP", hidden=8)
            .save(tmp_path / "artifact")
        )
        supervisor_cache = tmp_path / "supervisor-cache"
        supervisor_cache.mkdir()
        warm_dir = tmp_path / "host-warm"
        secret_file = _secret_file(tmp_path)
        command = worker_connect_command(
            CONNECT_PLACEHOLDER, secret_file, warm_dir=str(warm_dir)
        )
        load_args = {
            "artifacts": [artifact],
            "cache_dir": str(supervisor_cache),
            "serve": {"compile": "eager"},
        }
        with WorkerPool(
            1,
            listen="127.0.0.1:0",
            secret="s3cret",
            spawn_commands=[command],
            init_ops=[("load", load_args)],
        ) as pool:
            result = pool.call("stats", {}, timeout=30.0)
            assert result["router"] is not None
            spilled = pool.call("spill", {}, timeout=30.0)
            assert spilled["operators"] >= 0
        # The worker warmed/spilled locally, never into the supervisor path.
        assert list(supervisor_cache.iterdir()) == []
        assert warm_dir.exists()
        assert any(warm_dir.rglob("*.npz"))
