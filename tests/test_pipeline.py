"""Tests for the end-to-end AMUD pipeline (paper Fig. 1 workflow)."""

import numpy as np
import pytest

from repro.pipeline import AmudPipeline
from repro.training import Trainer


@pytest.fixture()
def quick_trainer():
    return Trainer(epochs=20, patience=10)


class TestPipelineConfiguration:
    def test_rejects_unknown_models(self):
        with pytest.raises(KeyError):
            AmudPipeline(undirected_model="nope")
        with pytest.raises(KeyError):
            AmudPipeline(directed_model="nope")

    def test_predict_before_fit_raises(self):
        pipeline = AmudPipeline()
        with pytest.raises(RuntimeError):
            pipeline.predict()
        with pytest.raises(RuntimeError):
            _ = pipeline.result


class TestPipelineBranches:
    def test_homophilous_graph_takes_undirected_branch(self, homophilous_graph, quick_trainer):
        pipeline = AmudPipeline(
            undirected_model="SGC", directed_model="DirGNN", trainer=quick_trainer
        )
        result = pipeline.fit(homophilous_graph)
        assert not result.decision.keep_directed
        assert result.model_name == "SGC"
        assert not result.modeled_graph.is_directed()
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_heterophilous_graph_takes_directed_branch(self, heterophilous_graph, quick_trainer):
        pipeline = AmudPipeline(
            undirected_model="SGC", directed_model="DirGNN", trainer=quick_trainer
        )
        result = pipeline.fit(heterophilous_graph)
        assert result.decision.keep_directed
        assert result.model_name == "DirGNN"
        assert result.modeled_graph is heterophilous_graph

    def test_threshold_flips_branch(self, heterophilous_graph, quick_trainer):
        pipeline = AmudPipeline(
            undirected_model="SGC", directed_model="DirGNN",
            threshold=10.0, trainer=quick_trainer,
        )
        result = pipeline.fit(heterophilous_graph)
        assert result.model_name == "SGC"

    def test_branch_specific_kwargs(self, heterophilous_graph, quick_trainer):
        pipeline = AmudPipeline(
            undirected_model="SGC",
            directed_model="ADPA",
            trainer=quick_trainer,
            model_kwargs={"directed": {"hidden": 16, "num_steps": 2}},
        )
        result = pipeline.fit(heterophilous_graph)
        assert result.model_name == "ADPA"

    def test_predict_after_fit(self, heterophilous_graph, quick_trainer):
        pipeline = AmudPipeline(
            undirected_model="SGC", directed_model="DirGNN", trainer=quick_trainer
        )
        pipeline.fit(heterophilous_graph)
        predictions = pipeline.predict()
        assert predictions.shape == (heterophilous_graph.num_nodes,)
        assert pipeline.is_fitted

    def test_pipeline_beats_majority_class(self, heterophilous_graph, quick_trainer):
        pipeline = AmudPipeline(
            undirected_model="GPRGNN", directed_model="DirGNN", trainer=quick_trainer
        )
        result = pipeline.fit(heterophilous_graph)
        majority = heterophilous_graph.label_distribution().max()
        assert result.test_accuracy > majority

    def test_amud_guidance_helps_on_directed_data(self, heterophilous_graph, quick_trainer):
        """Following AMUD (directed branch) beats forcing the undirected branch.

        This is the pipeline-level version of the paper's 4.57% claim.
        """
        guided = AmudPipeline(
            undirected_model="SGC", directed_model="DirGNN", trainer=quick_trainer
        ).fit(heterophilous_graph)
        forced_undirected = AmudPipeline(
            undirected_model="SGC", directed_model="DirGNN",
            threshold=10.0, trainer=quick_trainer,
        ).fit(heterophilous_graph)
        assert guided.test_accuracy > forced_undirected.test_accuracy
