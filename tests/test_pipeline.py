"""The end-to-end AMUD workflow (paper Fig. 1) through ``repro.api``.

The ``AmudPipeline`` facade that used to host this workflow is retired —
its behaviours live on :class:`repro.api.Session` now, and these tests
pin both the workflow and the loud retirement of the old entry points.
"""

import numpy as np
import pytest

from repro.api import AmudConfig, Session, TrainConfig

QUICK = TrainConfig(epochs=20, patience=10)
SGC_OR_DIRGNN = AmudConfig(undirected_model="SGC", directed_model="DirGNN")


class TestWorkflowConfiguration:
    def test_rejects_unknown_models(self):
        with pytest.raises(KeyError):
            AmudConfig(undirected_model="nope")
        with pytest.raises(KeyError):
            AmudConfig(directed_model="nope")

    def test_fit_rejects_unknown_model_names(self, homophilous_graph):
        with pytest.raises(KeyError):
            Session(train=QUICK).from_graph(homophilous_graph).fit("nope")


class TestWorkflowBranches:
    def test_homophilous_graph_takes_undirected_branch(self, homophilous_graph):
        model = (
            Session(train=QUICK, amud=SGC_OR_DIRGNN)
            .from_graph(homophilous_graph)
            .amud()
            .fit()
        )
        assert not model.decision.keep_directed
        assert model.model_name == "SGC"
        assert not model.graph.is_directed()
        assert 0.0 <= model.test_accuracy <= 1.0

    def test_heterophilous_graph_takes_directed_branch(self, heterophilous_graph):
        model = (
            Session(train=QUICK, amud=SGC_OR_DIRGNN)
            .from_graph(heterophilous_graph)
            .amud()
            .fit()
        )
        assert model.decision.keep_directed
        assert model.model_name == "DirGNN"
        assert model.graph is heterophilous_graph

    def test_threshold_flips_branch(self, heterophilous_graph):
        forced = SGC_OR_DIRGNN.replace(threshold=10.0)
        model = (
            Session(train=QUICK, amud=forced)
            .from_graph(heterophilous_graph)
            .amud()
            .fit()
        )
        assert model.model_name == "SGC"

    def test_branch_specific_kwargs(self, heterophilous_graph):
        amud = AmudConfig(undirected_model="SGC", directed_model="ADPA")
        handle = Session(train=QUICK, amud=amud).from_graph(heterophilous_graph).amud()
        model = handle.fit(hidden=16, num_steps=2)
        assert model.model_name == "ADPA"

    def test_predict_after_fit(self, heterophilous_graph):
        model = (
            Session(train=QUICK, amud=SGC_OR_DIRGNN)
            .from_graph(heterophilous_graph)
            .amud()
            .fit()
        )
        predictions = model.predict()
        assert predictions.shape == (heterophilous_graph.num_nodes,)

    def test_workflow_beats_majority_class(self, heterophilous_graph):
        amud = AmudConfig(undirected_model="GPRGNN", directed_model="DirGNN")
        model = Session(train=QUICK, amud=amud).from_graph(heterophilous_graph).amud().fit()
        majority = heterophilous_graph.label_distribution().max()
        assert model.test_accuracy > majority

    def test_amud_guidance_helps_on_directed_data(self, heterophilous_graph):
        """Following AMUD (directed branch) beats forcing the undirected branch.

        This is the workflow-level version of the paper's 4.57% claim.
        """
        guided = (
            Session(train=QUICK, amud=SGC_OR_DIRGNN)
            .from_graph(heterophilous_graph)
            .amud()
            .fit()
        )
        forced = (
            Session(train=QUICK, amud=SGC_OR_DIRGNN.replace(threshold=10.0))
            .from_graph(heterophilous_graph)
            .amud()
            .fit()
        )
        assert guided.test_accuracy > forced.test_accuracy


class TestPipelineRetirement:
    """The old facade fails loudly and points at the replacement."""

    def test_module_import_raises_with_pointer(self):
        with pytest.raises(ImportError, match="repro.api.Session"):
            import repro.pipeline  # noqa: F401

    def test_package_attributes_raise_with_pointer(self):
        import repro

        with pytest.raises(ImportError, match="repro.api.Session"):
            repro.AmudPipeline  # noqa: B018
        with pytest.raises(ImportError, match="repro.api.Session"):
            repro.PipelineResult  # noqa: B018

    def test_other_missing_attributes_stay_attribute_errors(self):
        import repro

        with pytest.raises(AttributeError):
            repro.NotAThing  # noqa: B018

    def test_session_predictions_are_deterministic(self, heterophilous_graph):
        # The retired facade's bit-exactness guarantee carries over: same
        # seeds, same order of operations, same predictions.
        first = Session(train=QUICK, amud=SGC_OR_DIRGNN).from_graph(
            heterophilous_graph
        ).amud().fit()
        second = Session(train=QUICK, amud=SGC_OR_DIRGNN).from_graph(
            heterophilous_graph
        ).amud().fit()
        np.testing.assert_array_equal(first.predict(), second.predict())
