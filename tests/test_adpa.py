"""Tests for ADPA: propagation, the two attention levels, and the full model."""

import numpy as np
import pytest

from repro.adpa import (
    ADPA,
    DirectedPatternAttention,
    HopAttention,
    PropagationResult,
    build_dp_operators,
    propagate_features,
    select_operators,
)
from repro.nn import Tensor
from repro.training import Trainer


class TestPropagation:
    def test_operator_dictionary(self, heterophilous_graph):
        operators = build_dp_operators(heterophilous_graph, order=2)
        assert set(operators) == {"A", "At", "AA", "AtAt", "AAt", "AtA"}
        for matrix in operators.values():
            np.testing.assert_allclose(np.asarray(matrix.sum(axis=1)).ravel(), 1.0)

    def test_propagation_shapes(self, heterophilous_graph):
        result = propagate_features(heterophilous_graph, num_steps=3)
        assert isinstance(result, PropagationResult)
        assert result.num_steps == 3
        assert result.num_operators == 6
        n, f = heterophilous_graph.features.shape
        assert result.initial.shape == (n, f)
        for step in result.steps:
            for matrix in step.values():
                assert matrix.shape == (n, f)

    def test_step_block_concatenation(self, heterophilous_graph):
        result = propagate_features(heterophilous_graph, num_steps=2)
        n, f = heterophilous_graph.features.shape
        block = result.step_block(0)
        assert block.shape == (n, (result.num_operators + 1) * f)
        stacked = result.stacked()
        assert stacked.shape == (2, n, (result.num_operators + 1) * f)

    def test_propagation_is_iterative(self, heterophilous_graph):
        """Step l must equal the operator applied to step l-1 (Eq. 9)."""
        operators = build_dp_operators(heterophilous_graph, order=2)
        result = propagate_features(heterophilous_graph, num_steps=2, operators=operators)
        for name, operator in operators.items():
            expected = operator @ result.steps[0][name]
            np.testing.assert_allclose(result.steps[1][name], expected)

    def test_invalid_steps(self, heterophilous_graph):
        with pytest.raises(ValueError):
            propagate_features(heterophilous_graph, num_steps=0)

    def test_unknown_operator_name(self, heterophilous_graph):
        with pytest.raises(KeyError):
            propagate_features(heterophilous_graph, num_steps=1, operator_names=["bogus"])

    def test_operator_subset_respected(self, heterophilous_graph):
        result = propagate_features(heterophilous_graph, num_steps=1, operator_names=["A", "AAt"])
        assert result.operator_names == ["A", "AAt"]
        assert set(result.steps[0]) == {"A", "AAt"}

    def test_selection_keeps_canonical_order(self, heterophilous_graph):
        operators = build_dp_operators(heterophilous_graph, order=2)
        kept = select_operators(heterophilous_graph, operators, max_operators=3)
        assert len(kept) == 3
        positions = [list(operators).index(name) for name in kept]
        assert positions == sorted(positions)

    def test_selection_never_empty(self, heterophilous_graph):
        operators = build_dp_operators(heterophilous_graph, order=2)
        kept = select_operators(heterophilous_graph, operators, min_correlation=10.0)
        assert len(kept) == 1

    def test_selection_prefers_informative_patterns(self, heterophilous_graph):
        """On cyclic heterophilous digraphs AAᵀ/AᵀA carry the homophily signal."""
        operators = build_dp_operators(heterophilous_graph, order=2)
        kept = select_operators(heterophilous_graph, operators, max_operators=2)
        assert set(kept) & {"AAt", "AtA"}


class TestAttentionModules:
    def _blocks(self, num_blocks=3, n=10, f=8, seed=0):
        rng = np.random.default_rng(seed)
        return [Tensor(rng.normal(size=(n, f))) for _ in range(num_blocks)]

    @pytest.mark.parametrize("kind", ["original", "gate", "recursive", "jk", "none"])
    def test_dp_attention_output_shape(self, kind):
        attention = DirectedPatternAttention(8, 16, num_blocks=3, kind=kind, rng=np.random.default_rng(0))
        out = attention(self._blocks())
        assert out.shape == (10, 16)

    def test_dp_attention_rejects_wrong_block_count(self):
        attention = DirectedPatternAttention(8, 16, num_blocks=3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            attention(self._blocks(num_blocks=2))

    def test_dp_attention_unknown_kind(self):
        with pytest.raises(ValueError):
            DirectedPatternAttention(8, 16, num_blocks=3, kind="bogus")

    def test_dp_attention_gradients_flow(self):
        attention = DirectedPatternAttention(8, 16, num_blocks=3, rng=np.random.default_rng(0))
        blocks = self._blocks()
        attention(blocks).sum().backward()
        for parameter in attention.parameters():
            assert parameter.grad is not None

    @pytest.mark.parametrize("kind", ["softmax", "mean", "none"])
    def test_hop_attention_output_shape(self, kind):
        attention = HopAttention(16, num_hops=4, kind=kind, rng=np.random.default_rng(0))
        hops = [Tensor(np.random.default_rng(i).normal(size=(10, 16))) for i in range(4)]
        assert attention(hops).shape == (10, 16)

    def test_hop_attention_weights_sum_to_one(self):
        attention = HopAttention(16, num_hops=3, kind="softmax", rng=np.random.default_rng(0))
        hops = [Tensor(np.random.default_rng(i).normal(size=(7, 16))) for i in range(3)]
        weights = attention.attention_weights(hops)
        assert weights.shape == (7, 3)
        np.testing.assert_allclose(weights.sum(axis=1), 1.0)

    def test_hop_attention_rejects_wrong_hop_count(self):
        attention = HopAttention(16, num_hops=3, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            attention([Tensor(np.zeros((5, 16)))])

    def test_hop_attention_unknown_kind(self):
        with pytest.raises(ValueError):
            HopAttention(16, num_hops=2, kind="bogus")


class TestADPAModel:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ADPA(num_features=8, num_classes=3, num_steps=0)
        with pytest.raises(ValueError):
            ADPA(num_features=8, num_classes=3, order=0)
        with pytest.raises(ValueError):
            ADPA(num_features=0, num_classes=3)

    def test_preprocess_and_forward_shapes(self, heterophilous_graph):
        model = ADPA.from_graph(heterophilous_graph, hidden=16, num_steps=2, seed=0)
        cache = model.preprocess(heterophilous_graph)
        logits = model.forward(cache)
        assert logits.shape == (heterophilous_graph.num_nodes, heterophilous_graph.num_classes)
        assert set(model.selected_operators(cache)) == {"A", "At", "AA", "AtAt", "AAt", "AtA"}

    def test_forward_before_preprocess_raises(self, heterophilous_graph):
        model = ADPA.from_graph(heterophilous_graph, hidden=16)
        with pytest.raises(RuntimeError):
            model.forward({"steps": []})

    def test_operator_pruning(self, heterophilous_graph):
        model = ADPA.from_graph(heterophilous_graph, hidden=16, num_steps=2, max_operators=3, seed=0)
        cache = model.preprocess(heterophilous_graph)
        assert len(model.selected_operators(cache)) == 3
        assert model.forward(cache).shape[0] == heterophilous_graph.num_nodes

    def test_hop_weights_shape(self, heterophilous_graph):
        model = ADPA.from_graph(heterophilous_graph, hidden=16, num_steps=3, seed=0)
        cache = model.preprocess(heterophilous_graph)
        weights = model.hop_weights(cache)
        assert weights.shape == (heterophilous_graph.num_nodes, 3)

    def test_training_beats_majority_class(self, heterophilous_graph, fast_trainer):
        model = ADPA.from_graph(heterophilous_graph, hidden=32, num_steps=2, seed=0)
        result = fast_trainer.fit(model, heterophilous_graph)
        majority = heterophilous_graph.label_distribution().max()
        assert result.test_accuracy > majority + 0.05

    def test_predict_returns_classes(self, heterophilous_graph, fast_trainer):
        model = ADPA.from_graph(heterophilous_graph, hidden=16, num_steps=2, seed=0)
        fast_trainer.fit(model, heterophilous_graph)
        predictions = model.predict(heterophilous_graph)
        assert predictions.shape == (heterophilous_graph.num_nodes,)
        assert set(np.unique(predictions)) <= set(range(heterophilous_graph.num_classes))

    @pytest.mark.parametrize("dp_kind", ["original", "gate", "recursive", "jk", "none"])
    def test_all_dp_attention_variants_train(self, heterophilous_graph, dp_kind):
        trainer = Trainer(epochs=10, patience=5)
        model = ADPA.from_graph(
            heterophilous_graph, hidden=16, num_steps=2, dp_attention=dp_kind, seed=0
        )
        result = trainer.fit(model, heterophilous_graph)
        assert 0.0 <= result.test_accuracy <= 1.0

    @pytest.mark.parametrize("hop_kind", ["softmax", "mean", "none"])
    def test_all_hop_attention_variants_train(self, heterophilous_graph, hop_kind):
        trainer = Trainer(epochs=10, patience=5)
        model = ADPA.from_graph(
            heterophilous_graph, hidden=16, num_steps=2, hop_attention=hop_kind, seed=0
        )
        result = trainer.fit(model, heterophilous_graph)
        assert 0.0 <= result.test_accuracy <= 1.0

    def test_works_on_undirected_input(self, homophilous_graph, fast_trainer):
        """ADPA must accept AMUndirected graphs too (paper Sec. V-B)."""
        from repro.graph import to_undirected

        undirected = to_undirected(homophilous_graph)
        model = ADPA.from_graph(undirected, hidden=16, num_steps=2, seed=0)
        result = fast_trainer.fit(model, undirected)
        majority = undirected.label_distribution().max()
        assert result.test_accuracy > majority
