"""On-disk operator-cache persistence: spill/warm round trips and CLI wiring."""

import numpy as np
import pytest

from repro.api import Session, TrainConfig
from repro.cli import main as cli_main
from repro.serving import OperatorCache, ShardRouter
from repro.serving.artifacts import restore_model
from repro.serving.cache import SPILL_FORMAT_VERSION

QUICK = TrainConfig(epochs=4, patience=4)

#: decoupled + coupled + lazily-built architectures: Tensors, sparse
#: operators and a DirectedGraph all appear in these preprocess caches.
MODELS = [("SGC", {}), ("GCN", {"hidden": 8}), ("MagNet", {"hidden": 8}),
          ("ADPA", {"hidden": 8, "num_steps": 2})]


@pytest.fixture(scope="module")
def trained_handles():
    session = Session(train=QUICK)
    return [
        session.load("texas").fit(name, **kwargs) for name, kwargs in MODELS
    ]


class TestSpillWarm:
    def test_round_trip_preserves_predictions(self, trained_handles, tmp_path):
        cache = OperatorCache()
        for handle in trained_handles:
            cache.seed(handle.model, handle.graph, handle.model.preprocess(handle.graph))
        assert cache.spill(tmp_path) == len(trained_handles)

        warmed = OperatorCache()
        assert warmed.warm(tmp_path) == len(trained_handles)
        for handle in trained_handles:
            entry = warmed.lookup(handle.model, handle.graph)
            assert entry is not None
            np.testing.assert_array_equal(
                handle.model.predict_logits(handle.graph, entry),
                handle.predict_logits(),
            )

    def test_spill_skips_existing_files(self, trained_handles, tmp_path):
        cache = OperatorCache()
        handle = trained_handles[0]
        cache.seed(handle.model, handle.graph, handle.model.preprocess(handle.graph))
        assert cache.spill(tmp_path) == 1
        # The content is a pure function of the key: a re-spill writes
        # nothing (and an unchanged mtime proves the file was not touched).
        path = next(tmp_path.glob("*.npz"))
        before = path.stat().st_mtime_ns
        assert cache.spill(tmp_path) == 0
        assert path.stat().st_mtime_ns == before
        assert cache.spill(tmp_path, overwrite=True) == 1
        assert len(list(tmp_path.glob("*.npz"))) == 1

    def test_hand_constructed_models_are_not_spilled(self, tmp_path):
        from repro.models.mlp import MLPClassifier

        graph = Session().load("texas").graph
        model = MLPClassifier.from_graph(graph, hidden=4)  # no registry identity
        cache = OperatorCache()
        cache.seed(model, graph, model.preprocess(graph))
        assert cache.spill(tmp_path) == 0

    def test_warm_skips_corrupt_and_foreign_files(self, trained_handles, tmp_path):
        cache = OperatorCache()
        handle = trained_handles[0]
        cache.seed(handle.model, handle.graph, handle.model.preprocess(handle.graph))
        cache.spill(tmp_path)
        (tmp_path / "junk.npz").write_bytes(b"not an npz")
        np.savez(tmp_path / "foreign.npz", values=np.arange(3))
        warmed = OperatorCache()
        assert warmed.warm(tmp_path) == 1

    def test_warm_missing_directory_is_a_noop(self, tmp_path):
        assert OperatorCache().warm(tmp_path / "absent") == 0

    def test_warm_grows_capacity_to_fit(self, trained_handles, tmp_path):
        cache = OperatorCache()
        for handle in trained_handles:
            cache.seed(handle.model, handle.graph, handle.model.preprocess(handle.graph))
        cache.spill(tmp_path)
        small = OperatorCache(capacity=1)
        assert small.warm(tmp_path) == len(trained_handles)
        assert len(small) == len(trained_handles)
        assert small.stats().evictions == 0

    def test_format_version_gates_reload(self, trained_handles, tmp_path):
        import json

        cache = OperatorCache()
        handle = trained_handles[0]
        cache.seed(handle.model, handle.graph, handle.model.preprocess(handle.graph))
        cache.spill(tmp_path)
        path = next(tmp_path.glob("*.npz"))
        with np.load(path, allow_pickle=False) as data:
            meta = json.loads(str(data["__spill__"]))
            arrays = {k: data[k] for k in data.files if k != "__spill__"}
        meta["format_version"] = SPILL_FORMAT_VERSION + 1
        np.savez(path, __spill__=np.array(json.dumps(meta)), **arrays)
        assert OperatorCache().warm(tmp_path) == 0


class TestWarmRestore:
    def test_restore_through_warmed_cache_skips_preprocess(
        self, trained_handles, tmp_path
    ):
        # Export the lazily-built ADPA handle and spill its preprocess.
        adpa = trained_handles[-1]
        artifact_dir = tmp_path / "artifact"
        adpa.save(artifact_dir)
        cache = OperatorCache()
        cache.seed(adpa.model, adpa.graph, adpa.model.preprocess(adpa.graph))
        cache.spill(tmp_path / "spill")

        warmed = OperatorCache()
        warmed.warm(tmp_path / "spill")
        model, entry, _, graph = restore_model(artifact_dir, operator_cache=warmed)
        stats = warmed.stats()
        assert stats.hits == 1 and stats.misses == 0  # no cold preprocess
        np.testing.assert_array_equal(model.predict(graph, entry), adpa.predict())

    def test_add_artifact_never_evicts_warmed_entries(self, trained_handles, tmp_path):
        # A warm directory can hold more entries than there are registered
        # shards; loading a non-spilled artifact must grow past the warmed
        # population instead of evicting entries later artifacts still need.
        spill = tmp_path / "spill"
        cache = OperatorCache()
        for handle in trained_handles:
            cache.seed(handle.model, handle.graph, handle.model.preprocess(handle.graph))
        cache.spill(spill)

        cold_handle = Session(train=QUICK).load("cornell").fit("MLP", hidden=8)
        cold_dir = tmp_path / "cold"
        cold_handle.save(cold_dir)

        router = ShardRouter(operator_cache=OperatorCache(capacity=len(trained_handles)))
        router.operator_cache.warm(spill)
        router.add_artifact(cold_dir)  # cold: fills one more entry
        stats = router.operator_cache.stats()
        assert stats.evictions == 0
        assert len(router.operator_cache) == len(trained_handles) + 1

    def test_router_warms_from_cache_dir(self, trained_handles, tmp_path):
        handle = trained_handles[0]
        artifact_dir = tmp_path / "artifact"
        handle.save(artifact_dir)

        # First router: cold load, then spill its operator cache.
        cold = ShardRouter()
        cold.add_artifact(artifact_dir)
        assert cold.operator_cache.spill(tmp_path / "spill") == 1

        # Second router (fresh process stand-in): warm, then load the same
        # artifact — the preprocess must be a pure cache hit.
        warm = Session().serve(artifact_dir, cache_dir=tmp_path / "spill")
        stats = warm.operator_cache.stats()
        assert stats.misses == 0 and stats.hits >= 1
        with warm:
            np.testing.assert_array_equal(
                warm.predict(node_ids=[0, 1, 2]), handle.predict()[:3]
            )


class TestServeBenchCacheDir:
    def test_cli_spills_then_warms(self, trained_handles, tmp_path, capsys):
        artifact_dir = tmp_path / "artifact"
        trained_handles[0].save(artifact_dir)
        cache_dir = tmp_path / "opcache"
        args = [
            "serve-bench", str(artifact_dir), "--requests", "8", "--clients", "2",
            "--cache-dir", str(cache_dir),
        ]
        assert cli_main(args) == 0
        first = capsys.readouterr().out
        assert "spilled 1 preprocess entry" in first
        assert cache_dir.is_dir() and list(cache_dir.glob("*.npz"))

        assert cli_main(args) == 0
        second = capsys.readouterr().out
        assert "1 preprocess entry reused at load" in second


_RACE_SCRIPT = """
import sys

from repro.datasets import load_dataset
from repro.models.registry import create_model
from repro.serving import OperatorCache

graph = load_dataset("texas")
model = create_model("GCN", graph, hidden=8)
cache = OperatorCache()
cache.seed(model, graph, model.preprocess(graph))
for _ in range(40):
    cache.spill(sys.argv[1], overwrite=True)
"""


class TestConcurrentSpill:
    def test_two_processes_spilling_the_same_dir_never_tear_a_file(self, tmp_path):
        import os
        import subprocess
        import sys
        from pathlib import Path

        spill_dir = tmp_path / "shared-spill"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _RACE_SCRIPT, str(spill_dir)],
                env=env,
                stderr=subprocess.PIPE,
            )
            for _ in range(2)
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()

        # Every file in the shared dir must be a complete, loadable archive
        # — the atomic tmp-file + rename spill cannot leave torn writes.
        files = list(spill_dir.glob("*.npz"))
        assert files
        for path in files:
            with np.load(path, allow_pickle=False) as archive:
                assert archive.files
        assert OperatorCache().warm(spill_dir) == 1
