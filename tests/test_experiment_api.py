"""The declarative experiment surface: configs, sweeps, reports, shims, CLI."""

import json
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    DEFAULT_SEEDS,
    ExperimentConfig,
    ExperimentReport,
    RunReport,
    Session,
    SweepReport,
    SweepSpec,
    TrainConfig,
    resolve_view,
)
from repro.cli import main as cli_main
from repro.datasets import load_dataset
from repro.training import Trainer, run_model_suite, run_repeated, run_single

QUICK = ExperimentConfig(seeds=(0, 1), train=TrainConfig(epochs=4, patience=4))


def _stats_key(report):
    """Everything except wall-clock timings, for bit-identity comparisons."""
    return [
        (
            cell.model, cell.dataset, cell.variant,
            cell.test_mean, cell.test_std, cell.val_mean, cell.val_std,
            tuple((run.seed, run.test_accuracy, run.val_accuracy) for run in cell.runs),
        )
        for cell in report.cells
    ]


class TestExperimentConfig:
    def test_default_seed_protocol_is_ten_trials(self):
        assert ExperimentConfig().seeds == tuple(range(10)) == DEFAULT_SEEDS

    def test_validation(self):
        with pytest.raises(ValueError, match="seeds"):
            ExperimentConfig(seeds=())
        with pytest.raises(ValueError, match="duplicate"):
            ExperimentConfig(seeds=(0, 0))
        with pytest.raises(ValueError, match="max_workers"):
            ExperimentConfig(max_workers=0)
        with pytest.raises(TypeError, match="TrainConfig"):
            ExperimentConfig(train=Trainer())

    def test_quick_protocol(self):
        quick = ExperimentConfig(train=TrainConfig(epochs=300, patience=50)).quick()
        assert quick.seeds == (0,)
        assert quick.train.epochs == 40 and quick.train.patience == 10

    def test_dict_round_trip(self):
        config = ExperimentConfig(
            seeds=(3, 1), train=TrainConfig(epochs=7), model_kwargs={"hidden": 8},
            max_workers=2,
        )
        assert ExperimentConfig.from_dict(config.as_dict()) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="trainer"):
            ExperimentConfig.from_dict({"trainer": {}})


class TestSweepSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="models"):
            SweepSpec(models=(), datasets=("texas",))
        with pytest.raises(KeyError, match="NotAModel"):
            SweepSpec(models=("NotAModel",), datasets=("texas",))
        with pytest.raises(KeyError, match="atlantis"):
            SweepSpec(models=("MLP",), datasets=("atlantis",))
        with pytest.raises(ValueError, match="view"):
            SweepSpec(models=("MLP",), datasets=("texas",), view="sideways")

    def test_unconstructible_kwargs_fail_at_spec_build(self):
        # SGC takes no `hidden`; a bad grid must die here, not mid-sweep.
        with pytest.raises(ValueError, match="SGC does not accept"):
            SweepSpec(
                models=("MLP", "SGC"), datasets=("texas",),
                variants={"wide": {"hidden": 32}},
            )
        with pytest.raises(ValueError, match="hiddenn"):
            SweepSpec(
                models=("MLP",), datasets=("texas",),
                model_kwargs={"MLP": {"hiddenn": 8}},
            )

    def test_cells_follow_canonical_order(self):
        spec = SweepSpec(
            models=("MLP", "SGC"), datasets=("texas", "cornell"),
            variants={"a": {}, "b": {}},
        )
        cells = spec.cells()
        assert cells[0] == ("texas", "MLP", "a")
        assert cells[-1] == ("cornell", "SGC", "b")
        assert len(cells) == 8

    def test_kwargs_precedence(self):
        spec = SweepSpec(
            models=("MLP",), datasets=("texas",),
            config=ExperimentConfig(model_kwargs={"hidden": 8, "dropout": 0.1}),
            model_kwargs={"MLP": {"hidden": 16}},
            variants={"deep": {"hidden": 32}},
        )
        assert spec.kwargs_for("MLP", "deep") == {"hidden": 32, "dropout": 0.1}

    def test_dict_round_trip(self):
        spec = SweepSpec(
            models=("MLP",), datasets=("texas",), view="undirected",
            config=QUICK, variants={"v": {"hidden": 8}}, dataset_seed=3,
        )
        assert SweepSpec.from_dict(spec.as_dict()) == spec

    def test_from_file_json_with_shortcuts(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "models": ["MLP"], "datasets": ["texas"],
            "seeds": [0, 1], "train": {"epochs": 5, "patience": 5},
        }))
        spec = SweepSpec.from_file(path)
        assert spec.config.seeds == (0, 1)
        assert spec.config.train.epochs == 5

    def test_from_file_toml(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")
        path = tmp_path / "spec.toml"
        path.write_text(
            'models = ["MLP"]\ndatasets = ["texas"]\nseeds = [0]\n'
            '[train]\nepochs = 5\npatience = 5\n'
        )
        spec = SweepSpec.from_file(path)
        assert spec.models == ("MLP",) and spec.config.seeds == (0,)


class TestResolveView:
    def test_natural_and_undirected(self, heterophilous_graph):
        assert resolve_view("MLP", heterophilous_graph, "natural") is heterophilous_graph
        undirected = resolve_view("MLP", heterophilous_graph, "undirected")
        assert (undirected.adjacency != undirected.adjacency.T).nnz == 0

    def test_paper_protocol(self):
        graph = load_dataset("chameleon", seed=0)
        # Undirected GNNs always get U-, directed GNNs always get D-.
        assert resolve_view("GCN", graph, "paper-directed") is not graph
        assert resolve_view("DirGNN", graph, "paper-undirected") is graph
        # The proposed model follows the table's AMUD outcome.
        assert resolve_view("ADPA", graph, "paper-directed") is graph
        assert resolve_view("ADPA", graph, "paper-undirected") is not graph

    def test_amud_view_uses_dataset_regime(self):
        directed = load_dataset("chameleon", seed=0)
        undirected = load_dataset("citeseer", seed=0)
        assert resolve_view("ADPA", directed, "amud") is directed
        resolved = resolve_view("ADPA", undirected, "amud")
        assert (resolved.adjacency != resolved.adjacency.T).nnz == 0

    def test_amud_view_falls_back_to_decision(self, heterophilous_graph):
        assert "amud_regime" not in heterophilous_graph.meta
        resolved = resolve_view("ADPA", heterophilous_graph, "amud")
        # The DSBM heterophilous fixture is strongly directional.
        assert resolved is heterophilous_graph


class TestFitRepeated:
    def test_aggregates_match_manual_runs(self):
        session = Session(train=TrainConfig(epochs=4, patience=4))
        report = session.load("texas").fit_repeated("MLP", seeds=(0, 1), hidden=8)
        manual = [
            session.load("texas").fit("MLP", seed=seed, hidden=8).test_accuracy
            for seed in (0, 1)
        ]
        assert report.test_mean == pytest.approx(float(np.mean(manual)))
        assert report.seeds == (0, 1)
        assert [run.test_accuracy for run in report.runs] == manual

    def test_defaults_to_paper_protocol_seeds(self):
        config = ExperimentConfig(train=TrainConfig(epochs=1, patience=1))
        report = Session().load("texas").fit_repeated("MLP", config=config, hidden=4)
        assert report.seeds == DEFAULT_SEEDS

    def test_follows_amud_guidance_without_model(self):
        report = Session(train=TrainConfig(epochs=2, patience=2)).load(
            "texas"
        ).fit_repeated(seeds=(0,), hidden=4, num_steps=1)
        assert report.model == "ADPA"

    def test_pinned_seed_kwarg_is_rejected(self):
        # A constructor 'seed' would collapse every trial to one run while
        # the report still lists distinct seeds; fail loudly instead.
        handle = Session(train=TrainConfig(epochs=2, patience=2)).load("texas")
        with pytest.raises(ValueError, match="seed"):
            handle.fit_repeated("MLP", seeds=(0, 1), seed=7, hidden=4)
        with pytest.raises(ValueError, match="seed"):
            SweepSpec(
                models=("MLP",), datasets=("texas",),
                model_kwargs={"MLP": {"seed": 7}},
            )

    def test_as_row_carries_val_stats_and_seeds(self):
        report = Session(train=TrainConfig(epochs=2, patience=2)).load(
            "texas"
        ).fit_repeated("MLP", seeds=(0, 1), hidden=4)
        row = report.as_row()
        assert row["seeds"] == [0, 1]
        assert 0.0 <= row["val_mean"] <= 1.0
        assert "val_std" in row and len(row["test_accuracies"]) == 2


class TestSessionExperiment:
    def test_parallel_is_bit_identical_to_serial(self):
        base = dict(models=("MLP", "SGC"), datasets=("texas", "cornell"))
        serial = Session().experiment(
            SweepSpec(config=QUICK.replace(max_workers=1), **base)
        )
        parallel = Session().experiment(
            SweepSpec(config=QUICK.replace(max_workers=4), **base)
        )
        assert _stats_key(serial) == _stats_key(parallel)

    def test_accepts_plain_mapping(self):
        report = Session().experiment({
            "models": ["MLP"], "datasets": ["texas"],
            "seeds": [0], "train": {"epochs": 2, "patience": 2},
        })
        assert report.cell("MLP", "texas").seeds == (0,)

    def test_mapping_without_train_inherits_session_config(self):
        session = Session(train=TrainConfig(epochs=3, patience=3))
        report = session.experiment({
            "models": ["MLP"], "datasets": ["texas"], "seeds": [0],
        })
        assert report.spec["config"]["train"]["epochs"] == 3
        assert all(run.epochs_run <= 3 for c in report.cells for run in c.runs)

    def test_dataset_names_are_case_insensitive(self):
        spec = SweepSpec(models=("MLP",), datasets=("Texas",), config=QUICK)
        assert spec.datasets == ("texas",)
        report = Session().experiment(spec)
        assert report.cell("MLP", "texas").dataset == "texas"

    def test_variants_sweep(self):
        spec = SweepSpec(
            models=("SGC",), datasets=("texas",), config=QUICK,
            variants={"k1": {"num_steps": 1}, "k2": {"num_steps": 2}},
        )
        report = Session().experiment(spec)
        assert len(report.cells) == 2
        assert report.cell("SGC", "texas", "k1") is not report.cell("SGC", "texas", "k2")
        with pytest.raises(KeyError):
            report.cell("SGC", "texas", "k3")

    def test_report_table_and_grouping(self):
        report = Session().experiment(
            SweepSpec(models=("MLP", "SGC"), datasets=("texas",), config=QUICK)
        )
        table = report.as_table()
        assert "MLP" in table and "texas" in table and "Rank" in table
        assert set(report.by_dataset()) == {"texas"}
        assert len(report.run_rows()) == 4  # 2 models x 2 seeds

    def test_report_json_round_trip_and_save(self, tmp_path):
        report = Session().experiment(
            SweepSpec(models=("MLP",), datasets=("texas",), config=QUICK)
        )
        assert SweepReport.from_json(report.to_json()).as_dict() == report.as_dict()
        path = report.save(tmp_path / "nested" / "report.json")
        reloaded = SweepReport.load(path)
        assert reloaded.spec["models"] == ["MLP"]
        assert reloaded.cell("MLP", "texas").runs == report.cell("MLP", "texas").runs

    def test_report_version_gate(self):
        with pytest.raises(ValueError, match="unsupported report version"):
            SweepReport.from_dict({"format_version": 99, "cells": []})


_finite = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


@st.composite
def run_reports(draw, model=None, dataset=None, variant=None):
    return RunReport(
        model=model if model is not None else draw(st.text(min_size=1, max_size=8)),
        dataset=dataset if dataset is not None else draw(st.text(min_size=1, max_size=8)),
        seed=draw(st.integers(min_value=0, max_value=2**31 - 1)),
        train_accuracy=draw(_finite),
        val_accuracy=draw(_finite),
        test_accuracy=draw(_finite),
        best_epoch=draw(st.integers(min_value=-1, max_value=10_000)),
        epochs_run=draw(st.integers(min_value=0, max_value=10_000)),
        variant=variant if variant is not None else draw(st.text(max_size=8)),
        fit_seconds=draw(st.floats(min_value=0, max_value=1e6, allow_nan=False)),
        preprocess_seconds=draw(st.floats(min_value=0, max_value=1e6, allow_nan=False)),
    )


@st.composite
def experiment_reports(draw):
    model = draw(st.text(min_size=1, max_size=8))
    dataset = draw(st.text(min_size=1, max_size=8))
    variant = draw(st.text(max_size=8))
    runs = draw(
        st.lists(
            run_reports(model=model, dataset=dataset, variant=variant),
            min_size=1,
            max_size=5,
        )
    )
    return ExperimentReport.from_runs(runs)


class TestReportProperties:
    @settings(max_examples=50, deadline=None)
    @given(run_reports())
    def test_run_report_round_trips(self, run):
        assert RunReport.from_dict(json.loads(json.dumps(run.to_dict()))) == run

    @settings(max_examples=50, deadline=None)
    @given(experiment_reports())
    def test_experiment_report_round_trips(self, cell):
        assert ExperimentReport.from_dict(json.loads(json.dumps(cell.to_dict()))) == cell

    @settings(max_examples=25, deadline=None)
    @given(st.lists(experiment_reports(), max_size=4))
    def test_sweep_report_round_trips(self, cells):
        report = SweepReport(cells=tuple(cells), spec={"models": ["x"]})
        assert SweepReport.from_json(report.to_json()) == report

    @settings(max_examples=25, deadline=None)
    @given(experiment_reports())
    def test_aggregates_match_numpy(self, cell):
        values = np.asarray([run.test_accuracy for run in cell.runs])
        assert cell.test_mean == pytest.approx(float(values.mean()))
        assert cell.test_std == pytest.approx(float(values.std()))


class TestDeprecationShims:
    def test_run_single_warns_and_matches_fit(self, homophilous_graph, fast_trainer):
        with pytest.warns(DeprecationWarning, match="fit"):
            legacy = run_single("MLP", homophilous_graph, seed=0, trainer=fast_trainer)
        model = Session().from_graph(homophilous_graph).fit(
            "MLP", train=fast_trainer, seed=0
        )
        assert legacy.test_accuracy == model.test_accuracy

    def test_run_repeated_warns_and_matches_fit_repeated(
        self, homophilous_graph, fast_trainer
    ):
        with pytest.warns(DeprecationWarning, match="fit_repeated"):
            legacy = run_repeated(
                "MLP", homophilous_graph, seeds=(0, 1), trainer=fast_trainer
            )
        report = Session().from_graph(homophilous_graph).fit_repeated(
            "MLP", seeds=(0, 1), train=fast_trainer
        )
        assert legacy.test_mean == report.test_mean
        assert legacy.test_std == report.test_std
        assert legacy.val_mean == report.val_mean
        # The legacy result still carries full TrainResults (with history).
        assert len(legacy.runs) == 2 and legacy.runs[0].history["loss"]

    def test_run_model_suite_warns_once_per_call(self, homophilous_graph, fast_trainer):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            results = run_model_suite(
                ["MLP", "SGC"], homophilous_graph, seeds=(0,), trainer=fast_trainer
            )
        assert [r.model for r in results] == ["MLP", "SGC"]
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1

    def test_legacy_as_row_carries_val_and_run_detail(
        self, homophilous_graph, fast_trainer
    ):
        with pytest.warns(DeprecationWarning):
            result = run_repeated("MLP", homophilous_graph, seeds=(0,), trainer=fast_trainer)
        row = result.as_row()
        assert 0.0 <= row["val_mean"] <= 1.0
        assert row["test_accuracies"] == [round(result.runs[0].test_accuracy, 4)]


class TestExperimentCli:
    def _write_spec(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "models": ["MLP"], "datasets": ["texas"],
            "seeds": [0, 1], "train": {"epochs": 3, "patience": 3},
        }))
        return path

    def test_experiment_emits_table_and_report(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        out = tmp_path / "report.json"
        assert cli_main(["experiment", str(spec), "--out", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "MLP" in captured and "texas" in captured
        report = SweepReport.load(out)
        assert report.cell("MLP", "texas").seeds == (0, 1)

    def test_experiment_quick_overrides_seeds(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        out = tmp_path / "report.json"
        assert cli_main(["experiment", str(spec), "--quick", "--json", "--out", str(out)]) == 0
        payload = json.loads(capsys.readouterr().out.split("report:")[0])
        assert SweepReport.from_dict(payload).cell("MLP", "texas").seeds == (0,)
        assert SweepReport.load(out).cells[0].seeds == (0,)

    def test_experiment_missing_spec_exits_2(self, tmp_path, capsys):
        assert cli_main(["experiment", str(tmp_path / "nope.json")]) == 2
        assert "cannot load experiment spec" in capsys.readouterr().err

    def test_experiment_bad_spec_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"models": ["MLP"], "datasets": ["texas"], "vieww": 1}))
        assert cli_main(["experiment", str(path)]) == 2
        assert "vieww" in capsys.readouterr().err

    def test_experiment_bad_train_key_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "models": ["MLP"], "datasets": ["texas"], "train": {"epoch": 60},
        }))
        assert cli_main(["experiment", str(path)]) == 2
        assert "epoch" in capsys.readouterr().err

    def test_experiment_bad_overrides_exit_2(self, tmp_path, capsys):
        spec = self._write_spec(tmp_path)
        assert cli_main(["experiment", str(spec), "--seeds", "0", "0"]) == 2
        assert "duplicate seeds" in capsys.readouterr().err
        assert cli_main(["experiment", str(spec), "--workers", "0"]) == 2
        assert "max_workers" in capsys.readouterr().err
